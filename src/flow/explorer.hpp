// Base-system design-space exploration.
//
// Section IV.A: "architectural specialization supports a wide variety of
// hardware module and application requirements and enables system
// designers to balance resource utilization with communication
// flexibility". The explorer mechanizes that balancing act: given a
// device, the set of modules the system must host, the number of
// concurrently placed modules and IOMs, and a stream-rate target, it
// enumerates (PRR size, kr/kl) candidates, filters by hard feasibility
// (floorplan fits, static region fits, every module fits some PRR,
// clock ladder satisfies the rate analysis), and ranks survivors by
// total slice cost, breaking ties toward faster reconfiguration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "flow/rate_analyzer.hpp"
#include "hwmodule/library.hpp"

namespace vapres::flow {

struct ExplorationGoal {
  fabric::DeviceGeometry device = fabric::DeviceGeometry::xc4vlx25();
  /// Modules the base system must be able to host (each must fit at
  /// least one PRR).
  std::vector<std::string> required_modules;
  /// PRRs (= concurrently placed modules) and IOMs.
  int num_prrs = 2;
  int num_ioms = 1;
  /// Channels the application needs to route concurrently; kr=kl
  /// candidates below this are not offered.
  int min_lanes = 1;
  int max_lanes = 4;
  int width_bits = 32;
};

struct Candidate {
  core::SystemParams params;
  int static_slices = 0;       ///< resource-model estimate
  int prr_slices_total = 0;    ///< PRR area
  double reconfig_ms = 0.0;    ///< array2icap per PRR
  int max_module_slices = 0;   ///< largest required module

  int total_slices() const { return static_slices + prr_slices_total; }
};

struct ExplorationResult {
  /// Feasible candidates, best (fewest total slices, then fastest
  /// reconfiguration) first.
  std::vector<Candidate> candidates;
  /// Human-readable reasons infeasible points were discarded (one entry
  /// per (size, lanes) candidate).
  std::vector<std::string> rejections;

  bool feasible() const { return !candidates.empty(); }
  const Candidate& best() const;
};

class DesignSpaceExplorer {
 public:
  explicit DesignSpaceExplorer(const hwmodule::ModuleLibrary& library);

  /// Explores PRR heights {16, 32, 48} x widths {2..half} x lanes
  /// {min..max}. Throws ModelError on malformed goals (unknown modules).
  ExplorationResult explore(const ExplorationGoal& goal) const;

 private:
  const hwmodule::ModuleLibrary& library_;
};

}  // namespace vapres::flow
