#include "flow/app_flow.hpp"

#include <algorithm>
#include <set>

#include "bitstream/bitgen.hpp"
#include "sim/check.hpp"

namespace vapres::flow {

ApplicationFlow::ApplicationFlow(const BaseSystemResult& base,
                                 const hwmodule::ModuleLibrary& library)
    : base_(base), library_(library) {}

AppBuildResult ApplicationFlow::build(const core::KpnAppSpec& app) const {
  AppBuildResult result;
  result.app_name = app.name;

  // Port-signature validation against the base system (Section IV.B: the
  // designer must match number, width, and type of ports).
  std::set<std::string> module_ids;
  for (const core::KpnNodeSpec& node : app.nodes) {
    VAPRES_REQUIRE(library_.contains(node.module_id),
                   app.name + ": unknown module " + node.module_id);
    const auto& info = library_.info(node.module_id);
    bool fits_some_rsb = false;
    for (const core::RsbParams& rsb : base_.params.rsbs) {
      if (info.num_inputs <= rsb.ki && info.num_outputs <= rsb.ko) {
        fits_some_rsb = true;
      }
    }
    VAPRES_REQUIRE(fits_some_rsb,
                   node.name + ": port signature (" +
                       std::to_string(info.num_inputs) + " in, " +
                       std::to_string(info.num_outputs) +
                       " out) exceeds every RSB's ki/ko");
    module_ids.insert(node.module_id);
  }

  // Synthesize each distinct module for every PRR it fits.
  for (const std::string& module_id : module_ids) {
    const auto& info = library_.info(module_id);
    bool placed_somewhere = false;
    int max_prr_slices = 0;
    for (const PlacedPrr& prr : base_.floorplan.prrs) {
      max_prr_slices = std::max(max_prr_slices, prr.rect.slices());
      if (!info.resources.fits_in(prr.rect.resources())) continue;
      result.bitstreams.push_back(bitstream::generate_partial_bitstream(
          module_id, info.resources, prr.name, prr.rect));
      placed_somewhere = true;
    }
    if (!placed_somewhere) {
      UnplaceableModule u;
      u.module_id = module_id;
      if (info.resources.slices > max_prr_slices) {
        u.reason = UnplaceableModule::Reason::kResourceOverflow;
        u.detail = module_id + " needs " +
                   std::to_string(info.resources.slices) +
                   " slices; the largest PRR offers " +
                   std::to_string(max_prr_slices);
      } else {
        u.reason = UnplaceableModule::Reason::kNoFootprintMatch;
        u.detail = module_id + " fits by slices (" +
                   std::to_string(info.resources.slices) + " <= " +
                   std::to_string(max_prr_slices) +
                   ") but needs " + std::to_string(info.resources.brams) +
                   " BRAM / " + std::to_string(info.resources.dsps) +
                   " DSP, and the PRR rectangles carry CLB fabric only";
      }
      result.unplaceable_modules.push_back(std::move(u));
    }
  }
  return result;
}

const char* unplaceable_reason_name(UnplaceableModule::Reason r) {
  switch (r) {
    case UnplaceableModule::Reason::kResourceOverflow:
      return "resource-overflow";
    case UnplaceableModule::Reason::kNoFootprintMatch:
      return "no-footprint-match";
  }
  return "?";
}

bitstream::RelocatingStore ApplicationFlow::build_relocating(
    const core::KpnAppSpec& app) const {
  // Same module set as build(); one master per footprint class.
  const AppBuildResult full = build(app);
  bitstream::RelocatingStore store;
  for (const auto& bs : full.bitstreams) {
    store.add_master(bs);
  }
  return store;
}

std::vector<std::string> ApplicationFlow::install(
    const AppBuildResult& result, bitstream::CompactFlash& cf) {
  std::vector<std::string> filenames;
  for (const bitstream::PartialBitstream& bs : result.bitstreams) {
    const std::string filename =
        bitstream::bitstream_filename(bs.module_id, bs.target_prr);
    if (!cf.contains(filename)) cf.store(filename, bs);
    filenames.push_back(filename);
  }
  return filenames;
}

}  // namespace vapres::flow
