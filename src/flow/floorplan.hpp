// Floorplanner (base-system flow, Section IV.A; prototype layout Fig. 8).
//
// Places PRRs onto local clock-region slots subject to the paper's rules
// (each PRR inside 1-3 vertically adjacent regions, no two PRRs sharing a
// region, nothing straddling the centre line), sites the BUFR for each
// PRR, marks the slice-macro columns at the PRR's static-region boundary,
// and reports what is left for the static region. Also renders the
// floorplan as ASCII art (the model's Figure 8).
#pragma once

#include <string>
#include <vector>

#include "core/params.hpp"
#include "fabric/clock_region.hpp"

namespace vapres::flow {

struct PlacedPrr {
  std::string name;
  fabric::ClbRect rect;
  fabric::ClockRegionId bufr_region;
  /// CLB column just outside the PRR where the slice macros anchor.
  int slice_macro_col = 0;
};

struct Floorplan {
  fabric::DeviceGeometry device = fabric::DeviceGeometry::xc4vlx25();
  std::vector<PlacedPrr> prrs;
  int static_slices = 0;  ///< slices left outside all PRRs

  /// Rects only, in placement order (feed to SystemParams::prr_rects).
  std::vector<fabric::ClbRect> rects() const;

  /// ASCII rendering: one character cell per 2x2 CLBs, PRRs as digits,
  /// 'B' at BUFR sites, 'm' on slice-macro columns, '.' static fabric.
  std::string render_ascii() const;
};

class Floorplanner {
 public:
  /// Places all PRRs of `params` and verifies global legality.
  /// Throws ModelError when the device cannot host the request.
  Floorplan place(const core::SystemParams& params) const;

  /// Checks an existing floorplan (e.g. hand-written) for legality.
  /// Returns an empty string if legal, else the first violation.
  static std::string check(const std::vector<fabric::ClbRect>& rects,
                           const fabric::DeviceGeometry& device);
};

}  // namespace vapres::flow
