#include "flow/floorplan.hpp"

#include <sstream>

#include "sim/check.hpp"

namespace vapres::flow {

std::vector<fabric::ClbRect> Floorplan::rects() const {
  std::vector<fabric::ClbRect> out;
  out.reserve(prrs.size());
  for (const PlacedPrr& p : prrs) out.push_back(p.rect);
  return out;
}

std::string Floorplan::render_ascii() const {
  const int cell = 2;  // CLBs per character cell
  const int rows = device.clb_rows() / cell;
  const int cols = device.clb_cols() / cell;
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols),
                                            '.'));
  for (std::size_t i = 0; i < prrs.size(); ++i) {
    const PlacedPrr& p = prrs[i];
    const char mark =
        static_cast<char>('0' + static_cast<int>(i % 10));
    for (int r = p.rect.row; r < p.rect.row + p.rect.height; ++r) {
      for (int c = p.rect.col; c < p.rect.col + p.rect.width; ++c) {
        grid[static_cast<std::size_t>(r / cell)]
            [static_cast<std::size_t>(c / cell)] = mark;
      }
    }
    // Slice-macro column.
    for (int r = p.rect.row; r < p.rect.row + p.rect.height; ++r) {
      const int c = p.slice_macro_col;
      if (c >= 0 && c < device.clb_cols()) {
        grid[static_cast<std::size_t>(r / cell)]
            [static_cast<std::size_t>(c / cell)] = 'm';
      }
    }
    // BUFR site: centre column of its clock region, bottom row.
    const int bufr_row =
        p.bufr_region.row * fabric::DeviceGeometry::kClockRegionRows;
    const int bufr_col = p.bufr_region.half == 0
                             ? device.clock_region_width_clbs() - 1
                             : device.clock_region_width_clbs();
    grid[static_cast<std::size_t>(bufr_row / cell)]
        [static_cast<std::size_t>(bufr_col / cell)] = 'B';
  }

  std::ostringstream os;
  os << "Floorplan (" << device.name() << ", " << device.clb_rows() << "x"
     << device.clb_cols() << " CLBs; '.'=static, digits=PRRs, B=BUFR, "
        "m=slice macros)\n";
  // Top row of the device first (row indices grow upward).
  for (int r = rows - 1; r >= 0; --r) {
    os << grid[static_cast<std::size_t>(r)] << '\n';
  }
  return os.str();
}

Floorplan Floorplanner::place(const core::SystemParams& params) const {
  params.validate();
  Floorplan plan;
  plan.device = params.device;

  const int region_rows = fabric::DeviceGeometry::kClockRegionRows;
  const int regions_per_half = params.device.clock_region_rows();
  const int half_cols = params.device.clock_region_width_clbs();

  // Region occupancy per half.
  std::vector<std::vector<bool>> used(
      2, std::vector<bool>(static_cast<std::size_t>(regions_per_half),
                           false));

  int prr_counter = 0;
  for (std::size_t r = 0; r < params.rsbs.size(); ++r) {
    const core::RsbParams& rp = params.rsbs[r];
    VAPRES_REQUIRE(rp.prr_width_clbs <= half_cols,
                   "PRR wider than a clock-region half");
    const int span = (rp.prr_height_clbs + region_rows - 1) / region_rows;
    VAPRES_REQUIRE(span <= 3, "PRR spans more than 3 clock regions");

    for (int p = 0; p < rp.num_prrs; ++p) {
      // First-fit: find `span` adjacent free regions in either half,
      // preferring the left half bottom-up (the prototype places PRRs in
      // the lower-left of the device, Figure 8).
      int found_half = -1;
      int found_region = -1;
      for (int half = 0; half < 2 && found_half < 0; ++half) {
        for (int region = 0; region + span <= regions_per_half; ++region) {
          bool free = true;
          for (int s = 0; s < span; ++s) {
            if (used[static_cast<std::size_t>(half)]
                    [static_cast<std::size_t>(region + s)]) {
              free = false;
              break;
            }
          }
          if (free) {
            found_half = half;
            found_region = region;
            break;
          }
        }
      }
      VAPRES_REQUIRE(found_half >= 0,
                     "floorplan: out of clock regions on " +
                         params.device.name());
      for (int s = 0; s < span; ++s) {
        used[static_cast<std::size_t>(found_half)]
            [static_cast<std::size_t>(found_region + s)] = true;
      }

      PlacedPrr placed;
      placed.name = params.name + ".rsb" + std::to_string(r) + ".prr" +
                    std::to_string(p);
      // Anchor at the region boundary; left half abuts the centre line so
      // the slice-macro column faces the static fabric on the left.
      const int col = found_half == 0
                          ? half_cols - rp.prr_width_clbs
                          : half_cols;
      placed.rect = fabric::ClbRect{found_region * region_rows, col,
                                    rp.prr_height_clbs, rp.prr_width_clbs};
      placed.bufr_region = fabric::ClockRegionId{found_region, found_half};
      placed.slice_macro_col =
          found_half == 0 ? col - 1 : col + rp.prr_width_clbs;
      plan.prrs.push_back(placed);
      ++prr_counter;
    }
  }

  const std::string violation = check(plan.rects(), params.device);
  VAPRES_REQUIRE(violation.empty(), violation);

  int prr_slices = 0;
  for (const PlacedPrr& p : plan.prrs) prr_slices += p.rect.slices();
  plan.static_slices = params.device.total_slices() - prr_slices;
  return plan;
}

std::string Floorplanner::check(const std::vector<fabric::ClbRect>& rects,
                                const fabric::DeviceGeometry& device) {
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const std::string v = fabric::prr_legality_violation(rects[i], device);
    if (!v.empty()) return v;
    for (std::size_t j = 0; j < i; ++j) {
      if (rects[i].overlaps(rects[j])) {
        return "PRRs " + std::to_string(j) + " and " + std::to_string(i) +
               " overlap";
      }
      for (const auto& ri : regions_spanned(rects[i], device)) {
        for (const auto& rj : regions_spanned(rects[j], device)) {
          if (ri == rj) {
            return "PRRs " + std::to_string(j) + " and " +
                   std::to_string(i) + " share a local clock region";
          }
        }
      }
    }
  }
  return {};
}

}  // namespace vapres::flow
