#include "flow/base_system_flow.hpp"

#include "flow/sysdef.hpp"
#include "sim/check.hpp"

namespace vapres::flow {

BaseSystemResult BaseSystemFlow::run(core::SystemParams params) const {
  // Step 1: base-system specification.
  params.validate();

  BaseSystemResult result;

  // Step 2: base-system design — floorplan + system definition files.
  Floorplanner planner;
  if (params.prr_rects.empty()) {
    result.floorplan = planner.place(params);
    params.prr_rects = result.floorplan.rects();
  } else {
    const std::string violation =
        Floorplanner::check(params.prr_rects, params.device);
    VAPRES_REQUIRE(violation.empty(), violation);
    result.floorplan.device = params.device;
    // Names must match the core's RSB-major PRR instance names.
    std::vector<std::string> names;
    for (std::size_t r = 0; r < params.rsbs.size(); ++r) {
      for (int p = 0; p < params.rsbs[r].num_prrs; ++p) {
        names.push_back(params.name + ".rsb" + std::to_string(r) + ".prr" +
                        std::to_string(p));
      }
    }
    for (std::size_t i = 0; i < params.prr_rects.size(); ++i) {
      PlacedPrr placed;
      placed.name = names[i];
      placed.rect = params.prr_rects[i];
      placed.bufr_region =
          fabric::regions_spanned(placed.rect, params.device).front();
      placed.slice_macro_col = placed.rect.col > 0
                                   ? placed.rect.col - 1
                                   : placed.rect.col + placed.rect.width;
      result.floorplan.prrs.push_back(placed);
    }
    int prr_slices = 0;
    for (const auto& r : params.prr_rects) prr_slices += r.slices();
    result.floorplan.static_slices =
        params.device.total_slices() - prr_slices;
  }

  // Step 3: "synthesis & implementation" — resource estimate and static
  // bitstream. The static region must fit outside the PRRs.
  result.resources = ResourceModel::static_region(params);
  VAPRES_REQUIRE(
      result.resources.total() <= result.floorplan.static_slices,
      params.name + ": static region (" +
          std::to_string(result.resources.total()) +
          " slices) exceeds the fabric left by the floorplan (" +
          std::to_string(result.floorplan.static_slices) + ")");

  result.static_bitstream =
      bitstream::StaticBitstream::create(params.name, params.device);
  result.mhs = emit_mhs(params);
  result.mss = emit_mss(params);
  result.ucf = emit_ucf(params, result.floorplan);
  result.params = std::move(params);
  return result;
}

void BaseSystemFlow::write_files(const BaseSystemResult& result,
                                 const std::string& directory) {
  write_system_definition(result.params, result.floorplan, directory);
}

}  // namespace vapres::flow
