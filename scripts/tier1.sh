#!/usr/bin/env bash
# Tier-1 gate: the standard build + full test suite (the exact command
# sequence from ROADMAP.md), then one pass of the scheduler/defrag tests
# under AddressSanitizer + UBSan — the sched label exercises live module
# relocation and preemption teardown, the paths most likely to hide
# lifetime bugs.
#
# Usage: scripts/tier1.sh [build-dir] [sanitizer-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SAN_BUILD="${2:-build-asan}"

echo "=== tier-1: standard build + full ctest ==="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j

echo
echo "=== tier-1: simulator throughput gate (bench_sim_speed) ==="
# Fails (non-zero exit) when the activity-driven kernel regresses below
# the acceptance thresholds; writes BENCH_sim_speed.json in the build dir.
cmake --build "$BUILD" -j --target bench_sim_speed
(cd "$BUILD" && ./bench/bench_sim_speed)

echo
echo "=== tier-1: bitstream cache gate (bench_bitstream_cache) ==="
# Fails (non-zero exit) when the bitman subsystem regresses: warm-hit
# latency within 10 % of the raw array path, >= 2x mean latency over the
# no-cache CF path on the fixed churn, hit rate >= 0.55, and a loss-free
# stream while prefetch stagings overlap it. Writes
# BENCH_bitstream_cache.json in the build dir.
cmake --build "$BUILD" -j --target bench_bitstream_cache
(cd "$BUILD" && ./bench/bench_bitstream_cache)

echo
echo "=== tier-1: sched-labeled tests under address,undefined ==="
cmake -B "$SAN_BUILD" -S . -DVAPRES_SANITIZE=address,undefined
cmake --build "$SAN_BUILD" -j --target scheduler_test defrag_test
ctest --test-dir "$SAN_BUILD" -L sched --output-on-failure

echo
echo "tier-1: all green"
