#!/usr/bin/env bash
# Tier-1 gate: the standard build + full test suite (the exact command
# sequence from ROADMAP.md), then one pass of the scheduler/defrag tests
# under AddressSanitizer + UBSan — the sched label exercises live module
# relocation and preemption teardown, the paths most likely to hide
# lifetime bugs.
#
# Usage: scripts/tier1.sh [build-dir] [sanitizer-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SAN_BUILD="${2:-build-asan}"

echo "=== tier-1: standard build + full ctest ==="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j

echo
echo "=== tier-1: simulator throughput gate (bench_sim_speed) ==="
# Fails (non-zero exit) when the activity-driven kernel regresses below
# the acceptance thresholds; writes BENCH_sim_speed.json in the build dir.
cmake --build "$BUILD" -j --target bench_sim_speed
(cd "$BUILD" && ./bench/bench_sim_speed)

echo
echo "=== tier-1: bitstream cache gate (bench_bitstream_cache) ==="
# Fails (non-zero exit) when the bitman subsystem regresses: warm-hit
# latency within 10 % of the raw array path, >= 2x mean latency over the
# no-cache CF path on the fixed churn, hit rate >= 0.55, and a loss-free
# stream while prefetch stagings overlap it. Writes
# BENCH_bitstream_cache.json in the build dir.
cmake --build "$BUILD" -j --target bench_bitstream_cache
(cd "$BUILD" && ./bench/bench_bitstream_cache)

echo
echo "=== tier-1: tracing overhead gate (bench_trace_overhead) ==="
# Fails (non-zero exit) when disabled tracing hooks project to > 1 % of
# the traced-off wall time of a switch-heavy scenario. Writes
# BENCH_trace_overhead.json in the build dir.
cmake --build "$BUILD" -j --target bench_trace_overhead
(cd "$BUILD" && ./bench/bench_trace_overhead)

echo
echo "=== tier-1: sustained-load soak gate (bench_soak --quick) ==="
# 2000 seeded lifetimes through the full scheduler + fabric, replayed
# twice: fails (non-zero exit) on any invariant violation (resource
# leaks, accounting drift, word loss, stream gaps), on throughput under
# 20 lifetimes/s, p99 admission->launch over 32M MB cycles, an RSS
# plateau breach, or a digest mismatch between the two runs
# (determinism). --quick also runs the snap checkpoint/restore gates:
# restore-mid-soak digest equality over three seeds and the <= 5%
# checkpoint-overhead cap (docs/SNAPSHOT.md). Writes BENCH_soak.json in
# the build dir; the full 10^5-lifetime sweep is
# `bench_soak --lifetimes=100000 --sweep=3` (docs/LOADGEN.md).
cmake --build "$BUILD" -j --target bench_soak
(cd "$BUILD" && ./bench/bench_soak --quick)

echo
echo "=== tier-1: fleet routing gate (bench_fleet --quick) ==="
# One consolidated fabric vs the 4-fabric heterogeneous fleet on the
# same seeded multi-tenant workload: fails (non-zero exit) on any
# invariant violation, on an app lost in cross-fabric migration, when
# cost-based routing admits fewer apps than blind round-robin rotation,
# on a replay digest mismatch (determinism), or when agent crash churn
# loses an app, leaves a reconcile violation, or changes a routing
# decision vs the undisturbed run (docs/CONTROLPLANE.md). Writes
# BENCH_fleet.json in the build dir; the full comparison is
# `bench_fleet` and the multi-seed sweep `bench_fleet --sweep=K`
# (docs/FLEET.md).
cmake --build "$BUILD" -j --target bench_fleet
(cd "$BUILD" && ./bench/bench_fleet --quick)

echo
echo "=== tier-1: health monitor gate (bench_health --quick) ==="
# The same storm workload (short dense ICAP fault-storm phase) through
# monitor-off, observe-only, and remediating fleets: fails (non-zero
# exit) on any invariant violation, when health_tick() wall time
# exceeds 1% of the soak wall time, when the remediating fleet admits
# fewer apps than the monitor-off baseline or loses an app to a drain,
# when the storm injects no faults, or on a replay digest mismatch —
# health ticks and remediation decisions fold into the digest
# (docs/HEALTH.md). Writes BENCH_health.json in the build dir.
cmake --build "$BUILD" -j --target bench_health
(cd "$BUILD" && ./bench/bench_health --quick)

echo
echo "=== tier-1: Chrome trace export smoke (multi_app_server) ==="
# The exported trace_event JSON must parse and contain events — the
# format chrome://tracing / Perfetto loads (docs/OBSERVABILITY.md).
cmake --build "$BUILD" -j --target multi_app_server
TRACE_JSON="$BUILD/trace_smoke.json"
"$BUILD/examples/multi_app_server" --trace="$TRACE_JSON" > /dev/null
python3 - "$TRACE_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
events = d["traceEvents"]
assert events, "trace has no events"
phases = {e["ph"] for e in events}
assert {"B", "E"} <= phases, f"no duration spans in trace: {phases}"
# The fixed-seed server run defragments with live relocations: every
# step of the 9-step switch protocol must appear as a named span.
begins = {e["name"] for e in events if e["ph"] == "B"}
missing = [s for s in ("step%d" % i for i in range(1, 10))
           if not any(n.startswith(s + ".") for n in begins)]
assert not missing, f"switch steps missing from trace: {missing}"
print(f"trace OK: {len(events)} events, all 9 switch steps present")
EOF

echo
echo "=== tier-1: sched/soak/fleet/snap/health tests under address,undefined ==="
# The soak smoke (soak_test, ~10^3 lifetimes, including the
# agent-crash-churn fleet run), the fleet router tests (fleet_test:
# cross-fabric migration rollback, master adoption, quota preemption,
# checkpoint/failover), the control-plane state-table tests
# (statedb_test: kill-at-every-journal-step migration sweeps, restart
# reconvergence), and the checkpoint/restore tests (snap_test: cold
# restore byte-determinism, warm-restart reconciliation, switch
# resume/rollback from every journaled step — docs/SNAPSHOT.md) ride
# along under ASan: sustained submit/stop churn, teardown-on-src +
# replay-on-dst moves, agent destroy/reconstruct cycles, and whole-
# system serialize/reconstruct round-trips are the workloads most
# likely to surface lifetime bugs the single-scenario sched tests miss.
cmake -B "$SAN_BUILD" -S . -DVAPRES_SANITIZE=address,undefined
cmake --build "$SAN_BUILD" -j --target scheduler_test defrag_test soak_test \
  fleet_test statedb_test snap_test health_test
ctest --test-dir "$SAN_BUILD" -L 'sched|soak|fleet|snap|health' \
  --output-on-failure

echo
echo "tier-1: all green"
