// Experiment E4 — inter-module communication architecture vs related
// work (paper Sections II and III.B).
//
// Comparison points the paper names:
//   * VAPRES pipelined switch boxes close timing at 100 MHz and move one
//     word per cycle per channel, independent of hop count and of how
//     many channels are active (dedicated lanes);
//   * Sonic-on-a-Chip's shared time-multiplexed bus ran at 50 MHz and
//     divides that bandwidth across channels;
//   * Ullmann et al. route every word through the MicroBlaze.
//
// The bench measures per-channel throughput (Mwords/s) and first-word
// latency for all three on the same simulator.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/cpu_routed.hpp"
#include "baseline/shared_bus.hpp"
#include "comm/module_interface.hpp"
#include "comm/switch_fabric.hpp"
#include "proc/microblaze.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace vapres;
using comm::Word;

// ---- VAPRES switch-box fabric ----------------------------------------

struct VapresRig {
  sim::Simulator sim;
  sim::ClockDomain* clk;
  std::unique_ptr<comm::SwitchFabric> fabric;
  std::vector<std::unique_ptr<comm::ProducerInterface>> producers;
  std::vector<std::unique_ptr<comm::ConsumerInterface>> consumers;

  explicit VapresRig(int boxes, int lanes) {
    clk = &sim.create_domain("clk", 100.0);
    fabric = std::make_unique<comm::SwitchFabric>(
        *clk, boxes, comm::SwitchBoxShape{lanes, lanes, 1, 1});
    for (int i = 0; i < boxes; ++i) {
      producers.push_back(
          std::make_unique<comm::ProducerInterface>("p", 512));
      consumers.push_back(
          std::make_unique<comm::ConsumerInterface>("c", 512));
      clk->attach(producers.back().get());
      clk->attach(consumers.back().get());
      fabric->attach_producer(i, 0, producers.back().get());
      fabric->attach_consumer(i, 0, consumers.back().get());
    }
  }
  ~VapresRig() {
    for (auto& p : producers) clk->detach(p.get());
    for (auto& c : consumers) clk->detach(c.get());
  }
};

/// Words per channel delivered in `cycles` cycles with `channels`
/// concurrent distance-`dist` streams, all saturated. Channel ch runs
/// from box ch to box ch+dist on lane ch (ki = ko = 1, so each channel
/// needs its own endpoint boxes).
double vapres_words_per_channel(int channels, int dist, int cycles) {
  VapresRig rig(channels + dist, channels);
  for (int ch = 0; ch < channels; ++ch) {
    comm::RouteSpec spec;
    spec.producer_box = ch;
    spec.consumer_box = ch + dist;
    spec.lanes.assign(static_cast<std::size_t>(dist), ch);
    rig.fabric->establish(spec);
    rig.producers[static_cast<std::size_t>(spec.producer_box)]
        ->set_read_enable(true);
    rig.consumers[static_cast<std::size_t>(spec.consumer_box)]
        ->set_write_enable(true);
  }
  std::uint64_t delivered = 0;
  for (int c = 0; c < cycles; ++c) {
    for (auto& p : rig.producers) {
      if (p->read_enable() && !p->fifo().full()) {
        p->fifo().push(static_cast<Word>(c));
      }
    }
    rig.sim.run_cycles(*rig.clk, 1);
    for (auto& cons : rig.consumers) {
      while (!cons->fifo().empty()) {
        cons->fifo().pop();
        ++delivered;
      }
    }
  }
  return static_cast<double>(delivered) / channels;
}

/// First-word latency in cycles over `dist` switch boxes.
int vapres_latency(int dist) {
  VapresRig rig(dist + 1, 2);
  comm::RouteSpec spec;
  spec.producer_box = 0;
  spec.consumer_box = dist;
  spec.lanes.assign(static_cast<std::size_t>(dist), 0);
  rig.fabric->establish(spec);
  rig.consumers[static_cast<std::size_t>(dist)]->set_write_enable(true);
  rig.producers[0]->fifo().push(1);
  rig.producers[0]->set_read_enable(true);
  int cycles = 0;
  while (rig.consumers[static_cast<std::size_t>(dist)]->fifo().empty()) {
    rig.sim.run_cycles(*rig.clk, 1);
    ++cycles;
  }
  return cycles;
}

// ---- Shared-bus baseline ----------------------------------------------

double bus_words_per_channel(int channels, int cycles_100mhz) {
  sim::Simulator sim;
  auto& bus_clk = sim.create_domain("bus", 50.0);  // Sedcole's 50 MHz
  baseline::SharedBus bus("bus", bus_clk);
  std::vector<std::unique_ptr<comm::Fifo>> srcs;
  std::vector<std::unique_ptr<comm::Fifo>> dsts;
  for (int c = 0; c < channels; ++c) {
    srcs.push_back(std::make_unique<comm::Fifo>("s", 1 << 20));
    dsts.push_back(std::make_unique<comm::Fifo>("d", 1 << 20));
    for (int w = 0; w < cycles_100mhz; ++w) {
      srcs.back()->push(static_cast<Word>(w));
    }
    bus.add_channel(srcs.back().get(), dsts.back().get());
  }
  // Same wall-clock window as `cycles_100mhz` cycles at 100 MHz.
  sim.run_for(static_cast<sim::Picoseconds>(cycles_100mhz) * 10000);
  return static_cast<double>(bus.total_words()) / channels;
}

// ---- CPU-routed baseline ----------------------------------------------

double cpu_words_per_link(int links, int cycles) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  comm::DcrBus dcr;
  proc::Microblaze mb("mb", clk, dcr);
  std::vector<std::unique_ptr<comm::FslLink>> from;
  std::vector<std::unique_ptr<comm::FslLink>> to;
  std::vector<std::unique_ptr<baseline::CpuRoutedLink>> routers;
  for (int l = 0; l < links; ++l) {
    from.push_back(std::make_unique<comm::FslLink>("f", 1 << 20));
    to.push_back(std::make_unique<comm::FslLink>("t", 1 << 20));
    for (int w = 0; w < cycles; ++w) from.back()->write(1);
    routers.push_back(std::make_unique<baseline::CpuRoutedLink>(
        "r", *from.back(), *to.back()));
    mb.add_task(routers.back().get());
  }
  sim.run_cycles(clk, static_cast<sim::Cycles>(cycles));
  std::uint64_t total = 0;
  for (auto& r : routers) total += r->words_routed();
  return static_cast<double>(total) / links;
}

void print_paper_table() {
  constexpr int kCycles = 20000;  // 200 us at 100 MHz
  const double window_us = kCycles / 100.0;

  std::printf("\n=== E4: communication throughput vs related work "
              "(paper Section II) ===\n");
  std::printf("Window: %.0f us. Per-channel throughput in Mwords/s.\n\n",
              window_us);
  std::printf("%-34s %10s %10s %10s %10s\n", "architecture", "1 ch",
              "2 ch", "3 ch", "4 ch");

  std::printf("%-34s", "VAPRES switch boxes @100MHz");
  for (int ch = 1; ch <= 4; ++ch) {
    const double words = vapres_words_per_channel(ch, 4, kCycles);
    std::printf(" %10.1f", words / window_us);
  }
  std::printf("\n%-34s", "shared TDM bus @50MHz (Sedcole)");
  for (int ch = 1; ch <= 4; ++ch) {
    const double words = bus_words_per_channel(ch, kCycles);
    std::printf(" %10.1f", words / window_us);
  }
  std::printf("\n%-34s", "MicroBlaze-routed (Ullmann)");
  for (int ch = 1; ch <= 4; ++ch) {
    const double words = cpu_words_per_link(ch, kCycles);
    std::printf(" %10.1f", words / window_us);
  }
  std::printf("\n\nShape check (paper): dedicated pipelined channels hold "
              "~100 Mwords/s per channel\nregardless of channel count; the "
              "50 MHz bus starts at half and divides by channel\ncount; "
              "processor routing is ~2 orders of magnitude down.\n");

  std::printf("\n--- first-word latency vs traversed switch boxes (one "
              "register per box) ---\n");
  std::printf("%-10s", "boxes:");
  for (int d = 1; d <= 7; ++d) std::printf(" %6d", d + 1);
  std::printf("\n%-10s", "cycles:");
  for (int d = 1; d <= 7; ++d) std::printf(" %6d", vapres_latency(d));
  std::printf("\n(expected boxes + 2: producer output register + one "
              "register per box + consumer\n FIFO write)\n\n");
}

void BM_VapresChannelThroughput(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  double words = 0;
  for (auto _ : state) {
    words = vapres_words_per_channel(channels, 4, 5000);
  }
  state.counters["Mwords_per_s_per_ch"] = words / 50.0;
}
BENCHMARK(BM_VapresChannelThroughput)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SharedBusThroughput(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  double words = 0;
  for (auto _ : state) words = bus_words_per_channel(channels, 5000);
  state.counters["Mwords_per_s_per_ch"] = words / 50.0;
}
BENCHMARK(BM_SharedBusThroughput)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
