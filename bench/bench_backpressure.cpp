// Ablation A2 — the feedback-full assertion threshold (DESIGN.md §3).
//
// The paper prints the threshold as "remaining space = 2*(N-d)", which
// cannot be meant literally (it asserts on an empty FIFO for N >> d).
// This ablation compares three implementable policies on the same
// fabric:
//   * pipeline-depth (ours): assert at remaining <= 2d+2 — the tightest
//     safe bound; nearly the whole FIFO stays usable as burst buffer;
//   * half-capacity: assert at remaining <= N/2 — hop-oblivious and
//     safe, but half the buffer is permanently reserved;
//   * literal 2*(N-d): throughput collapses (producer permanently
//     throttled by the always-on feedback signal).
// Measured: sustained throughput with a slow-draining consumer (where
// usable buffer depth is what keeps the producer running), plus the
// usable-buffer count itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "comm/module_interface.hpp"
#include "comm/switch_fabric.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace vapres;
using comm::BackpressurePolicy;
using comm::Word;

struct Rig {
  sim::Simulator sim;
  sim::ClockDomain* clk;
  std::unique_ptr<comm::SwitchFabric> fabric;
  std::vector<std::unique_ptr<comm::ProducerInterface>> producers;
  std::vector<std::unique_ptr<comm::ConsumerInterface>> consumers;

  Rig(int boxes, int depth) {
    clk = &sim.create_domain("clk", 100.0);
    fabric = std::make_unique<comm::SwitchFabric>(
        *clk, boxes, comm::SwitchBoxShape{2, 2, 1, 1});
    for (int i = 0; i < boxes; ++i) {
      producers.push_back(
          std::make_unique<comm::ProducerInterface>("p", depth));
      consumers.push_back(
          std::make_unique<comm::ConsumerInterface>("c", depth));
      clk->attach(producers.back().get());
      clk->attach(consumers.back().get());
      fabric->attach_producer(i, 0, producers.back().get());
      fabric->attach_consumer(i, 0, consumers.back().get());
    }
  }
  ~Rig() {
    for (auto& p : producers) clk->detach(p.get());
    for (auto& c : consumers) clk->detach(c.get());
  }
};

struct Outcome {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  int usable_buffer = 0;  // consumer FIFO occupancy the policy permits
};

/// Saturated producer, consumer drained in bursts (512 words every 1024
/// cycles — a bursty DMA-style reader).
Outcome run_policy(BackpressurePolicy policy, int dist, int depth,
                   int cycles) {
  Rig rig(dist + 1, depth);
  comm::RouteSpec spec;
  spec.producer_box = 0;
  spec.consumer_box = dist;
  spec.lanes.assign(static_cast<std::size_t>(dist), 0);
  rig.fabric->establish(spec, policy);
  rig.producers[0]->set_read_enable(true);
  auto& consumer = *rig.consumers[static_cast<std::size_t>(dist)];
  consumer.set_write_enable(true);

  Outcome out;
  for (int c = 0; c < cycles; ++c) {
    if (!rig.producers[0]->fifo().full()) {
      rig.producers[0]->fifo().push(static_cast<Word>(c));
    }
    rig.sim.run_cycles(*rig.clk, 1);
    out.usable_buffer = std::max(out.usable_buffer,
                                 consumer.fifo().high_watermark());
    if (c % 1024 < 2) {  // burst drain window
      for (int k = 0; k < 256 && !consumer.fifo().empty(); ++k) {
        consumer.fifo().pop();
        ++out.delivered;
      }
    }
  }
  out.dropped = consumer.words_discarded();
  return out;
}

const char* policy_name(BackpressurePolicy p) {
  switch (p) {
    case BackpressurePolicy::kPipelineDepth: return "pipeline-depth 2d+2";
    case BackpressurePolicy::kHalfCapacity: return "half-capacity N/2";
    case BackpressurePolicy::kLiteralPaper: return "literal 2*(N-d)";
  }
  return "?";
}

void print_table() {
  constexpr int kCycles = 50000;
  std::printf("\n=== A2 (ablation): feedback-full threshold policies "
              "(DESIGN.md §3) ===\n");
  std::printf("Saturated producer, bursty consumer (512-word drain every "
              "1024 cycles), %d cycles,\nFIFO depth 512. Usable buffer = "
              "highest consumer-FIFO fill the policy allowed.\n\n",
              kCycles);
  std::printf("%-24s %6s | %12s %10s %14s\n", "policy", "hops",
              "delivered", "dropped", "usable buffer");
  for (auto policy :
       {BackpressurePolicy::kPipelineDepth,
        BackpressurePolicy::kHalfCapacity,
        BackpressurePolicy::kLiteralPaper}) {
    for (int dist : {2, 6}) {
      const auto out = run_policy(policy, dist, 512, kCycles);
      std::printf("%-24s %6d | %12llu %10llu %11d/512\n",
                  policy_name(policy), dist + 1,
                  static_cast<unsigned long long>(out.delivered),
                  static_cast<unsigned long long>(out.dropped),
                  out.usable_buffer);
    }
  }
  std::printf(
      "\nShape: both safe policies drop nothing; pipeline-depth keeps "
      "~the whole FIFO\nusable while half-capacity wastes half of it "
      "(lower burst throughput). The\nliteral reading throttles the "
      "producer permanently — near-zero delivery.\n\n");
}

void BM_Policy(benchmark::State& state) {
  const auto policy = static_cast<BackpressurePolicy>(state.range(0));
  Outcome out;
  for (auto _ : state) out = run_policy(policy, 4, 512, 20000);
  state.counters["delivered"] = static_cast<double>(out.delivered);
  state.counters["dropped"] = static_cast<double>(out.dropped);
}
BENCHMARK(BM_Policy)
    ->Arg(static_cast<int>(BackpressurePolicy::kPipelineDepth))
    ->Arg(static_cast<int>(BackpressurePolicy::kHalfCapacity))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
