// Experiment E7 — resource fragmentation vs reconfiguration time
// (paper Sections IV.A and VI).
//
// "Large PRRs can increase resource fragmentation (wasted resources when
// a hardware module requires fewer resources than a PRR provides) ...
// a focus of our future work includes analyzing the tradeoffs between
// resource fragmentation and system performance for large verses small
// PRRs." This bench runs that analysis over the module library: for each
// PRR size (1-3 clock regions, several widths), the fraction of library
// modules that fit, the average wasted slices, and the reconfiguration
// time the size implies.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/reconfig.hpp"
#include "fabric/frame.hpp"
#include "hwmodule/library.hpp"

namespace {

using namespace vapres;

struct PrrChoice {
  int height;
  int width;
};

struct FragmentationRow {
  int slices = 0;
  int fit = 0;
  int total = 0;
  double avg_waste_pct = 0.0;
  double array_ms = 0.0;
  double cf_s = 0.0;
};

FragmentationRow analyze(const PrrChoice& choice,
                         const hwmodule::ModuleLibrary& lib) {
  const fabric::ClbRect rect{0, 0, choice.height, choice.width};
  FragmentationRow row;
  row.slices = rect.slices();
  double waste_sum = 0.0;
  for (const auto& id : lib.list()) {
    const auto& info = lib.info(id);
    ++row.total;
    if (info.resources.fits_in(rect.resources())) {
      ++row.fit;
      waste_sum += 100.0 *
                   static_cast<double>(row.slices - info.resources.slices) /
                   static_cast<double>(row.slices);
    }
  }
  row.avg_waste_pct = row.fit > 0 ? waste_sum / row.fit : 0.0;
  const auto bytes = fabric::partial_bitstream_bytes(rect);
  row.array_ms =
      core::ReconfigManager::estimate_array2icap(bytes).seconds_at(100.0) *
      1e3;
  row.cf_s =
      core::ReconfigManager::estimate_cf2icap(bytes).seconds_at(100.0);
  return row;
}

void print_paper_table() {
  const auto lib = hwmodule::ModuleLibrary::standard();
  std::printf("\n=== E7: PRR size vs fragmentation vs reconfiguration time "
              "(Section VI) ===\n");
  std::printf("Module library: %zu modules, 20..1200 slices.\n\n",
              lib.list().size());
  std::printf("%-14s %8s %10s %12s %14s %12s\n", "PRR (CLBs)", "slices",
              "fit [n]", "waste [%]", "array2icap[ms]", "cf2icap[s]");
  const std::vector<PrrChoice> choices{{16, 2},  {16, 4},  {16, 8},
                                       {16, 10}, {16, 14}, {32, 10},
                                       {32, 14}, {48, 14}};
  for (const auto& c : choices) {
    const auto row = analyze(c, lib);
    std::printf("%3dx%-10d %8d %6d/%-3d %12.1f %14.2f %12.3f\n", c.height,
                c.width, row.slices, row.fit, row.total, row.avg_waste_pct,
                row.array_ms, row.cf_s);
  }
  std::printf(
      "\nShape check: reconfiguration time grows linearly with PRR area "
      "while average\nfragmentation grows with it too — small PRRs "
      "reconfigure ~10x faster but exclude\nthe large filters; the "
      "prototype's 640-slice PRR is the smallest size hosting\nthe 8-tap "
      "FIR (620 slices) with <4%% waste for it.\n");

  // Alternative from Section IV.A: modules spanning multiple small,
  // adjacent PRRs instead of one big PRR.
  std::printf("\n--- spanning alternative (Section IV.A): fir16_sharp "
              "(1200 slices) ---\n");
  const auto& fir16 = lib.info("fir16_sharp");
  const fabric::ClbRect big{0, 0, 32, 10};
  const fabric::ClbRect small{0, 0, 16, 10};
  std::printf("one 32x10 PRR  : waste %4d slices, reconfig %.2f ms\n",
              big.slices() - fir16.resources.slices,
              core::ReconfigManager::estimate_array2icap(
                  fabric::partial_bitstream_bytes(big))
                      .seconds_at(100.0) *
                  1e3);
  std::printf("two 16x10 PRRs : waste %4d slices, reconfig 2 x %.2f ms "
              "(sequential ICAP)\n\n",
              2 * small.slices() - fir16.resources.slices,
              core::ReconfigManager::estimate_array2icap(
                  fabric::partial_bitstream_bytes(small))
                      .seconds_at(100.0) *
                  1e3);
}

void BM_FragmentationAnalysis(benchmark::State& state) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  for (auto _ : state) {
    auto row = analyze({16, 10}, lib);
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_FragmentationAnalysis);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
