// Experiment E5 — vapres_establish_channel (Table 2) and the Figure 7
// flexibility-vs-resources trade-off.
//
// The architectural parameters kr/kl buy routing flexibility with
// slices. This bench quantifies both sides: Monte-Carlo channel
// request/release workloads measure the establishment success rate as a
// function of kr=kl and RSB size, and the calibrated resource model
// prices the same configurations — regenerating the design-space table a
// system designer would use in the base-system specification step.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "core/channel.hpp"
#include "flow/resource_model.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace vapres;

struct Rig {
  sim::Simulator sim;
  sim::ClockDomain* clk;
  std::unique_ptr<comm::SwitchFabric> fabric;
  std::vector<std::unique_ptr<comm::ProducerInterface>> producers;
  std::vector<std::unique_ptr<comm::ConsumerInterface>> consumers;
  std::unique_ptr<core::ChannelManager> mgr;

  Rig(int boxes, int lanes) {
    clk = &sim.create_domain("clk", 100.0);
    fabric = std::make_unique<comm::SwitchFabric>(
        *clk, boxes, comm::SwitchBoxShape{lanes, lanes, 1, 1});
    for (int i = 0; i < boxes; ++i) {
      producers.push_back(
          std::make_unique<comm::ProducerInterface>("p", 512));
      consumers.push_back(
          std::make_unique<comm::ConsumerInterface>("c", 512));
      fabric->attach_producer(i, 0, producers.back().get());
      fabric->attach_consumer(i, 0, consumers.back().get());
    }
    mgr = std::make_unique<core::ChannelManager>(*fabric);
  }
};

struct WorkloadResult {
  int attempts = 0;
  int successes = 0;
  double success_rate() const {
    return attempts == 0 ? 0.0 : 100.0 * successes / attempts;
  }
};

/// Random request/release workload: each step either requests a channel
/// between a random *free* producer site and a random *free* consumer
/// site (70 %), or releases a random active channel (30 %). Endpoints
/// are pre-checked, so every failure is a routing failure — lane
/// saturation, the resource kr/kl actually buys.
WorkloadResult run_workload(int boxes, int lanes, int steps,
                            std::uint64_t seed) {
  Rig rig(boxes, lanes);
  sim::SplitMix64 rng(seed);
  struct Active {
    core::ChannelId id;
    int producer;
    int consumer;
  };
  std::vector<Active> active;
  std::vector<bool> producer_used(static_cast<std::size_t>(boxes), false);
  std::vector<bool> consumer_used(static_cast<std::size_t>(boxes), false);
  WorkloadResult result;

  const auto pick_free = [&](const std::vector<bool>& used,
                             int exclude) -> int {
    std::vector<int> candidates;
    for (int i = 0; i < boxes; ++i) {
      if (!used[static_cast<std::size_t>(i)] && i != exclude) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) return -1;
    return candidates[rng.next_below(candidates.size())];
  };

  for (int s = 0; s < steps; ++s) {
    if (active.empty() || rng.chance(0.7)) {
      const int a = pick_free(producer_used, -1);
      const int b = pick_free(consumer_used, a);
      if (a < 0 || b < 0) continue;  // all endpoints busy: not a routing test
      ++result.attempts;
      auto id = rig.mgr->establish(core::ChannelEndpoint{a, 0},
                                   core::ChannelEndpoint{b, 0});
      if (id) {
        ++result.successes;
        active.push_back({*id, a, b});
        producer_used[static_cast<std::size_t>(a)] = true;
        consumer_used[static_cast<std::size_t>(b)] = true;
      }
    } else {
      const std::size_t idx = rng.next_below(active.size());
      rig.mgr->release(active[idx].id);
      producer_used[static_cast<std::size_t>(active[idx].producer)] = false;
      consumer_used[static_cast<std::size_t>(active[idx].consumer)] = false;
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  return result;
}

void print_paper_table() {
  std::printf("\n=== E5: channel-establishment success vs kr=kl "
              "(Figure 7 trade-off) ===\n");
  std::printf("Monte-Carlo workload: random establish (70%%) / release "
              "(30%%) between free endpoints,\n2000 steps, 10 seeds; "
              "every failure is lane saturation.\n\n");
  std::printf("%-8s %-8s | %12s | %16s\n", "sites", "kr=kl",
              "success [%]", "comm arch slices");
  for (int boxes : {4, 6, 8}) {
    for (int lanes : {1, 2, 3, 4}) {
      WorkloadResult total;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto r = run_workload(boxes, lanes, 2000, seed);
        total.attempts += r.attempts;
        total.successes += r.successes;
      }
      core::RsbParams params;
      params.num_prrs = boxes - 1;
      params.num_ioms = 1;
      params.kr = lanes;
      params.kl = lanes;
      std::printf("%-8d %-8d | %12.1f | %16d\n", boxes, lanes,
                  total.success_rate(),
                  flow::ResourceModel::comm_architecture_slices(params));
    }
    std::printf("\n");
  }
  std::printf("Shape check: routing success rises steeply from kr=1 and "
              "saturates once lanes\nexceed the endpoint-limited channel "
              "count, while the slice cost keeps growing\nlinearly — the "
              "prototype's kr=kl=2 choice sits at the knee.\n");

  std::printf("\n--- software cost of establishment: PRSocket DCR writes "
              "per path ---\n");
  std::printf("%-10s", "hops d:");
  for (int d = 1; d <= 7; ++d) std::printf(" %6d", d + 1);
  std::printf("\n%-10s", "writes:");
  for (int d = 1; d <= 7; ++d) {
    comm::RouteSpec spec;
    spec.producer_box = 0;
    spec.consumer_box = d;
    spec.lanes.assign(static_cast<std::size_t>(d), 0);
    std::printf(" %6d", core::ChannelManager::dcr_writes_for(spec));
  }
  std::printf("\n\n");
}

void BM_EstablishRelease(benchmark::State& state) {
  const int boxes = static_cast<int>(state.range(0));
  const int lanes = static_cast<int>(state.range(1));
  Rig rig(boxes, lanes);
  std::uint64_t established = 0;
  for (auto _ : state) {
    auto id = rig.mgr->establish(core::ChannelEndpoint{0, 0},
                                 core::ChannelEndpoint{boxes - 1, 0});
    if (id) {
      rig.mgr->release(*id);
      ++established;
    }
  }
  state.counters["established"] = static_cast<double>(established);
}
BENCHMARK(BM_EstablishRelease)->Args({4, 2})->Args({8, 2})->Args({8, 4});

void BM_MonteCarloWorkload(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = run_workload(8, lanes, 500, 42);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MonteCarloWorkload)->Arg(1)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
