// Ablation A1 — bitstream relocation (hardware module reuse).
//
// Design choice from the VAPRES authors' follow-on work: with the EAPR
// flow the paper uses, every (module, PRR) pair needs its own stored
// partial bitstream, so CompactFlash storage and startup staging time
// scale as modules x PRRs. With FAR-rewriting relocation, one master per
// (module, footprint class) suffices. This ablation quantifies both
// sides across module-library and PRR-count sweeps, plus the runtime
// cost relocation adds to each reconfiguration (one streaming pass on
// the MicroBlaze, negligible next to the ICAP write).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bitstream/bitgen.hpp"
#include "bitstream/relocation.hpp"
#include "core/reconfig.hpp"
#include "fabric/frame.hpp"
#include "hwmodule/library.hpp"

namespace {

using namespace vapres;

struct Comparison {
  std::int64_t eapr_bytes = 0;
  std::int64_t reloc_bytes = 0;
  double eapr_staging_s = 0.0;
  double reloc_staging_s = 0.0;
};

/// `n_modules` modules deployed over `n_prrs` same-footprint PRRs.
Comparison compare(int n_modules, int n_prrs) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  const fabric::ClbRect footprint{0, 0, 16, 10};  // prototype PRRs
  std::vector<std::string> modules;
  for (const auto& id : lib.list()) {
    if (static_cast<int>(modules.size()) >= n_modules) break;
    if (lib.info(id).resources.fits_in(footprint.resources())) {
      modules.push_back(id);
    }
  }

  Comparison cmp;
  bitstream::RelocatingStore store;
  for (const auto& m : modules) {
    for (int p = 0; p < n_prrs; ++p) {
      const fabric::ClbRect rect{16 * p, 0, 16, 10};
      const auto bs = bitstream::generate_partial_bitstream(
          m, lib.info(m).resources, "prr" + std::to_string(p), rect);
      cmp.eapr_bytes += bs.size_bytes;
      store.add_master(bs);
    }
  }
  cmp.reloc_bytes = store.stored_bytes();
  // Startup staging: vapres_cf2array over everything stored.
  cmp.eapr_staging_s =
      core::ReconfigManager::estimate_cf2array_cycles(cmp.eapr_bytes) /
      100e6;
  cmp.reloc_staging_s =
      core::ReconfigManager::estimate_cf2array_cycles(cmp.reloc_bytes) /
      100e6;
  return cmp;
}

void print_table() {
  std::printf("\n=== A1 (ablation): EAPR per-PRR bitstreams vs relocation "
              "===\n");
  std::printf("Prototype-footprint PRRs (16x10 CLBs, 37,104-byte "
              "bitstreams); staging = CF->SDRAM at startup.\n\n");
  std::printf("%-10s %-6s | %12s %12s %7s | %12s %12s\n", "modules",
              "PRRs", "EAPR [B]", "reloc [B]", "save", "EAPR stage",
              "reloc stage");
  for (int mods : {4, 8, 16}) {
    for (int prrs : {2, 4, 6}) {
      const auto c = compare(mods, prrs);
      std::printf("%-10d %-6d | %12lld %12lld %6.1fx | %10.2f s %10.2f s\n",
                  mods, prrs, static_cast<long long>(c.eapr_bytes),
                  static_cast<long long>(c.reloc_bytes),
                  static_cast<double>(c.eapr_bytes) /
                      static_cast<double>(c.reloc_bytes),
                  c.eapr_staging_s, c.reloc_staging_s);
    }
  }

  const std::int64_t bytes = fabric::partial_bitstream_bytes(
      fabric::ClbRect{0, 0, 16, 10});
  const double reloc_ms = bitstream::relocation_cycles(bytes) / 100e3;
  const double icap_ms =
      core::ReconfigManager::estimate_array2icap(bytes).seconds_at(100.0) *
      1e3;
  std::printf("\nRuntime cost added per reconfiguration by the FAR "
              "rewrite: %.3f ms (vs %.2f ms\nfor the array2icap transfer "
              "itself: +%.1f%%)\n\n",
              reloc_ms, icap_ms, 100.0 * reloc_ms / icap_ms);
}

void BM_Relocate(benchmark::State& state) {
  const auto bs = bitstream::PartialBitstream::create(
      "m", "prr0", fabric::ClbRect{0, 0, 16, 10});
  const fabric::ClbRect target{16, 0, 16, 10};
  for (auto _ : state) {
    auto moved = bitstream::relocate(bs, "prr1", target);
    benchmark::DoNotOptimize(moved);
  }
}
BENCHMARK(BM_Relocate);

void BM_StoreMaterialize(benchmark::State& state) {
  bitstream::RelocatingStore store;
  store.add_master(bitstream::PartialBitstream::create(
      "m", "prr0", fabric::ClbRect{0, 0, 16, 10}));
  const fabric::ClbRect target{32, 0, 16, 10};
  for (auto _ : state) {
    auto bs = store.materialize("m", "prr2", target);
    benchmark::DoNotOptimize(bs);
  }
}
BENCHMARK(BM_StoreMaterialize);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
