// Ablation A4 — self-healing reconfiguration under injected faults.
//
// The Figure 5 no-interruption property is only worth having if it
// survives faulty partial reconfigurations. This bench replays the E3
// switching scenario while arming k consecutive ICAP bitstream
// corruptions (k = 0..4) and reports what the recovery machinery costs:
// the PR phase stretches by one backoff+attempt per injected fault
// (and one source fallback once the SDRAM attempts are exhausted), but
// the output-stream gap at the IOM must stay flat — retries happen on
// the spare PRR, outside the processing path, exactly like the clean
// PR. A second table prices the readback scrubber's MicroBlaze
// overhead across scrub periods. See docs/FAULTS.md for the policies.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>

#include "core/scrubber.hpp"
#include "core/stats.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "sim/clock.hpp"
#include "sim/fault.hpp"

namespace {

using namespace vapres;
using comm::Word;

core::SystemParams small_prr_params() {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  return p;
}

struct Result {
  sim::Cycles pr_cycles = 0;   ///< started -> reconfig_done
  sim::Cycles gap = 0;         ///< max output gap at the IOM
  int retries = 0;
  int fallbacks = 0;
  /// Kernel edge accounting for the whole run. While the injector is
  /// armed the kernel delivers exhaustively (docs/SIMULATOR.md), so the
  /// skipped count comes from the warm-up and drain phases only.
  sim::KernelStats kernel;
};

Result run_faulty_switch(std::uint64_t injected_corruptions) {
  core::VapresSystem sys(small_prr_params());
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  sys.preload_sdram("offset_100", 0, 1);
  core::Rsb& rsb = sys.rsb();
  const auto up = *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  const auto down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      /*interval=*/4);
  sys.run_system_cycles(200);
  rsb.iom(0).reset_gap_stats();

  sim::ScopedFaultInjection faults(0xBE7Cu);
  if (injected_corruptions > 0) {
    faults->arm(sim::FaultSite::kIcapBitstreamCorruption, /*nth=*/0,
                injected_corruptions);
  }

  core::SwitchRequest req;
  req.src_prr = 0;
  req.dst_prr = 1;
  req.new_module_id = "offset_100";
  req.upstream = up;
  req.downstream = down;
  core::ModuleSwitcher sw(sys, req);
  sw.begin();
  sys.sim().run_until([&] { return sw.finished(); }, sim::kPsPerSecond * 300);
  sys.run_system_cycles(1000);

  Result r;
  r.pr_cycles = sw.timeline().reconfig_done - sw.timeline().started;
  r.gap = rsb.iom(0).max_output_gap();
  r.retries = sys.reconfig().retries();
  r.fallbacks = sys.reconfig().fallbacks();
  r.kernel = sys.sim().kernel_stats();
  return r;
}

double scrub_utilization(sim::Cycles period) {
  core::VapresSystem sys(small_prr_params());
  sys.bring_up_all_sites();
  std::optional<core::ScrubberTask> scrub;
  if (period > 0) {
    scrub.emplace(sys, period);
    scrub->start();
  }
  sys.run_system_cycles(200'000);
  return core::collect_stats(sys).mb_utilization();
}

void print_tables() {
  std::printf("\n=== A4: recovery cost of injected ICAP faults "
              "(16x4-CLB PRR, input word / 4 cycles) ===\n");
  std::printf("%-10s %14s %14s | %8s %10s | %10s\n", "faults k",
              "PR [ms]", "PR vs clean", "retries", "fallbacks",
              "stream gap");
  const Result clean = run_faulty_switch(0);
  Result worst;
  for (std::uint64_t k = 0; k <= 4; ++k) {
    const Result r = run_faulty_switch(k);
    worst = r;
    std::printf("%-10llu %14.2f %13.2fx | %8d %10d | %10llu\n",
                static_cast<unsigned long long>(k),
                static_cast<double>(r.pr_cycles) / 100e3,
                static_cast<double>(r.pr_cycles) /
                    static_cast<double>(clean.pr_cycles),
                r.retries, r.fallbacks,
                static_cast<unsigned long long>(r.gap));
  }
  std::printf("\nShape check: PR time grows ~linearly with k (one extra "
              "attempt each,\nplus the slower CF source after 3); the "
              "stream gap does not move.\n");

  auto print_kernel = [](const char* label, const sim::KernelStats& ks) {
    const double total =
        static_cast<double>(ks.edges_delivered + ks.edges_skipped);
    std::printf("  %-6s delivered %12llu | skipped %12llu (%.1f%% elided) "
                "| %llu sleeps, %llu wakes\n",
                label,
                static_cast<unsigned long long>(ks.edges_delivered),
                static_cast<unsigned long long>(ks.edges_skipped),
                total > 0
                    ? 100.0 * static_cast<double>(ks.edges_skipped) / total
                    : 0.0,
                static_cast<unsigned long long>(ks.domain_sleeps),
                static_cast<unsigned long long>(ks.component_wakes));
  };
  std::printf("\n--- kernel edge accounting (armed injector forces "
              "exhaustive delivery; see docs/SIMULATOR.md) ---\n");
  print_kernel("k=0", clean.kernel);
  print_kernel("k=4", worst.kernel);

  std::printf("\n--- readback-scrubber MicroBlaze overhead "
              "(idle system, 200k cycles) ---\n");
  std::printf("%-18s %16s\n", "period [cycles]", "MB utilization");
  std::printf("%-18s %15.3f%%\n", "off", 100.0 * scrub_utilization(0));
  for (sim::Cycles period : {10'000, 50'000, 100'000}) {
    std::printf("%-18llu %15.3f%%\n",
                static_cast<unsigned long long>(period),
                100.0 * scrub_utilization(period));
  }
  std::printf("\n");
}

void BM_SwitchWithFaults(benchmark::State& state) {
  const auto k = static_cast<std::uint64_t>(state.range(0));
  Result r;
  for (auto _ : state) r = run_faulty_switch(k);
  state.counters["pr_cycles"] = static_cast<double>(r.pr_cycles);
  state.counters["gap_cycles"] = static_cast<double>(r.gap);
}
BENCHMARK(BM_SwitchWithFaults)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
