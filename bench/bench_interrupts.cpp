// Ablation A3 — polling vs interrupt-driven monitoring software.
//
// The Figure 5 monitoring watcher (step 2) can poll the r-link every
// quantum or block on the intc. For sparse monitoring traffic, polling
// monopolizes MicroBlaze quanta that other software modules need, while
// the interrupt path costs only the ISR overhead per word. Measured:
// the useful work a compute task gets done alongside the watcher, as a
// function of monitoring-word rate.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "comm/fsl.hpp"
#include "proc/interrupt.hpp"
#include "proc/microblaze.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace vapres;
using comm::Word;

struct Outcome {
  std::uint64_t compute_quanta = 0;  // useful work done by the co-task
  std::uint64_t words_handled = 0;
};

/// A producer pushes a monitoring word every `interval` cycles for
/// `cycles` cycles; a watcher consumes them (polling or interrupt);
/// a compute task counts the quanta it gets.
Outcome run_mode(bool interrupts, int interval, int cycles) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  comm::DcrBus dcr;
  proc::Microblaze mb("mb", clk, dcr);
  comm::FslLink rlink("r", 512);
  proc::InterruptController intc;

  Outcome out;

  proc::FunctionTask compute("compute", [&](proc::Microblaze&) {
    ++out.compute_quanta;
    return false;
  });

  proc::FunctionTask poller("poller", [&](proc::Microblaze& core) {
    while (auto w = rlink.try_read()) {
      core.busy_for(1);
      ++out.words_handled;
    }
    return false;
  });

  if (interrupts) {
    const int irq =
        intc.add_source("rlink", [&rlink] { return rlink.can_read(); });
    intc.enable(irq);
    mb.attach_interrupts(&intc, [&](int, proc::Microblaze& core) {
      while (auto w = rlink.try_read()) {
        core.busy_for(1);
        ++out.words_handled;
      }
    });
  } else {
    mb.add_task(&poller);
  }
  mb.add_task(&compute);

  for (int c = 0; c < cycles; ++c) {
    if (c % interval == 0 && rlink.can_write()) rlink.write(1);
    sim.run_cycles(clk, 1);
  }
  return out;
}

void print_table() {
  constexpr int kCycles = 50000;
  std::printf("\n=== A3 (ablation): polling vs interrupt-driven "
              "monitoring (Fig. 5 step 2) ===\n");
  std::printf("One watcher + one compute software module sharing the "
              "MicroBlaze, %d cycles.\nCompute quanta = useful work the "
              "co-scheduled module completed.\n\n",
              kCycles);
  std::printf("%-22s | %14s %12s | %14s %12s\n", "monitor word every",
              "poll: compute", "handled", "intr: compute", "handled");
  for (int interval : {16, 64, 256, 1024}) {
    const Outcome poll = run_mode(false, interval, kCycles);
    const Outcome intr = run_mode(true, interval, kCycles);
    std::printf("%-5d cycles%10s | %14llu %12llu | %14llu %12llu\n",
                interval, "",
                static_cast<unsigned long long>(poll.compute_quanta),
                static_cast<unsigned long long>(poll.words_handled),
                static_cast<unsigned long long>(intr.compute_quanta),
                static_cast<unsigned long long>(intr.words_handled));
  }
  std::printf("\nShape: the classic trade-off. Polling caps the compute "
              "module at ~50%% of the core\nregardless of traffic; the "
              "interrupt path (ISR overhead %llu cycles/word) returns\n"
              "almost the whole core when monitoring is sparse, but loses "
              "to polling once words\narrive faster than the ISR overhead "
              "amortizes (the 16-cycle row).\n\n",
              static_cast<unsigned long long>(
                  proc::Microblaze::kIsrOverheadCycles));
}

void BM_Polling(benchmark::State& state) {
  Outcome out;
  for (auto _ : state) out = run_mode(false, state.range(0), 20000);
  state.counters["compute_quanta"] =
      static_cast<double>(out.compute_quanta);
}
BENCHMARK(BM_Polling)->Arg(64)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_InterruptDriven(benchmark::State& state) {
  Outcome out;
  for (auto _ : state) out = run_mode(true, state.range(0), 20000);
  state.counters["compute_quanta"] =
      static_cast<double>(out.compute_quanta);
}
BENCHMARK(BM_InterruptDriven)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
