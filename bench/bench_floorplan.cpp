// Experiment E8 — Figure 8: the prototype floorplan on the XC4VLX25,
// and the base-system / application flow turnaround (Section IV).
//
// Regenerates the prototype floorplan (2 PRRs in separate local clock
// regions, BUFR sites, slice-macro columns) as ASCII art, prints the
// system-definition artifacts the flow emits, and times both flows —
// including the paper's point that application builds touch only module
// logic, so they are orders of magnitude below a base-system rebuild.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "flow/app_flow.hpp"
#include "flow/base_system_flow.hpp"

namespace {

using namespace vapres;

void print_paper_table() {
  flow::BaseSystemFlow base_flow;
  const auto base = base_flow.run(core::SystemParams::prototype());

  std::printf("\n=== E8: prototype floorplan on the XC4VLX25 (Figure 8) "
              "===\n\n");
  std::printf("%s\n", base.floorplan.render_ascii().c_str());
  for (std::size_t i = 0; i < base.floorplan.prrs.size(); ++i) {
    const auto& p = base.floorplan.prrs[i];
    std::printf("PRR %zu: %s, %d slices, BUFR at region (row %d, half %d), "
                "slice macros at CLB column %d\n",
                i, p.rect.to_string().c_str(), p.rect.slices(),
                p.bufr_region.row, p.bufr_region.half, p.slice_macro_col);
  }
  std::printf("\nStatic region: %d slices estimated / %d slices available "
              "outside PRRs (%.1f%% of device)\n",
              base.resources.total(), base.floorplan.static_slices,
              base.static_utilization());
  std::printf("Static bitstream: %lld bytes; system definition: %zu B MHS, "
              "%zu B MSS, %zu B UCF\n",
              static_cast<long long>(base.static_bitstream.size_bytes),
              base.mhs.size(), base.mss.size(), base.ucf.size());

  // Application flow on top of the base system.
  const auto lib = hwmodule::ModuleLibrary::standard();
  flow::ApplicationFlow app_flow(base, lib);
  core::KpnAppSpec app;
  app.name = "adaptive_filtering";
  app.nodes = {{"a", "ma4"}, {"b", "ma8"}};
  const auto build = app_flow.build(app);
  std::printf("\nApplication flow ('%s'): %zu partial bitstreams "
              "(%d modules x %zu PRRs), all valid: %s\n\n",
              app.name.c_str(), build.bitstreams.size(), 2,
              base.floorplan.prrs.size(), build.ok() ? "yes" : "no");
}

void BM_BaseSystemFlow(benchmark::State& state) {
  const int n_prrs = static_cast<int>(state.range(0));
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].num_prrs = n_prrs;
  // The VLX25 tops out at 2 prototype-sized PRRs (E2); larger systems
  // target the VLX60 the paper also references.
  if (n_prrs > 2) p.device = fabric::DeviceGeometry::xc4vlx60();
  flow::BaseSystemFlow flow;
  for (auto _ : state) {
    auto result = flow.run(p);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BaseSystemFlow)->Arg(2)->Arg(6);

void BM_ApplicationFlow(benchmark::State& state) {
  flow::BaseSystemFlow base_flow;
  const auto base = base_flow.run(core::SystemParams::prototype());
  const auto lib = hwmodule::ModuleLibrary::standard();
  flow::ApplicationFlow app_flow(base, lib);
  core::KpnAppSpec app;
  app.name = "bench";
  app.nodes = {{"a", "ma4"}, {"b", "fir8_lowpass"}};
  for (auto _ : state) {
    auto result = app_flow.build(app);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ApplicationFlow);

void BM_FloorplannerScaling(benchmark::State& state) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].num_prrs = static_cast<int>(state.range(0));
  flow::Floorplanner planner;
  for (auto _ : state) {
    auto plan = planner.place(p);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_FloorplannerScaling)->Arg(2)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
