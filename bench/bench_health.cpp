// Health-monitor gate — monitoring must be (nearly) free and remediation
// must not cost admissions (see docs/HEALTH.md).
//
// Three configurations run the identical fixed-seed fleet workload with
// a fault-storm phase (ICAP corruption injected mid-run, the
// self-healing reconfig path keeps admitting):
//
//   - monitor-off: the PR 8 control plane exactly as it was — no health
//     agent, no sampling, the overhead/admission baseline;
//   - observe:     full health monitoring (sampler + standard SLO rules
//     evaluated every tick) with remediation disabled — the
//     monitoring-overhead measurement mode;
//   - remediate:   monitoring plus isolate/drain/un-isolate remediation
//     and the flight recorder armed.
//
// Gates:
//   - invariants: zero violations in every configuration;
//   - overhead: host wall-clock inside health_tick() <= 1% of the
//     observe run's total wall time;
//   - admission safety: the remediating fleet admits >= the monitor-off
//     baseline on the same storm workload, with zero apps lost to
//     drains (remediation must help or stay out of the way, never harm);
//   - storm realism: the storm phase actually injected faults;
//   - determinism: the remediate run replays to a bit-identical digest,
//     health ticks and remediation decisions included.
//
// Usage: bench_health [--lifetimes=N] [--seed=S] [--quick]
// Emits BENCH_health.json; exits non-zero on any gate failure.
// scripts/tier1.sh runs `bench_health --quick`.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fleet/spec.hpp"
#include "load/fleet_soak.hpp"

namespace {

using namespace vapres;

/// standard_fleet with a fault-storm slice carved out of the steady
/// phase. Armed injection forces every fabric's kernel exhaustive
/// (cycle-by-cycle, no event skipping), so the storm is kept short and
/// dense: ~1/8 of the steady submissions at 10x the arrival rate, on
/// the small-footprint class mix the single-fabric soak's storm uses.
load::ScenarioSpec storm_scenario(std::uint64_t seed, std::uint64_t lifetimes,
                                  int num_tenants, int num_fabrics) {
  load::ScenarioSpec s = load::ScenarioSpec::standard_fleet(
      seed, lifetimes, num_tenants, num_fabrics);
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    if (s.phases[i].name != "steady") continue;
    load::Phase storm = s.phases[i];
    storm.name = "fault-storm";
    storm.submissions = std::max<std::uint64_t>(8, storm.submissions / 8);
    storm.mean_interarrival_cycles /= 10.0;
    storm.icap_fault_probability = 0.1;
    storm.class_weights = {2.0, 2.0, 2.0, 1.5, 0.0, 0.0, 0.0};
    s.phases[i].submissions -= std::min(s.phases[i].submissions - 1,
                                        storm.submissions);
    s.phases.insert(s.phases.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                    storm);
    break;
  }
  return s;
}

struct ConfigOutcome {
  std::string name;
  load::FleetSoakResult res;
};

ConfigOutcome run_config(const std::string& name,
                         const load::ScenarioSpec& scenario,
                         std::uint64_t seed, bool verbose, bool monitor,
                         bool remediate, const std::string& flight_dir) {
  ConfigOutcome out;
  out.name = name;

  load::FleetSoakOptions opt;
  opt.seed = seed;
  opt.verbose = verbose;
  opt.scenario = scenario;
  opt.fleet = fleet::FleetSpec::uniform(2);
  if (monitor) {
    fleet::HealthConfig hc;
    hc.enabled = true;
    hc.remediate = remediate;
    // No rules set: run_fleet_soak fills in standard_health_rules().
    opt.health = hc;
    opt.flight_dir = flight_dir;
  }
  out.res = load::run_fleet_soak(opt);
  return out;
}

void print_json_config(std::FILE* f, const ConfigOutcome& c, bool last) {
  const double overhead =
      c.res.wall_seconds > 0.0 ? c.res.health_wall_seconds / c.res.wall_seconds
                               : 0.0;
  std::fprintf(
      f,
      "    {\"name\": \"%s\", \"digest\": \"%016llx\", "
      "\"submitted\": %llu, \"admitted\": %llu, \"rejected\": %llu, "
      "\"migrations_lost\": %llu, \"faults_injected\": %llu, "
      "\"health_ticks\": %llu, \"breaches\": %llu, "
      "\"breaches_cleared\": %llu, \"isolations\": %llu, "
      "\"unisolations\": %llu, \"drains\": %llu, \"flight_bundles\": %llu, "
      "\"health_wall_seconds\": %.6f, \"wall_seconds\": %.3f, "
      "\"health_overhead\": %.6f, \"p50_submit_to_launch\": %llu, "
      "\"p99_submit_to_launch\": %llu, \"invariant_violations\": %zu}%s\n",
      c.name.c_str(), static_cast<unsigned long long>(c.res.digest),
      static_cast<unsigned long long>(c.res.submitted),
      static_cast<unsigned long long>(c.res.admitted),
      static_cast<unsigned long long>(c.res.rejected),
      static_cast<unsigned long long>(c.res.migrations_lost),
      static_cast<unsigned long long>(c.res.faults_injected),
      static_cast<unsigned long long>(c.res.health_ticks),
      static_cast<unsigned long long>(c.res.breaches),
      static_cast<unsigned long long>(c.res.breaches_cleared),
      static_cast<unsigned long long>(c.res.isolations),
      static_cast<unsigned long long>(c.res.unisolations),
      static_cast<unsigned long long>(c.res.drains),
      static_cast<unsigned long long>(c.res.flight_bundles),
      c.res.health_wall_seconds, c.res.wall_seconds, overhead,
      static_cast<unsigned long long>(c.res.p50_submit_to_launch),
      static_cast<unsigned long long>(c.res.p99_submit_to_launch),
      c.res.invariants.violations.size(), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t lifetimes = 4'000;
  std::uint64_t seed = 1;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--lifetimes=", 12) == 0) {
      lifetimes = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return 2;
    }
  }
  if (quick && lifetimes == 4'000) lifetimes = 400;

  const load::ScenarioSpec scenario = storm_scenario(seed, lifetimes, 3, 2);
  const std::string flight_dir = "bench_health_flight";
  std::error_code ec;
  std::filesystem::remove_all(flight_dir, ec);

  std::printf("== health: %llu lifetimes, seed %llu%s ==\n",
              static_cast<unsigned long long>(lifetimes),
              static_cast<unsigned long long>(seed), quick ? " (quick)" : "");

  std::vector<ConfigOutcome> runs;
  runs.push_back(run_config("monitor-off", scenario, seed, !quick,
                            /*monitor=*/false, /*remediate=*/false, ""));
  runs.push_back(run_config("observe", scenario, seed, !quick,
                            /*monitor=*/true, /*remediate=*/false, ""));
  runs.push_back(run_config("remediate", scenario, seed, !quick,
                            /*monitor=*/true, /*remediate=*/true, flight_dir));
  const ConfigOutcome& off = runs[0];
  const ConfigOutcome& observe = runs[1];
  const ConfigOutcome& remediate = runs[2];

  for (const ConfigOutcome& c : runs) {
    std::printf("\n-- %s --\n%s\n", c.name.c_str(), c.res.summary().c_str());
  }

  std::vector<std::string> failures;
  auto gate = [&](bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  };
  for (const ConfigOutcome& c : runs) {
    gate(c.res.invariants.ok(), c.name + ": " + c.res.invariants.to_string());
    gate(c.res.migrations_lost == 0,
         c.name + ": " + std::to_string(c.res.migrations_lost) +
             " apps lost");
    gate(c.res.faults_injected > 0,
         c.name + ": storm phase injected no faults");
  }

  // Monitoring overhead: measured on the observe run (same rule load as
  // remediate, none of remediation's useful work mixed in).
  gate(observe.res.health_ticks > 0, "observe: no health ticks executed");
  const double overhead =
      observe.res.wall_seconds > 0.0
          ? observe.res.health_wall_seconds / observe.res.wall_seconds
          : 0.0;
  gate(overhead <= 0.01,
       "monitoring overhead " + std::to_string(overhead * 100.0) +
           "% > 1% of soak wall time");

  // Remediation must not cost admissions on the storm workload.
  gate(remediate.res.admitted >= off.res.admitted,
       "health-enabled fleet admitted " +
           std::to_string(remediate.res.admitted) + " < monitor-off " +
           std::to_string(off.res.admitted));

  // Determinism: health ticks, breaches, and remediation decisions fold
  // into the digest; an identical rerun must reproduce it bit for bit.
  std::filesystem::remove_all(flight_dir, ec);
  const ConfigOutcome replay =
      run_config("remediate-replay", scenario, seed, false,
                 /*monitor=*/true, /*remediate=*/true, flight_dir);
  gate(replay.res.digest == remediate.res.digest,
       "nondeterministic: remediate replay digest differs");
  gate(replay.res.health_ticks == remediate.res.health_ticks &&
           replay.res.breaches == remediate.res.breaches &&
           replay.res.isolations == remediate.res.isolations,
       "nondeterministic: health ledger differs across identical reruns");

  bool pass = failures.empty();
  for (const std::string& f : failures) {
    std::printf("GATE FAIL: %s\n", f.c_str());
  }

  std::FILE* f = std::fopen("BENCH_health.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"lifetimes\": %llu,\n  \"seed\": %llu,\n"
                 "  \"quick\": %s,\n  \"overhead_gate\": 0.01,\n"
                 "  \"measured_overhead\": %.6f,\n  \"configs\": [\n",
                 static_cast<unsigned long long>(lifetimes),
                 static_cast<unsigned long long>(seed),
                 quick ? "true" : "false", overhead);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      print_json_config(f, runs[i], i + 1 == runs.size());
    }
    std::fprintf(f, "  ],\n  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_health.json\n");
  }
  std::filesystem::remove_all(flight_dir, ec);
  std::printf("health gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
