// Bitstream-cache benchmark — the bitman subsystem's acceptance gates.
//
// Not a paper experiment (the paper pre-stages everything in SDRAM and
// never faces a working set larger than memory): a fixed-seed churn
// workload over 3 PRRs x 3 modules = 9 (module, PRR) pairs against an
// SDRAM deliberately sized to 5 arrays, while a live counter stream
// keeps flowing through a fourth PRR. Round-robin churn with a per-PRR
// module rotation, so the per-PRR next-module predictor has something
// honest to learn and the PrefetchEngine stages upcoming bitstreams in
// the gaps between reconfigurations.
//
// Measures, and gates on (scripts/tier1.sh runs this binary):
//   * warm-hit latency within 10 % of the raw vapres_array2icap path —
//     the cache adds no cycle cost to the paper's fast path;
//   * mean managed reconfiguration latency >= 2x better than the
//     no-cache CompactFlash path over the same churn sequence;
//   * demand hit rate >= 0.55 despite SDRAM being below the working set;
//   * zero stream interruption while prefetch stagings and demand
//     transfers run (in_order_counter_stream over the sink words).
//
// Emits BENCH_bitstream_cache.json.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bitman/cache.hpp"
#include "bitstream/bitstream.hpp"
#include "core/reconfig.hpp"
#include "core/system.hpp"
#include "../tests/test_util.hpp"

namespace {

using namespace vapres;
using comm::Word;

// 16x1-CLB PRRs: 4632-byte bitstreams keep each simulated transfer in
// the ~10M-cycle range so the whole churn fits a few simulated seconds.
constexpr int kChurnPrrs = 3;       // PRRs 1..3 churn; PRR 0 streams
constexpr int kRotation = 3;        // modules per churning PRR
constexpr int kEvents = 36;         // 12 per churning PRR
constexpr int kSdramArrays = 5;     // working set is 9 pairs
constexpr sim::Cycles kGapCycles = 14'000'000;   // covers one cf2array
constexpr int kStreamEvents = 3;    // live-stream window (churn events)
constexpr int kStreamInterval = 128;  // source word spacing (cycles)

// Only modules fitting a 64-slice (16x1 CLB) PRR; one rotation per PRR.
const char* kModules[kChurnPrrs][kRotation] = {
    {"decim2", "decim4", "upsample2"},
    {"offset_100", "splitter2", "adder2"},
    {"fsl_bridge_out", "fsl_bridge_in", "passthrough"},
};

std::int64_t array_bytes() {
  return bitstream::PartialBitstream::create("probe", "p",
                                             fabric::ClbRect{0, 0, 16, 1})
      .size_bytes;
}

std::unique_ptr<core::VapresSystem> make_system() {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].num_prrs = 1 + kChurnPrrs;
  p.rsbs[0].prr_width_clbs = 1;
  p.sdram_bytes = kSdramArrays * array_bytes() + 100;
  auto sys = std::make_unique<core::VapresSystem>(std::move(p));
  sys->bring_up_all_sites();
  return sys;
}

struct ChurnResult {
  double mean_cycles = 0.0;       // all demand reconfigurations
  double warm_mean_cycles = 0.0;  // warm hits only (managed run)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  bitman::BitmanStats stats;
  std::uint64_t stream_words = 0;
  bool stream_in_order = true;

  double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// Runs the churn sequence through the bitstream cache (kManaged) with
/// the live counter stream up for the first kStreamEvents events.
ChurnResult run_managed() {
  auto sys = make_system();
  core::Rsb& rsb = sys->rsb();

  // PRR 0: live passthrough stream, IOM -> PRR -> IOM.
  sys->reconfigure_now(0, 0, "passthrough");
  sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  rsb.iom(0).take_received();
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      kStreamInterval);

  ChurnResult r;
  const bitman::BitmanStats& live = sys->bitman().stats();
  const std::uint64_t hits0 = live.hits;
  const std::uint64_t misses0 = live.misses;
  double total = 0.0;
  double warm_total = 0.0;
  for (int e = 0; e < kEvents; ++e) {
    const int prr = 1 + e % kChurnPrrs;
    const char* module = kModules[prr - 1][(e / kChurnPrrs) % kRotation];
    const std::uint64_t hits_before = live.hits;
    const sim::Cycles charged =
        sys->reconfigure_now(0, prr, module, core::ReconfigSource::kManaged);
    total += static_cast<double>(charged);
    if (live.hits > hits_before) {
      warm_total += static_cast<double>(charged);
    }
    if (e + 1 == kStreamEvents) {
      // End of the overlap window: stop the source, let the pipeline
      // drain, and check the stream never lost or reordered a word
      // while demand transfers and prefetch stagings ran.
      rsb.iom(0).stop_source();
      sys->run_system_cycles(20'000);
      const std::vector<Word> words = rsb.iom(0).take_received();
      r.stream_words = words.size();
      r.stream_in_order = test::in_order_counter_stream(words);
    }
    // The gap until the next request: prefetch staging runs here while
    // the stream (during the window) keeps flowing.
    sys->run_system_cycles(kGapCycles);
  }
  r.hits = live.hits - hits0;
  r.misses = live.misses - misses0;
  r.mean_cycles = total / kEvents;
  r.warm_mean_cycles = r.hits > 0 ? warm_total / static_cast<double>(r.hits)
                                  : 0.0;
  r.stats = live;
  return r;
}

/// The no-cache reference: the same churn sequence served with the
/// paper's classic read-all-then-write CompactFlash path.
ChurnResult run_cf_reference() {
  auto sys = make_system();
  sys->reconfigure_now(0, 0, "passthrough");
  ChurnResult r;
  double total = 0.0;
  for (int e = 0; e < kEvents; ++e) {
    const int prr = 1 + e % kChurnPrrs;
    const char* module = kModules[prr - 1][(e / kChurnPrrs) % kRotation];
    total += static_cast<double>(sys->reconfigure_now(
        0, prr, module, core::ReconfigSource::kCompactFlash));
    sys->run_system_cycles(1'000'000);
  }
  r.mean_cycles = total / kEvents;
  return r;
}

}  // namespace

int main() {
  std::printf("== bitstream cache: LRU + prefetch vs no-cache CF path ==\n");
  std::printf("working set 9 pairs (4632 B each), SDRAM holds %d; "
              "%d churn events over %d PRRs\n\n",
              kSdramArrays, kEvents, kChurnPrrs);

  const ChurnResult managed = run_managed();
  const ChurnResult cf_ref = run_cf_reference();
  const double array_ref =
      core::ReconfigManager::estimate_array2icap(array_bytes())
          .total_cycles();

  const double warm_delta_pct =
      array_ref > 0.0
          ? 100.0 * (managed.warm_mean_cycles - array_ref) / array_ref
          : 0.0;
  const double speedup = managed.mean_cycles > 0.0
                             ? cf_ref.mean_cycles / managed.mean_cycles
                             : 0.0;

  std::printf("hits %llu / misses %llu (hit rate %.2f)\n",
              static_cast<unsigned long long>(managed.hits),
              static_cast<unsigned long long>(managed.misses),
              managed.hit_rate());
  std::printf("prefetch: %llu issued, %llu completed, %llu useful; "
              "%llu evictions\n",
              static_cast<unsigned long long>(managed.stats.prefetch_issued),
              static_cast<unsigned long long>(
                  managed.stats.prefetch_completed),
              static_cast<unsigned long long>(managed.stats.prefetch_useful),
              static_cast<unsigned long long>(managed.stats.evictions));
  std::printf("warm hit mean %.0f cycles vs array path %.0f (%+.2f%%)\n",
              managed.warm_mean_cycles, array_ref, warm_delta_pct);
  std::printf("managed mean %.0f cycles vs CF path %.0f (%.2fx)\n",
              managed.mean_cycles, cf_ref.mean_cycles, speedup);
  std::printf("stream: %llu words through PRR0 during the overlap window, "
              "in order: %s\n",
              static_cast<unsigned long long>(managed.stream_words),
              managed.stream_in_order ? "yes" : "NO");

  const bool warm_ok = warm_delta_pct <= 10.0 && managed.hits > 0;
  const bool speedup_ok = speedup >= 2.0;
  const bool hit_rate_ok = managed.hit_rate() >= 0.55;
  const bool stream_ok =
      managed.stream_in_order && managed.stream_words >= 100'000;
  std::printf("warm-hit delta <= 10%%: %s\n", warm_ok ? "PASS" : "FAIL");
  std::printf("managed speedup >= 2x: %s\n", speedup_ok ? "PASS" : "FAIL");
  std::printf("hit rate >= 0.55: %s\n", hit_rate_ok ? "PASS" : "FAIL");
  std::printf("stream uninterrupted (>= 100k words, in order): %s\n",
              stream_ok ? "PASS" : "FAIL");

  const bool pass = warm_ok && speedup_ok && hit_rate_ok && stream_ok;
  std::FILE* f = std::fopen("BENCH_bitstream_cache.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"events\": %d,\n"
        "  \"sdram_arrays\": %d,\n"
        "  \"working_set_pairs\": %d,\n"
        "  \"hits\": %llu,\n"
        "  \"misses\": %llu,\n"
        "  \"hit_rate\": %.4f,\n"
        "  \"evictions\": %llu,\n"
        "  \"prefetch_issued\": %llu,\n"
        "  \"prefetch_completed\": %llu,\n"
        "  \"prefetch_useful\": %llu,\n"
        "  \"warm_hit_mean_cycles\": %.1f,\n"
        "  \"array_ref_cycles\": %.1f,\n"
        "  \"warm_hit_delta_pct\": %.3f,\n"
        "  \"managed_mean_cycles\": %.1f,\n"
        "  \"cf_ref_mean_cycles\": %.1f,\n"
        "  \"managed_speedup\": %.3f,\n"
        "  \"stream_words\": %llu,\n"
        "  \"stream_in_order\": %s,\n"
        "  \"thresholds\": {\"warm_hit_delta_max_pct\": 10.0, "
        "\"managed_speedup_min\": 2.0, \"hit_rate_min\": 0.55, "
        "\"stream_words_min\": 100000},\n"
        "  \"pass\": %s\n"
        "}\n",
        kEvents, kSdramArrays, kChurnPrrs * kRotation,
        static_cast<unsigned long long>(managed.hits),
        static_cast<unsigned long long>(managed.misses),
        managed.hit_rate(),
        static_cast<unsigned long long>(managed.stats.evictions),
        static_cast<unsigned long long>(managed.stats.prefetch_issued),
        static_cast<unsigned long long>(managed.stats.prefetch_completed),
        static_cast<unsigned long long>(managed.stats.prefetch_useful),
        managed.warm_mean_cycles, array_ref, warm_delta_pct,
        managed.mean_cycles, cf_ref.mean_cycles, speedup,
        static_cast<unsigned long long>(managed.stream_words),
        managed.stream_in_order ? "true" : "false",
        pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_bitstream_cache.json\n");
  }
  return pass ? 0 : 1;
}
