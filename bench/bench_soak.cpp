// Sustained-load soak gate — the scheduler + fabric under 10^4..10^6
// seeded application lifetimes (see docs/LOADGEN.md).
//
// Runs load::run_soak over the standard scenario (warmup / steady
// Poisson / bursty-diurnal / fault-storm / adversarial churn) and gates
// on:
//
//   - invariants: zero violations (resource leaks, accounting drift,
//     word loss, live-stream gaps, kernel-time monotonicity);
//   - completion: every submitted lifetime reaches a terminal state;
//   - throughput: sustained lifetimes/s above a floor chosen an order
//     of magnitude under this machine's measured rate, so the gate
//     catches algorithmic regressions (O(lifetimes) scans creeping
//     back), not scheduler jitter;
//   - admission latency: p99 submit->launch MicroBlaze cycles. This is
//     simulated time, so it is exact and tight;
//   - memory stability: checkpoint RSS must plateau — the end sample
//     stays within 5% + 2 MiB of the mid-run sample (catches unbounded
//     histories, never-retired records, leaked bitstream copies).
//
// --quick additionally replays the same seed and insists on a
// bit-identical run digest (the determinism gate sized for tier-1), and
// runs the snap checkpoint/restore gates (docs/SNAPSHOT.md):
//
//   - restore-mid-soak: for three seeds, a run checkpointed mid-stream,
//     stopped, and resumed from the blob must finish with the same
//     digest as the uninterrupted run, bit for bit;
//   - checkpoint overhead: a run checkpointing every 256 submissions
//     must spend <= 5% of its wall time inside checkpointing, and its
//     digest must still match the checkpoint-free run.
//
// Usage: bench_soak [--lifetimes=N] [--seed=S] [--sweep=K] [--quick]
// Emits BENCH_soak.json; exits non-zero on any gate failure.
// scripts/tier1.sh runs `bench_soak --quick`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "load/soak.hpp"

namespace {

using namespace vapres;

struct Gates {
  /// Measured ~68 lifetimes/s at 10^3 (storm-heavy mix) and ~300/s at
  /// 10^5 on the reference 1-CPU container; the floor sits 3x under
  /// the worst case so it trips on algorithmic regressions (per-cycle
  /// ticking creeping back, O(lifetimes) scans), not machine jitter.
  double min_lifetimes_per_sec = 20.0;
  /// p99 admission->launch spans a defrag- or preemption-assisted
  /// launch on the big PRRs: ~8.4M MicroBlaze cycles measured (two PR
  /// transfers plus decision work). Simulated time, so tight: 4x.
  std::uint64_t max_p99_submit_to_launch = 32'000'000;  // mb cycles
  double rss_plateau_ratio = 1.05;
  std::uint64_t rss_plateau_slack_kb = 2048;
};

struct RunOutcome {
  std::uint64_t seed = 0;
  load::SoakResult res;
  bool deterministic = true;  // only exercised under --quick
  std::vector<std::string> failures;
};

void gate(RunOutcome& out, bool ok, const std::string& what) {
  if (!ok) out.failures.push_back(what);
}

RunOutcome run_one(std::uint64_t seed, std::uint64_t lifetimes,
                   const Gates& g, bool quick) {
  RunOutcome out;
  out.seed = seed;

  load::SoakOptions opt;
  opt.seed = seed;
  opt.lifetimes = lifetimes;
  opt.verbose = !quick;
  out.res = load::run_soak(opt);
  const load::SoakResult& r = out.res;

  gate(out, r.invariants.ok(), r.invariants.to_string());
  gate(out, r.submitted == lifetimes,
       "submitted " + std::to_string(r.submitted) + " != requested " +
           std::to_string(lifetimes));
  gate(out, r.lifetimes_completed == r.submitted,
       "only " + std::to_string(r.lifetimes_completed) + " of " +
           std::to_string(r.submitted) + " lifetimes completed");
  gate(out, r.admitted > 0 && r.rejected > 0,
       "degenerate mix: admitted=" + std::to_string(r.admitted) +
           " rejected=" + std::to_string(r.rejected) +
           " (scenario no longer exercises both paths)");
  gate(out, r.lifetimes_per_second >= g.min_lifetimes_per_sec,
       "throughput " + std::to_string(r.lifetimes_per_second) +
           " lifetimes/s under floor " +
           std::to_string(g.min_lifetimes_per_sec));
  gate(out, r.p99_submit_to_launch <= g.max_p99_submit_to_launch,
       "p99 submit->launch " + std::to_string(r.p99_submit_to_launch) +
           " mb-cycles over cap " +
           std::to_string(g.max_p99_submit_to_launch));
  if (r.rss_kb_mid > 0 && r.rss_kb_end > 0) {
    const double cap = static_cast<double>(r.rss_kb_mid) *
                           g.rss_plateau_ratio +
                       static_cast<double>(g.rss_plateau_slack_kb);
    gate(out, static_cast<double>(r.rss_kb_end) <= cap,
         "RSS grew past plateau: mid " + std::to_string(r.rss_kb_mid) +
             " kB -> end " + std::to_string(r.rss_kb_end) + " kB");
  }

  if (quick) {
    load::SoakResult replay = load::run_soak(opt);
    out.deterministic = replay.digest == r.digest;
    gate(out, out.deterministic,
         "nondeterministic: replay digest differs for seed " +
             std::to_string(seed));
  }
  return out;
}

/// The snap subsystem's soak gates (docs/SNAPSHOT.md): restore-mid-soak
/// digest equality over three seeds, plus the <= 5% checkpoint-overhead
/// cap. `baseline_digest` is the plain quick run's digest for the same
/// seed/lifetimes (the overhead run must reproduce it).
struct SnapOutcome {
  int restore_seeds_ok = 0;
  double checkpoint_overhead_pct = 0.0;
  std::vector<std::string> failures;
};

SnapOutcome run_snap_gates(std::uint64_t seed, std::uint64_t lifetimes,
                           std::uint64_t baseline_digest) {
  SnapOutcome out;
  auto gate = [&out](bool ok, const std::string& what) {
    if (!ok) out.failures.push_back(what);
  };

  for (std::uint64_t s = seed; s < seed + 3; ++s) {
    load::SoakOptions base;
    base.seed = s;
    base.lifetimes = 600;
    const load::SoakResult plain = load::run_soak(base);

    load::SoakOptions crash = base;
    std::string blob;
    crash.snapshot_at = 300;
    crash.snapshot_out = &blob;
    crash.stop_at_snapshot = true;
    load::run_soak(crash);

    load::SoakOptions resume = base;
    resume.resume_from = blob;
    const load::SoakResult resumed = load::run_soak(resume);

    const bool match =
        resumed.digest == plain.digest && resumed.ok() && plain.ok();
    if (match) ++out.restore_seeds_ok;
    gate(match, "restore-mid-soak: seed " + std::to_string(s) +
                    " resumed run diverged (plain " +
                    std::to_string(plain.digest) + ", resumed " +
                    std::to_string(resumed.digest) + ")");
  }

  load::SoakOptions oh;
  oh.seed = seed;
  oh.lifetimes = lifetimes;
  oh.snapshot_every = 256;
  const load::SoakResult ohr = load::run_soak(oh);
  out.checkpoint_overhead_pct =
      ohr.wall_seconds > 0.0
          ? 100.0 * ohr.checkpoint_wall_seconds / ohr.wall_seconds
          : 0.0;
  gate(ohr.digest == baseline_digest,
       "checkpointing perturbed the run: digest " +
           std::to_string(ohr.digest) + " != baseline " +
           std::to_string(baseline_digest));
  gate(ohr.snapshots_taken > 0, "overhead run took no snapshots");
  gate(out.checkpoint_overhead_pct <= 5.0,
       "checkpoint overhead " + std::to_string(out.checkpoint_overhead_pct) +
           "% of wall time exceeds the 5% cap");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t lifetimes = 100'000;
  std::uint64_t seed = 1;
  std::uint64_t sweep = 1;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--lifetimes=", 12) == 0) {
      lifetimes = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--sweep=", 8) == 0) {
      sweep = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return 2;
    }
  }
  if (quick && lifetimes == 100'000) lifetimes = 2'000;
  if (sweep == 0) sweep = 1;

  Gates g;
  std::printf("== soak: %llu lifetimes x %llu seed(s), base seed %llu%s ==\n",
              static_cast<unsigned long long>(lifetimes),
              static_cast<unsigned long long>(sweep),
              static_cast<unsigned long long>(seed), quick ? " (quick)" : "");

  std::vector<RunOutcome> runs;
  bool pass = true;
  for (std::uint64_t k = 0; k < sweep; ++k) {
    RunOutcome out = run_one(seed + k, lifetimes, g, quick);
    std::printf("\n-- seed %llu --\n%s\n",
                static_cast<unsigned long long>(out.seed),
                out.res.summary().c_str());
    for (const std::string& f : out.failures) {
      std::printf("GATE FAIL: %s\n", f.c_str());
      pass = false;
    }
    runs.push_back(std::move(out));
  }

  SnapOutcome snap;
  if (quick) {
    std::printf("\n-- snap gates (restore-mid-soak + checkpoint "
                "overhead) --\n");
    snap = run_snap_gates(seed, lifetimes, runs.front().res.digest);
    std::printf("restore-mid-soak: %d/3 seeds bit-identical; checkpoint "
                "overhead %.2f%% of wall time\n",
                snap.restore_seeds_ok, snap.checkpoint_overhead_pct);
    for (const std::string& f : snap.failures) {
      std::printf("GATE FAIL: %s\n", f.c_str());
      pass = false;
    }
  }

  std::FILE* f = std::fopen("BENCH_soak.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"lifetimes\": %llu,\n  \"quick\": %s,\n",
                 static_cast<unsigned long long>(lifetimes),
                 quick ? "true" : "false");
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const load::SoakResult& r = runs[i].res;
      std::fprintf(
          f,
          "    {\"seed\": %llu, \"digest\": \"%016llx\", "
          "\"lifetimes_completed\": %llu, \"admitted\": %llu, "
          "\"rejected\": %llu, \"lifetimes_per_sec\": %.1f, "
          "\"p50_submit_to_launch\": %llu, \"p99_submit_to_launch\": %llu, "
          "\"rss_kb_mid\": %llu, \"rss_kb_end\": %llu, "
          "\"invariant_violations\": %zu, \"deterministic\": %s, "
          "\"gate_failures\": %zu}%s\n",
          static_cast<unsigned long long>(runs[i].seed),
          static_cast<unsigned long long>(r.digest),
          static_cast<unsigned long long>(r.lifetimes_completed),
          static_cast<unsigned long long>(r.admitted),
          static_cast<unsigned long long>(r.rejected),
          r.lifetimes_per_second,
          static_cast<unsigned long long>(r.p50_submit_to_launch),
          static_cast<unsigned long long>(r.p99_submit_to_launch),
          static_cast<unsigned long long>(r.rss_kb_mid),
          static_cast<unsigned long long>(r.rss_kb_end),
          r.invariants.violations.size(),
          runs[i].deterministic ? "true" : "false", runs[i].failures.size(),
          i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    if (quick) {
      std::fprintf(f,
                   "  \"snap\": {\"restore_seeds_ok\": %d, "
                   "\"checkpoint_overhead_pct\": %.2f},\n",
                   snap.restore_seeds_ok, snap.checkpoint_overhead_pct);
    }
    std::fprintf(f,
                 "  \"thresholds\": {\"min_lifetimes_per_sec\": %.1f, "
                 "\"max_p99_submit_to_launch\": %llu, "
                 "\"rss_plateau_ratio\": %.2f, "
                 "\"rss_plateau_slack_kb\": %llu},\n"
                 "  \"pass\": %s\n}\n",
                 g.min_lifetimes_per_sec,
                 static_cast<unsigned long long>(g.max_p99_submit_to_launch),
                 g.rss_plateau_ratio,
                 static_cast<unsigned long long>(g.rss_plateau_slack_kb),
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_soak.json\n");
  }
  std::printf("soak gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
