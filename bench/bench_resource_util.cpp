// Experiment E2 — Section V.B resource utilization + Figure 7 parameter
// space.
//
// Paper-reported values (prototype: 1 RSB, 2 PRRs, 1 IOM, kr=kl=2,
// ki=ko=1, w=32 on the XC4VLX25):
//   static region              : 9,421 slices (~86 % of the VLX25)
//   inter-module comm arch     : 1,020 slices
//
// The sweep shows how the communication architecture scales with the
// Figure 7 architectural parameters (N, w, kr/kl, ki/ko) — the
// "resource utilization vs communication flexibility" balance of
// Section IV.A.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "flow/resource_model.hpp"
#include "sim/check.hpp"

namespace {

using namespace vapres;

void print_paper_table() {
  const core::SystemParams proto = core::SystemParams::prototype();
  const auto report = flow::ResourceModel::static_region(proto);

  std::printf("\n=== E2: resource utilization (paper Section V.B) ===\n\n");
  std::printf("%-28s %14s %14s\n", "metric", "paper", "model");
  std::printf("%-28s %14s %14d\n", "static region [slices]", "9421",
              report.total());
  std::printf("%-28s %14s %14.1f\n", "VLX25 utilization [%]", "~86",
              report.utilization(proto.device.total_slices()));
  std::printf("%-28s %14s %14d\n", "comm architecture [slices]", "1020",
              flow::ResourceModel::comm_architecture_slices(proto.rsbs[0]));

  std::printf("\n--- static-region breakdown (model) ---\n");
  for (const auto& item : report.items) {
    std::printf("  %-26s %6d slices\n", item.name.c_str(), item.slices);
  }

  std::printf("\n--- Figure 7 parameter sweep: comm-architecture slices ---\n");
  std::printf("%-6s", "N\\w");
  for (int w : {8, 16, 32}) std::printf("  w=%-2d kr=1  w=%-2d kr=2", w, w);
  std::printf("\n");
  for (int n = 2; n <= 8; n += 2) {
    std::printf("N=%-4d", n);
    for (int w : {8, 16, 32}) {
      for (int k : {1, 2}) {
        core::RsbParams p = proto.rsbs[0];
        p.num_prrs = n;
        p.width_bits = w;
        p.kr = k;
        p.kl = k;
        std::printf(" %10d",
                    flow::ResourceModel::comm_architecture_slices(p));
      }
    }
    std::printf("\n");
  }

  std::printf("\n--- ki/ko sweep (N=4, w=32, kr=kl=2) ---\n");
  for (int kio = 1; kio <= 3; ++kio) {
    core::RsbParams p = proto.rsbs[0];
    p.num_prrs = 4;
    p.ki = kio;
    p.ko = kio;
    std::printf("  ki=ko=%d : %5d slices\n", kio,
                flow::ResourceModel::comm_architecture_slices(p));
  }

  std::printf("\n--- device fit: largest N per device (16x10-CLB PRRs, "
              "prototype static region) ---\n");
  for (const auto& dev : {fabric::DeviceGeometry::xc4vlx25(),
                          fabric::DeviceGeometry::xc4vlx60()}) {
    int max_n = 0;
    for (int n = 1; n <= 16; ++n) {
      core::SystemParams p = proto;
      p.device = dev;
      p.rsbs[0].num_prrs = n;
      try {
        p.validate();
        const auto r = flow::ResourceModel::static_region(p);
        const int prr_slices = n * 640;
        if (r.total() + prr_slices > dev.total_slices()) break;
        if (n > 2 * dev.clock_region_count()) break;
        max_n = n;
      } catch (const ModelError&) {
        break;
      }
    }
    std::printf("  %-10s : up to %d PRRs\n", dev.name().c_str(), max_n);
  }
  std::printf("\n");
}

void BM_StaticRegionEstimate(benchmark::State& state) {
  const core::SystemParams proto = core::SystemParams::prototype();
  for (auto _ : state) {
    auto report = flow::ResourceModel::static_region(proto);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_StaticRegionEstimate);

void BM_CommArchSweepPoint(benchmark::State& state) {
  core::RsbParams p = core::SystemParams::prototype().rsbs[0];
  p.num_prrs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow::ResourceModel::comm_architecture_slices(p));
  }
}
BENCHMARK(BM_CommArchSweepPoint)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
