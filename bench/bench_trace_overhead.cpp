// Tooling benchmark — disabled-tracing overhead gate.
//
// The observability layer's contract (docs/OBSERVABILITY.md) is that
// with the event bus disabled every hook costs one mask load and
// branch. This bench enforces that as a tier-1 gate:
//
//   1. measure the per-hook disabled cost directly: a tight loop over
//      EventBus::instance().instant() with the mask cold — the exact
//      shape of a real call site;
//   2. replay a control-path-heavy scenario (a rate-4 stream with the
//      module hitlessly switched back and forth between two PRRs) once
//      with every subsystem enabled, to count how many hooks fire;
//   3. gate on the projection: hooks x per-hook cost must stay <= 1 %
//      of the scenario's traced-off wall time.
//
// The projection is gated instead of a direct A/B wall-clock diff
// because the true overhead sits below timer noise — a diff of two
// nearly equal multi-second runs would gate on scheduler jitter, not
// on the code. The direct diff is still printed for reference.
//
// Emits BENCH_trace_overhead.json; exits non-zero on regression.
// scripts/tier1.sh runs this binary.
#include <chrono>
#include <cstdio>
#include <optional>

#include "core/switching.hpp"
#include "core/system.hpp"
#include "obs/bus.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace vapres;
using comm::Word;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Per-call cost of a disabled hook, in nanoseconds. The loop calls
/// through EventBus::instance() every iteration — instance() is opaque
/// to the optimizer (defined in another TU), so the mask reload and
/// branch cannot be hoisted; this is exactly what an inlined call site
/// in the model pays.
double measure_disabled_hook_ns() {
  obs::EventBus::instance().disable();
  constexpr std::uint64_t kCalls = 1u << 25;
  double best_s = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kCalls; ++i) {
      obs::EventBus::instance().instant(obs::Subsystem::kSwitch,
                                        obs::ev::kStep1Reconfigure,
                                        /*track=*/0,
                                        static_cast<sim::Picoseconds>(i), i);
    }
    const double s = seconds_since(t0);
    if (s < best_s) best_s = s;
  }
  return best_s / static_cast<double>(kCalls) * 1e9;
}

struct ScenarioResult {
  double wall_s = 0.0;
  std::uint64_t hooks = 0;  ///< events emitted (traced run only)
  int switches = 0;
};

/// The control-path-heavy workload: a continuous rate-4 stream whose
/// processing module is relocated (full 9-step hitless protocol,
/// including one PR per switch) between PRR0 and PRR1, ten times. The
/// same stateful module on both sides keeps the step-6 state transfer
/// shape-compatible in either direction.
ScenarioResult run_switch_scenario(bool traced) {
  if (traced) {
    obs::EventBus::instance().enable(~0u);
  } else {
    obs::EventBus::instance().disable();
  }

  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 1;  // fast PR keeps the bench short
  core::VapresSystem sys(p);
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "offset_100");
  core::Rsb& rsb = sys.rsb();
  core::ChannelId up =
      *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  core::ChannelId down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      /*interval_cycles=*/4);
  sys.run_system_cycles(200);

  ScenarioResult r;
  const auto t0 = std::chrono::steady_clock::now();
  int src = 0;
  for (int i = 0; i < 10; ++i) {
    const int dst = 1 - src;
    sys.preload_sdram("offset_100", 0, dst);
    core::SwitchRequest req;
    req.src_prr = src;
    req.dst_prr = dst;
    req.new_module_id = "offset_100";
    req.upstream = up;
    req.downstream = down;
    core::ModuleSwitcher sw(sys, req);
    sw.begin();
    sys.sim().run_until([&] { return sw.finished(); },
                        sim::kPsPerSecond * 300);
    if (!sw.done()) break;
    up = sw.new_upstream();
    down = sw.new_downstream();
    src = dst;
    ++r.switches;
    rsb.iom(0).take_received();  // keep memory flat
  }
  sys.run_system_cycles(2'000);
  r.wall_s = seconds_since(t0);
  if (traced) r.hooks = obs::EventBus::instance().total_emitted();
  obs::EventBus::instance().disable();
  return r;
}

}  // namespace

int main() {
  std::printf("== tracing overhead: disabled hooks vs scenario ==\n");

  const double hook_ns = measure_disabled_hook_ns();
  std::printf("disabled hook cost: %.3f ns/call (mask load + branch)\n",
              hook_ns);

  // Hook census first (also warms the page cache for the timed runs).
  const ScenarioResult traced = run_switch_scenario(/*traced=*/true);
  obs::Registry::instance().reset();
  const ScenarioResult off_a = run_switch_scenario(/*traced=*/false);
  obs::Registry::instance().reset();
  const ScenarioResult off_b = run_switch_scenario(/*traced=*/false);
  const double off_wall = off_a.wall_s < off_b.wall_s ? off_a.wall_s
                                                      : off_b.wall_s;

  std::printf("scenario: %d hitless switches; %llu hooks fire when every "
              "subsystem is traced\n",
              traced.switches,
              static_cast<unsigned long long>(traced.hooks));
  std::printf("traced-off wall: %.3f s (best of 2), traced-on wall: %.3f s "
              "(direct diff %+.1f%%, reference only)\n",
              off_wall, traced.wall_s,
              off_wall > 0
                  ? 100.0 * (traced.wall_s - off_wall) / off_wall
                  : 0.0);

  const double projected_s =
      static_cast<double>(traced.hooks) * hook_ns * 1e-9;
  const double projected_pct =
      off_wall > 0 ? 100.0 * projected_s / off_wall : 100.0;
  const bool pass = traced.switches == 10 && projected_pct <= 1.0;
  std::printf("projected disabled-tracing overhead: %.4f%% of scenario "
              "wall time (threshold <= 1%%: %s)\n",
              projected_pct, pass ? "PASS" : "FAIL");

  std::FILE* f = std::fopen("BENCH_trace_overhead.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"disabled_hook_ns\": %.4f,\n"
                 "  \"scenario_switches\": %d,\n"
                 "  \"scenario_hooks\": %llu,\n"
                 "  \"scenario_wall_off_seconds\": %.6f,\n"
                 "  \"scenario_wall_traced_seconds\": %.6f,\n"
                 "  \"projected_overhead_pct\": %.6f,\n"
                 "  \"thresholds\": {\"projected_overhead_max_pct\": 1.0},\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 hook_ns, traced.switches,
                 static_cast<unsigned long long>(traced.hooks), off_wall,
                 traced.wall_s, projected_pct, pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_trace_overhead.json\n");
  }
  return pass ? 0 : 1;
}
