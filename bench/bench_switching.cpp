// Experiment E3 — Figure 5 / Section III.B.3: hardware-module switching
// without stream-processing interruption.
//
// The paper's claim is qualitative ("avoids stream processing
// interruption"); this bench quantifies it by replaying the Figure 5
// scenario (IOM -> filter in PRR0 -> IOM, replacement module placed in
// PRR1) and measuring the maximum output-stream gap at the IOM, against
// the halt-and-reconfigure baseline, across PRR sizes (= reconfiguration
// times). The shape to reproduce: the VAPRES gap is small and *constant*
// while the baseline gap tracks the full reconfiguration time — a
// 10^3-10^5x separation at prototype scale.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>

#include "baseline/naive_switch.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "fabric/frame.hpp"

namespace {

using namespace vapres;
using comm::Word;

core::SystemParams params_with_width(int width_clbs) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = width_clbs;
  return p;
}

struct Result {
  sim::Cycles gap = 0;
  sim::Cycles reconfig_cycles = 0;
  std::uint64_t input_stalls = 0;
};

Result run_vapres_switch(int width_clbs, int input_interval) {
  core::VapresSystem sys(params_with_width(width_clbs));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  sys.preload_sdram("offset_100", 0, 1);
  core::Rsb& rsb = sys.rsb();
  const auto up = *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  const auto down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      input_interval);
  sys.run_system_cycles(200);
  rsb.iom(0).reset_gap_stats();

  core::SwitchRequest req;
  req.src_prr = 0;
  req.dst_prr = 1;
  req.new_module_id = "offset_100";
  req.upstream = up;
  req.downstream = down;
  core::ModuleSwitcher sw(sys, req);
  sw.begin();
  sys.sim().run_until([&] { return sw.done(); }, sim::kPsPerSecond * 300);
  sys.run_system_cycles(1000);

  Result r;
  r.gap = rsb.iom(0).max_output_gap();
  r.reconfig_cycles = sw.timeline().reconfig_done - sw.timeline().started;
  r.input_stalls = rsb.iom(0).source_stall_cycles();
  return r;
}

Result run_naive_switch(int width_clbs, int input_interval) {
  core::VapresSystem sys(params_with_width(width_clbs));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  sys.preload_sdram("offset_100", 0, 0);
  core::Rsb& rsb = sys.rsb();
  const auto up = *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  const auto down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      input_interval);
  sys.run_system_cycles(200);
  rsb.iom(0).reset_gap_stats();

  baseline::NaiveSwitchRequest req;
  req.prr = 0;
  req.new_module_id = "offset_100";
  req.upstream = up;
  req.downstream = down;
  baseline::NaiveSwitcher sw(sys, req);
  sw.begin();
  sys.sim().run_until([&] { return sw.done(); }, sim::kPsPerSecond * 300);
  sys.run_system_cycles(2000);

  Result r;
  r.gap = rsb.iom(0).max_output_gap();
  r.reconfig_cycles =
      sw.timeline().reconfig_done - sw.timeline().halted;
  r.input_stalls = rsb.iom(0).source_stall_cycles();
  return r;
}

void print_paper_table() {
  std::printf("\n=== E3: module switching vs halt-and-reconfigure "
              "(paper Fig. 5) ===\n");
  std::printf("Scenario: IOM -> filter(PRR0) -> IOM, replacement placed in "
              "PRR1;\ninput word every 4 system cycles at 100 MHz; gap = "
              "max cycles between\nconsecutive output words at the IOM.\n\n");
  std::printf("%-12s %12s %14s | %12s %12s | %12s %12s | %9s\n",
              "PRR (CLBs)", "bitstream B", "reconfig[ms]", "VAPRES gap",
              "in-stalls", "naive gap", "in-stalls", "ratio");

  for (int width : {1, 2, 4, 10}) {
    const fabric::ClbRect rect{0, 0, 16, width};
    const auto bytes = fabric::partial_bitstream_bytes(rect);
    const Result v = run_vapres_switch(width, 4);
    const Result n = run_naive_switch(width, 4);
    std::printf("16x%-9d %12lld %14.2f | %12llu %12llu | %12llu %12llu | "
                "%8.0fx\n",
                width, static_cast<long long>(bytes),
                static_cast<double>(v.reconfig_cycles) / 100e3,
                static_cast<unsigned long long>(v.gap),
                static_cast<unsigned long long>(v.input_stalls),
                static_cast<unsigned long long>(n.gap),
                static_cast<unsigned long long>(n.input_stalls),
                static_cast<double>(n.gap) /
                    static_cast<double>(v.gap == 0 ? 1 : v.gap));
  }
  std::printf("\nShape check (paper): VAPRES gap stays flat as "
              "reconfiguration grows;\nthe baseline gap tracks "
              "reconfiguration time 1:1.\n\n");

  std::printf("--- FIFO-depth sensitivity (naive baseline, 16x4 PRR): "
              "buffering only delays the stall ---\n");
  std::printf("(consumer/producer FIFOs are 512 deep; at 1 word / 4 "
              "cycles the ~3 ms reconfiguration\n needs ~75,000 words of "
              "buffering — 146x the prototype's BlockRAM FIFO)\n\n");
}

void BM_VapresSwitch(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  Result r;
  for (auto _ : state) r = run_vapres_switch(width, 4);
  state.counters["gap_cycles"] = static_cast<double>(r.gap);
  state.counters["reconfig_cycles"] =
      static_cast<double>(r.reconfig_cycles);
}
BENCHMARK(BM_VapresSwitch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_NaiveSwitch(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  Result r;
  for (auto _ : state) r = run_naive_switch(width, 4);
  state.counters["gap_cycles"] = static_cast<double>(r.gap);
}
BENCHMARK(BM_NaiveSwitch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
