// Experiment E1 — Section V.B reconfiguration-time measurements.
//
// Paper-reported values (Xilinx ML401, XC4VLX25, 100 MHz, 640-slice PRR):
//   vapres_cf2icap    : 1.043 s  (95.3 % CF->buffer transfer, 4.7 % ICAP)
//   vapres_array2icap : 71.94 ms
//
// This bench regenerates the table from the model: the array2icap figure
// is *simulated* end to end (xps_timer over the transfer, as measured in
// the paper); the cf2icap path is simulated cycle-exactly at a narrower
// PRR and reported at prototype scale from the same calibrated
// path model. A PRR-size sweep shows how the times scale with bitstream
// size (the paper's size/performance discussion in Section VI).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <optional>
#include <string>

#include "bitstream/calibration.hpp"
#include "core/reconfig.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "fabric/frame.hpp"
#include "obs/metrics.hpp"
#include "proc/timer.hpp"

namespace {

using namespace vapres;

core::SystemParams prototype_with_width(int width_clbs) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = width_clbs;
  return p;
}

sim::Cycles simulate_array2icap(int width_clbs) {
  core::VapresSystem sys(prototype_with_width(width_clbs));
  sys.preload_sdram("passthrough", 0, 0);
  proc::XpsTimer timer(sys.system_clock());
  timer.start();
  sys.reconfigure_now(0, 0, "passthrough",
                      core::ReconfigSource::kSdramArray);
  return timer.stop();
}

sim::Cycles simulate_cf2icap(int width_clbs) {
  core::VapresSystem sys(prototype_with_width(width_clbs));
  sys.synthesize_to_cf("passthrough", 0, 0);
  proc::XpsTimer timer(sys.system_clock());
  timer.start();
  sys.reconfigure_now(0, 0, "passthrough",
                      core::ReconfigSource::kCompactFlash);
  return timer.stop();
}

/// One demand reconfiguration through the bitstream cache: warm = the
/// array already resident (hit, pinned array2icap), cold = installed on
/// CF only (miss, pipelined chunked CF->ICAP streaming). The cold run's
/// background restage lands after the timer stops.
sim::Cycles simulate_managed(int width_clbs, bool warm) {
  core::VapresSystem sys(prototype_with_width(width_clbs));
  if (warm) {
    sys.preload_sdram("passthrough", 0, 0);
  } else {
    sys.synthesize_to_cf("passthrough", 0, 0);
  }
  proc::XpsTimer timer(sys.system_clock());
  timer.start();
  sys.reconfigure_now(0, 0, "passthrough", core::ReconfigSource::kManaged);
  return timer.stop();
}

void print_paper_table() {
  const fabric::ClbRect prr{0, 0, 16, 10};
  const std::int64_t bytes = fabric::partial_bitstream_bytes(prr);
  const auto cf = core::ReconfigManager::estimate_cf2icap(bytes);
  const auto arr = core::ReconfigManager::estimate_array2icap(bytes);

  std::printf("\n=== E1: PRR reconfiguration time (paper Section V.B) ===\n");
  std::printf("Prototype PRR: 16x10 CLBs = 640 slices, partial bitstream "
              "%lld bytes\n\n",
              static_cast<long long>(bytes));
  std::printf("%-28s %14s %14s\n", "metric", "paper", "model");
  std::printf("%-28s %14s %14.3f\n", "cf2icap total [s]", "1.043",
              cf.seconds_at(100.0));
  std::printf("%-28s %14s %14.1f\n", "  CF->buffer share [%]", "95.3",
              100.0 * cf.storage_fraction());
  std::printf("%-28s %14s %14.1f\n", "  ICAP write share [%]", "4.7",
              100.0 * (1.0 - cf.storage_fraction()));
  std::printf("%-28s %14s %14.2f\n", "array2icap total [ms]", "71.94",
              arr.seconds_at(100.0) * 1e3);
  std::printf("%-28s %14s %14.1f\n", "speed-up cf -> array [x]", "14.5",
              cf.total_cycles() / arr.total_cycles());

  // Full simulation of the prototype-scale array path (the xps_timer
  // measurement the paper performed).
  const sim::Cycles arr_sim = simulate_array2icap(10);
  std::printf("%-28s %14s %14.2f\n", "array2icap simulated [ms]", "71.94",
              static_cast<double>(arr_sim) / 100e6 * 1e3);

  // Cycle-exactness of the simulated CF path (narrow PRR; the full-scale
  // CF simulation takes 104 M cycles and is exercised by --cf_full).
  const fabric::ClbRect small{0, 0, 16, 1};
  const std::int64_t small_bytes = fabric::partial_bitstream_bytes(small);
  const auto cf_small = core::ReconfigManager::estimate_cf2icap(small_bytes);
  const sim::Cycles cf_sim = simulate_cf2icap(1);
  std::printf("\ncf2icap simulated at 16x1-CLB PRR: %llu cycles "
              "(estimate %.0f) -> %s\n",
              static_cast<unsigned long long>(cf_sim),
              cf_small.total_cycles(),
              cf_sim == static_cast<sim::Cycles>(
                            std::llround(cf_small.total_cycles()))
                  ? "cycle-exact"
                  : "MISMATCH");

  // --- warm vs cold through the bitstream cache (bitman subsystem) ---
  // A warm hit must cost exactly the raw array path; a cold miss runs
  // the double-buffered chunked CF->ICAP stream, which hides all but
  // the last chunk's ICAP write under the CF read.
  const std::int64_t chunk = bitstream::Calibration::kStreamChunkBytes;
  const auto stream_small =
      core::ReconfigManager::estimate_cf2icap_streamed(small_bytes, chunk);
  const auto arr_small =
      core::ReconfigManager::estimate_array2icap(small_bytes);
  const sim::Cycles warm_sim = simulate_managed(1, /*warm=*/true);
  const sim::Cycles cold_sim = simulate_managed(1, /*warm=*/false);
  std::printf("\n--- bitstream cache, 16x1-CLB PRR (simulated cycles) ---\n");
  std::printf("%-28s %14llu (array estimate %.0f) -> %s\n",
              "warm hit", static_cast<unsigned long long>(warm_sim),
              arr_small.total_cycles(),
              warm_sim == static_cast<sim::Cycles>(
                              std::llround(arr_small.total_cycles()))
                  ? "cycle-exact"
                  : "MISMATCH");
  std::printf("%-28s %14llu (streamed estimate %.0f) -> %s\n",
              "cold miss (streamed)",
              static_cast<unsigned long long>(cold_sim),
              stream_small.total_cycles(),
              cold_sim == static_cast<sim::Cycles>(
                              std::llround(stream_small.total_cycles()))
                  ? "cycle-exact"
                  : "MISMATCH");
  std::printf("%-28s %14.2f%% of the classic cf2icap path\n",
              "  streamed saving",
              100.0 * (1.0 - stream_small.total_cycles() /
                                 cf_small.total_cycles()));

  std::printf("\n--- PRR-size sweep (estimates) ---\n");
  std::printf("%-22s %10s %12s %14s %14s %14s\n", "PRR (CLBs)", "slices",
              "bytes", "cf2icap [s]", "streamed [s]", "array2icap [ms]");
  const int heights[] = {16, 16, 16, 32, 48};
  const int widths[] = {4, 8, 10, 10, 14};
  for (int i = 0; i < 5; ++i) {
    const fabric::ClbRect rect{0, 0, heights[i], widths[i]};
    const auto b = fabric::partial_bitstream_bytes(rect);
    const auto e_cf = core::ReconfigManager::estimate_cf2icap(b);
    const auto e_st = core::ReconfigManager::estimate_cf2icap_streamed(
        b, chunk);
    const auto e_arr = core::ReconfigManager::estimate_array2icap(b);
    std::printf("%3dx%-18d %10d %12lld %14.3f %14.3f %14.2f\n", heights[i],
                widths[i], rect.slices(), static_cast<long long>(b),
                e_cf.seconds_at(100.0), e_st.seconds_at(100.0),
                e_arr.seconds_at(100.0) * 1e3);
  }
  std::printf("\n");
}

/// One hitless module switch (bench_switching's Figure 5 scenario at a
/// 16x1-CLB PRR) so the nine per-step latency histograms have samples.
void run_one_switch() {
  core::VapresSystem sys(prototype_with_width(1));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  sys.preload_sdram("offset_100", 0, 1);
  core::Rsb& rsb = sys.rsb();
  const auto up = *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  const auto down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<comm::Word> {
        return static_cast<comm::Word>(n++);
      },
      /*interval_cycles=*/4);
  sys.run_system_cycles(200);

  core::SwitchRequest req;
  req.src_prr = 0;
  req.dst_prr = 1;
  req.new_module_id = "offset_100";
  req.upstream = up;
  req.downstream = down;
  core::ModuleSwitcher sw(sys, req);
  sw.begin();
  sys.sim().run_until([&] { return sw.done(); }, sim::kPsPerSecond * 300);
  sys.run_system_cycles(1000);
}

/// Per-step latency histograms from the metrics registry. The reconfig.*
/// rows were fed by the simulations above; the switch.* rows (the nine
/// protocol steps of Figure 5 plus the total) by run_one_switch(). All
/// durations are MicroBlaze cycles at 100 MHz.
void print_registry_histograms() {
  run_one_switch();

  std::printf("--- control-path latency histograms (obs registry, "
              "MicroBlaze cycles) ---\n");
  std::printf("%-34s %7s %12s %12s %12s %12s %12s\n", "histogram", "count",
              "min", "p50", "p90", "max", "mean");
  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  for (const obs::HistogramSummary& h : snap.histograms) {
    if (h.count == 0) continue;
    if (h.name.rfind("reconfig.", 0) != 0 && h.name.rfind("switch.", 0) != 0)
      continue;
    std::printf("%-34s %7llu %12llu %12llu %12llu %12llu %12.1f\n",
                h.name.c_str(), static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.min),
                static_cast<unsigned long long>(h.p50),
                static_cast<unsigned long long>(h.p90),
                static_cast<unsigned long long>(h.max), h.mean);
  }
  std::printf("(pN = upper bound of the log2 bucket holding the "
              "N-th percentile)\n\n");
}

// Wall-clock cost of simulating one full prototype array2icap transfer.
void BM_SimulatedArray2Icap(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  sim::Cycles cycles = 0;
  for (auto _ : state) {
    cycles = simulate_array2icap(width);
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
  state.counters["sim_ms"] = static_cast<double>(cycles) / 100e3;
}
BENCHMARK(BM_SimulatedArray2Icap)->Arg(1)->Arg(4)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_EstimateReconfig(benchmark::State& state) {
  const fabric::ClbRect prr{0, 0, 16, 10};
  const auto bytes = fabric::partial_bitstream_bytes(prr);
  for (auto _ : state) {
    auto b = core::ReconfigManager::estimate_cf2icap(bytes);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_EstimateReconfig);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  print_registry_histograms();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
