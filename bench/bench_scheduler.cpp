// Ablation A5 — runtime multi-application scheduling policies.
//
// Replays one deterministic, fixed-seed workload (phased arrivals and
// departures of streaming apps on a fragmentation-prone fabric: two
// 640-slice PRRs, two 256-slice PRRs) against three scheduler configs:
//
//   first-fit            no defrag, no preemption (the naive baseline)
//   first-fit + defrag   live relocation through the 9-step switch
//   best-fit  + defrag   + waste-minimizing placement
//
// The point of the table: the defragmenting scheduler *admits apps the
// baseline rejects* on the same fabric at the same offered load — small
// early apps squat in the big PRRs, and only relocation can make room
// for the late 300-slice requests. A second table prices admission
// itself (MicroBlaze cycles from decision to streaming) by chain
// length. Both tables are bit-for-bit reproducible: same seed, same
// numbers. See docs/SCHEDULER.md.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/system.hpp"
#include "sched/scheduler.hpp"
#include "sim/clock.hpp"
#include "sim/random.hpp"

namespace {

using namespace vapres;

constexpr std::uint64_t kWorkloadSeed = 0x5EED5EEDULL;

core::SystemParams frag_params() {
  core::SystemParams p;
  p.name = "benchsys";
  core::RsbParams& r = p.rsbs[0];
  r.num_prrs = 4;
  r.num_ioms = 3;
  r.ki = 1;
  r.ko = 1;
  r.kr = 3;
  r.kl = 3;
  p.prr_rects = {fabric::ClbRect{0, 0, 16, 10},
                 fabric::ClbRect{16, 0, 16, 10},
                 fabric::ClbRect{32, 0, 16, 4},
                 fabric::ClbRect{48, 0, 16, 4}};
  return p;
}

struct WorkloadResult {
  int submitted = 0;
  int admitted = 0;
  int admitted_after_defrag = 0;
  int rejected = 0;
  int defrag_migrations = 0;
  double mean_utilization = 0.0;
  /// Edge-delivery accounting of the activity-driven kernel
  /// (docs/SIMULATOR.md) over the whole workload replay.
  sim::KernelStats kernel;
  /// Signature for the determinism check: per-app verdict names.
  std::vector<std::string> verdicts;
};

/// One phased workload, replayed identically for every config: 12
/// arrivals; small modules early (they land in the big PRRs), 300-slice
/// ma8 requests late; random departures free IOM channels in between.
WorkloadResult run_workload(sched::PlacementPolicy policy,
                            bool enable_defrag) {
  core::VapresSystem sys(frag_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler::Options opt;
  opt.policy = policy;
  opt.enable_defrag = enable_defrag;
  opt.enable_preemption = false;
  sched::ApplicationScheduler sched(sys, opt);

  sim::SplitMix64 rng(kWorkloadSeed);
  const std::vector<std::string> small = {"passthrough", "gain_x2",
                                          "offset_100", "checksum"};
  const std::vector<std::string> big = {"ma8", "fir4_smooth"};

  double util_sum = 0.0;
  int samples = 0;
  for (int i = 0; i < 12; ++i) {
    // Early phase: small apps. Late phase: big (640-slice-only) apps.
    const bool late = i >= 6;
    const auto& menu = late && rng.chance(0.75) ? big : small;
    sched::AppRequest req;
    req.name = "app" + std::to_string(i);
    req.modules = {menu[rng.next_below(menu.size())]};
    req.priority = 1;
    req.source_interval_cycles = static_cast<int>(2 << rng.next_below(3));
    sched.submit(req);
    sched.run_admission();
    sys.run_system_cycles(300);
    util_sum += sched.fabric_utilization();
    ++samples;

    // Departures keep IOM channels turning over (but leave the small
    // squatters in place — that is the fragmentation).
    const auto running = sched.running_apps();
    if (running.size() >= 3 ||
        (running.size() >= 2 && rng.chance(0.5))) {
      sched.stop(running[rng.next_below(running.size())]);
    }
  }

  const core::SchedulerAccounting acc = sched.accounting();
  WorkloadResult r;
  r.submitted = acc.submitted;
  r.admitted = acc.admitted;
  r.admitted_after_defrag = acc.admitted_after_defrag;
  r.rejected = acc.rejected;
  r.defrag_migrations = acc.defrag_migrations;
  r.mean_utilization = util_sum / samples;
  r.kernel = sys.sim().kernel_stats();
  for (const core::AppAccounting& a : acc.apps) r.verdicts.push_back(a.verdict);
  return r;
}

/// MicroBlaze cycles from the admission decision to a streaming app,
/// by chain length (includes placement, bitstream staging, PR, routing).
sim::Cycles admission_cycles(int chain_len) {
  core::VapresSystem sys(frag_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);
  sched::AppRequest req;
  req.name = "probe";
  const std::vector<std::string> chain = {"gain_x2", "offset_100",
                                          "passthrough"};
  for (int i = 0; i < chain_len; ++i) {
    req.modules.push_back(chain[static_cast<std::size_t>(i)]);
  }
  sched.submit(req);
  sched.run_admission();
  return sched.app(0).admission_mb_cycles;
}

void print_tables() {
  std::printf("\n=== A5: scheduling policy vs accepted load "
              "(12-app fixed-seed workload, 2x640 + 2x256-slice PRRs) "
              "===\n");
  std::printf("%-20s %9s %9s %9s %12s %10s\n", "policy", "admitted",
              "rejected", "via-dfrg", "migrations", "mean util");
  struct Config {
    const char* name;
    sched::PlacementPolicy policy;
    bool defrag;
  };
  const Config configs[] = {
      {"first-fit", sched::PlacementPolicy::kFirstFit, false},
      {"first-fit + defrag", sched::PlacementPolicy::kFirstFit, true},
      {"best-fit  + defrag", sched::PlacementPolicy::kBestFit, true},
  };
  WorkloadResult baseline, defragged;
  std::vector<std::pair<const char*, WorkloadResult>> rows;
  for (const Config& c : configs) {
    const WorkloadResult r = run_workload(c.policy, c.defrag);
    if (!c.defrag) baseline = r;
    if (c.defrag && c.policy == sched::PlacementPolicy::kFirstFit) {
      defragged = r;
    }
    rows.emplace_back(c.name, r);
    std::printf("%-20s %9d %9d %9d %12d %9.1f%%\n", c.name, r.admitted,
                r.rejected, r.admitted_after_defrag, r.defrag_migrations,
                100.0 * r.mean_utilization);
  }

  std::printf("\n--- activity-driven kernel edge accounting per config "
              "(docs/SIMULATOR.md) ---\n");
  std::printf("%-20s %14s %14s %9s %8s %8s\n", "policy", "delivered",
              "skipped", "elided", "sleeps", "wakes");
  for (const auto& [name, r] : rows) {
    const double total = static_cast<double>(r.kernel.edges_delivered +
                                             r.kernel.edges_skipped);
    std::printf("%-20s %14llu %14llu %8.1f%% %8llu %8llu\n", name,
                static_cast<unsigned long long>(r.kernel.edges_delivered),
                static_cast<unsigned long long>(r.kernel.edges_skipped),
                total > 0 ? 100.0 * static_cast<double>(
                                        r.kernel.edges_skipped) / total
                          : 0.0,
                static_cast<unsigned long long>(r.kernel.domain_sleeps),
                static_cast<unsigned long long>(r.kernel.component_wakes));
  }
  std::printf("\nShape check: identical offered load, identical fabric — "
              "the defragmenting\nconfigs admit %d more app(s) than the "
              "first-fit baseline (%d vs %d) by\nrelocating live modules "
              "out of the big PRRs.\n",
              defragged.admitted - baseline.admitted, defragged.admitted,
              baseline.admitted);

  const WorkloadResult replay =
      run_workload(sched::PlacementPolicy::kFirstFit, true);
  std::printf("Determinism check: replaying the seed gives %s verdicts.\n",
              replay.verdicts == defragged.verdicts ? "identical"
                                                    : "DIFFERENT (BUG)");

  std::printf("\n--- admission latency by chain length (decision + "
              "staging + PR + routing) ---\n");
  std::printf("%-14s %18s %14s\n", "chain length", "MB cycles",
              "ms @ 100 MHz");
  for (int k = 1; k <= 3; ++k) {
    const sim::Cycles c = admission_cycles(k);
    std::printf("%-14d %18llu %14.2f\n", k,
                static_cast<unsigned long long>(c),
                static_cast<double>(c) / 100e3);
  }
  std::printf("\n");
}

void BM_AdmitSingleApp(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  sim::Cycles cycles = 0;
  for (auto _ : state) cycles = admission_cycles(k);
  state.counters["mb_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_AdmitSingleApp)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
