// Fleet virtualization gate — one consolidated fabric vs a sharded
// heterogeneous fleet under the identical fixed-seed workload (see
// docs/FLEET.md and docs/CONTROLPLANE.md).
//
// Four configurations run the same ScenarioSpec::standard_fleet
// stream (tenants, migration churn, burst phases):
//
//   - mega:        1 consolidated 8-PRR fabric (no routing, the paper's
//                  single-virtual-architecture baseline);
//   - fleet-rr:    the 4-fabric heterogeneous fleet routed round-robin
//                  (blind rotation, fallback in submission order);
//   - fleet-cost:  the same fleet routed by the weighted cost model
//                  (probe dry runs, capability exclusion, affinity);
//   - fleet-churn: fleet-cost with crash churn — a random control-plane
//                  agent is killed and restarted at a random journal
//                  version every few submissions.
//
// Gates:
//   - invariants: zero violations in every configuration;
//   - routing value: cost-based admissions >= round-robin admissions on
//     the same fleet and workload (the router must not be worse than
//     blind rotation) — checked on the base seed and on every swept
//     seed (--sweep=K runs seeds S..S+K-1);
//   - migration safety: zero lost apps across every migration churn;
//   - crash tolerance: agent kills lose zero apps and zero migrations,
//     every post-restart reconcile sweep is clean, every journal
//     replay reproduces the live view, and the churned run admits
//     exactly what the undisturbed run admitted (restart recovery must
//     not change routing decisions);
//   - determinism (--quick): the cost run replays to a bit-identical
//     digest.
//
// Usage: bench_fleet [--lifetimes=N] [--seed=S] [--sweep=K] [--quick]
// Emits BENCH_fleet.json; exits non-zero on any gate failure.
// scripts/tier1.sh runs `bench_fleet --quick`.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/spec.hpp"
#include "load/fleet_soak.hpp"

namespace {

using namespace vapres;

struct ConfigOutcome {
  std::string name;
  load::FleetSoakResult res;
  double util_spread = 0.0;  ///< max - min mean fabric utilization
  bool deterministic = true;
};

ConfigOutcome run_config(const std::string& name, fleet::FleetSpec fs,
                         const load::ScenarioSpec& scenario,
                         std::uint64_t seed, bool verbose,
                         std::uint64_t crash_churn_every = 0) {
  ConfigOutcome out;
  out.name = name;

  load::FleetSoakOptions opt;
  opt.seed = seed;
  opt.verbose = verbose;
  opt.scenario = scenario;
  opt.fleet = std::move(fs);
  opt.crash_churn_every = crash_churn_every;
  out.res = load::run_fleet_soak(opt);

  double lo = 1.0;
  double hi = 0.0;
  for (const double u : out.res.fabric_mean_utilization) {
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  out.util_spread = std::max(0.0, hi - lo);
  return out;
}

/// One swept seed: round-robin vs cost on the same workload.
struct SweepPoint {
  std::uint64_t seed = 0;
  std::uint64_t rr_admitted = 0;
  std::uint64_t cost_admitted = 0;
  std::uint64_t cost_digest = 0;
  bool invariants_ok = false;
};

void print_json_config(std::FILE* f, const ConfigOutcome& c, bool last) {
  std::fprintf(
      f,
      "    {\"name\": \"%s\", \"digest\": \"%016llx\", "
      "\"submitted\": %llu, \"admitted\": %llu, \"rejected\": %llu, "
      "\"quota_rejected\": %llu, \"fallbacks\": %llu, "
      "\"migrations_moved\": %llu, \"migrations_rolled_back\": %llu, "
      "\"migrations_lost\": %llu, \"quota_preemptions\": %llu, "
      "\"agent_kills\": %llu, \"replay_checks\": %llu, "
      "\"reconcile_violations\": %llu, "
      "\"util_spread\": %.4f, \"p50_submit_to_launch\": %llu, "
      "\"p99_submit_to_launch\": %llu, \"invariant_violations\": %zu, "
      "\"deterministic\": %s,\n     \"route_latency\": [",
      c.name.c_str(), static_cast<unsigned long long>(c.res.digest),
      static_cast<unsigned long long>(c.res.submitted),
      static_cast<unsigned long long>(c.res.admitted),
      static_cast<unsigned long long>(c.res.rejected),
      static_cast<unsigned long long>(c.res.quota_rejected),
      static_cast<unsigned long long>(c.res.route_fallbacks),
      static_cast<unsigned long long>(c.res.migrations_moved),
      static_cast<unsigned long long>(c.res.migrations_rolled_back),
      static_cast<unsigned long long>(c.res.migrations_lost),
      static_cast<unsigned long long>(c.res.quota_preemptions),
      static_cast<unsigned long long>(c.res.agent_kills),
      static_cast<unsigned long long>(c.res.replay_checks),
      static_cast<unsigned long long>(c.res.reconcile_violations),
      c.util_spread,
      static_cast<unsigned long long>(c.res.p50_submit_to_launch),
      static_cast<unsigned long long>(c.res.p99_submit_to_launch),
      c.res.invariants.violations.size(),
      c.deterministic ? "true" : "false");
  for (std::size_t j = 0; j < c.res.route_latency.size(); ++j) {
    const load::RouteLatency& rl = c.res.route_latency[j];
    std::fprintf(
        f,
        "{\"fabric\": \"%s\", \"first_count\": %llu, "
        "\"first_p50\": %llu, \"first_p99\": %llu, "
        "\"fallback_count\": %llu, \"fallback_p50\": %llu, "
        "\"fallback_p99\": %llu}%s",
        rl.fabric.c_str(), static_cast<unsigned long long>(rl.first_count),
        static_cast<unsigned long long>(rl.first_p50),
        static_cast<unsigned long long>(rl.first_p99),
        static_cast<unsigned long long>(rl.fallback_count),
        static_cast<unsigned long long>(rl.fallback_p50),
        static_cast<unsigned long long>(rl.fallback_p99),
        j + 1 < c.res.route_latency.size() ? ", " : "");
  }
  std::fprintf(f, "]}%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t lifetimes = 5'000;
  std::uint64_t seed = 1;
  std::uint64_t sweep = 1;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--lifetimes=", 12) == 0) {
      lifetimes = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--sweep=", 8) == 0) {
      sweep = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return 2;
    }
  }
  if (quick && lifetimes == 5'000) lifetimes = 400;
  if (sweep == 0) sweep = 1;

  // Every configuration replays the same offered load: the workload is
  // generated for the 4-fabric fleet's capacity, so the consolidated
  // baseline runs oversubscribed — that is the comparison.
  fleet::FleetSpec cost_fleet = fleet::FleetSpec::heterogeneous();
  const load::ScenarioSpec scenario = load::ScenarioSpec::standard_fleet(
      seed, lifetimes, 3, static_cast<int>(cost_fleet.fabrics.size()));

  fleet::FleetSpec mega;
  mega.fabrics.push_back(fleet::FabricSpec::mega("mega0"));
  fleet::FleetSpec rr_fleet = fleet::FleetSpec::heterogeneous();
  rr_fleet.policy = fleet::RoutePolicy::kRoundRobin;

  std::printf("== fleet: %llu lifetimes, seed %llu, sweep %llu%s ==\n",
              static_cast<unsigned long long>(lifetimes),
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(sweep),
              quick ? " (quick)" : "");

  // Kill an agent roughly every 20 submissions — frequent enough that
  // every agent kind dies many times per run, sparse enough that most
  // kills land mid-operation rather than stacking on one intent.
  const std::uint64_t kChurnEvery = 20;

  std::vector<ConfigOutcome> runs;
  runs.push_back(
      run_config("mega", std::move(mega), scenario, seed, !quick));
  runs.push_back(
      run_config("fleet-rr", std::move(rr_fleet), scenario, seed, !quick));
  runs.push_back(run_config("fleet-cost", std::move(cost_fleet), scenario,
                            seed, !quick));
  runs.push_back(run_config("fleet-churn", fleet::FleetSpec::heterogeneous(),
                            scenario, seed, !quick, kChurnEvery));
  const ConfigOutcome& mega_run = runs[0];
  const ConfigOutcome& rr = runs[1];
  ConfigOutcome& cost = runs[2];
  const ConfigOutcome& churn = runs[3];

  for (const ConfigOutcome& c : runs) {
    std::printf("\n-- %s --\n%s\n  utilization spread %.0f%%\n",
                c.name.c_str(), c.res.summary().c_str(),
                c.util_spread * 100.0);
  }

  std::vector<std::string> failures;
  auto gate = [&](bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  };
  for (const ConfigOutcome& c : runs) {
    gate(c.res.invariants.ok(), c.name + ": " + c.res.invariants.to_string());
    gate(c.res.migrations_lost == 0,
         c.name + ": " + std::to_string(c.res.migrations_lost) +
             " apps lost in migration");
    gate(c.res.lifetimes_completed == c.res.submitted,
         c.name + ": only " + std::to_string(c.res.lifetimes_completed) +
             " of " + std::to_string(c.res.submitted) +
             " lifetimes completed");
  }
  gate(cost.res.admitted >= rr.res.admitted,
       "cost-based routing admitted " + std::to_string(cost.res.admitted) +
           " < round-robin " + std::to_string(rr.res.admitted) +
           " on the same fleet and workload");
  gate(cost.res.admitted > 0 && rr.res.admitted > 0 &&
           mega_run.res.admitted > 0,
       "degenerate mix: a configuration admitted nothing");

  // Crash-tolerance gates: churn must exercise restarts, lose nothing,
  // reconcile clean, and leave routing decisions untouched.
  gate(churn.res.agent_kills > 0,
       "crash churn executed no agent restarts (kill schedule never fired)");
  gate(churn.res.reconcile_violations == 0,
       "crash churn: " + std::to_string(churn.res.reconcile_violations) +
           " reconcile violations after agent restarts");
  gate(churn.res.admitted == cost.res.admitted,
       "crash churn changed routing decisions: admitted " +
           std::to_string(churn.res.admitted) + " vs undisturbed " +
           std::to_string(cost.res.admitted));

  // Seed sweep: the routing-value gate must hold on every swept seed,
  // not just the headline one.
  std::vector<SweepPoint> series;
  for (std::uint64_t k = 1; k < sweep; ++k) {
    const std::uint64_t s = seed + k;
    const load::ScenarioSpec sc = load::ScenarioSpec::standard_fleet(
        s, lifetimes, 3,
        static_cast<int>(fleet::FleetSpec::heterogeneous().fabrics.size()));
    fleet::FleetSpec rr_k = fleet::FleetSpec::heterogeneous();
    rr_k.policy = fleet::RoutePolicy::kRoundRobin;
    const ConfigOutcome rr_run =
        run_config("fleet-rr", std::move(rr_k), sc, s, false);
    const ConfigOutcome cost_run = run_config(
        "fleet-cost", fleet::FleetSpec::heterogeneous(), sc, s, false);
    SweepPoint pt;
    pt.seed = s;
    pt.rr_admitted = rr_run.res.admitted;
    pt.cost_admitted = cost_run.res.admitted;
    pt.cost_digest = cost_run.res.digest;
    pt.invariants_ok =
        rr_run.res.invariants.ok() && cost_run.res.invariants.ok();
    series.push_back(pt);
    std::printf("\n-- sweep seed %llu: rr %llu, cost %llu admitted --\n",
                static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(pt.rr_admitted),
                static_cast<unsigned long long>(pt.cost_admitted));
    gate(pt.invariants_ok,
         "sweep seed " + std::to_string(s) + ": invariant violations");
    gate(pt.cost_admitted >= pt.rr_admitted,
         "sweep seed " + std::to_string(s) + ": cost admitted " +
             std::to_string(pt.cost_admitted) + " < round-robin " +
             std::to_string(pt.rr_admitted));
  }

  if (quick) {
    load::FleetSoakOptions replay_opt;
    replay_opt.seed = seed;
    replay_opt.scenario = scenario;
    replay_opt.fleet = fleet::FleetSpec::heterogeneous();
    const load::FleetSoakResult replay = load::run_fleet_soak(replay_opt);
    cost.deterministic = replay.digest == cost.res.digest;
    gate(cost.deterministic,
         "nondeterministic: fleet-cost replay digest differs for seed " +
             std::to_string(seed));
  }

  bool pass = failures.empty();
  for (const std::string& f : failures) {
    std::printf("GATE FAIL: %s\n", f.c_str());
  }

  std::FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"lifetimes\": %llu,\n  \"seed\": %llu,\n"
                 "  \"sweep\": %llu,\n  \"quick\": %s,\n  \"configs\": [\n",
                 static_cast<unsigned long long>(lifetimes),
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(sweep),
                 quick ? "true" : "false");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      print_json_config(f, runs[i], i + 1 == runs.size());
    }
    std::fprintf(f, "  ],\n  \"sweep_series\": [\n");
    for (std::size_t i = 0; i < series.size(); ++i) {
      const SweepPoint& pt = series[i];
      std::fprintf(f,
                   "    {\"seed\": %llu, \"rr_admitted\": %llu, "
                   "\"cost_admitted\": %llu, \"cost_digest\": \"%016llx\", "
                   "\"invariants_ok\": %s}%s\n",
                   static_cast<unsigned long long>(pt.seed),
                   static_cast<unsigned long long>(pt.rr_admitted),
                   static_cast<unsigned long long>(pt.cost_admitted),
                   static_cast<unsigned long long>(pt.cost_digest),
                   pt.invariants_ok ? "true" : "false",
                   i + 1 < series.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_fleet.json\n");
  }
  std::printf("fleet gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
