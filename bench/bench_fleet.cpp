// Fleet virtualization gate — one consolidated fabric vs a sharded
// heterogeneous fleet under the identical fixed-seed workload (see
// docs/FLEET.md).
//
// Three configurations run the same ScenarioSpec::standard_fleet
// stream (tenants, migration churn, burst phases):
//
//   - mega:       1 consolidated 8-PRR fabric (no routing, the paper's
//                 single-virtual-architecture baseline);
//   - fleet-rr:   the 4-fabric heterogeneous fleet routed round-robin
//                 (blind rotation, fallback in submission order);
//   - fleet-cost: the same fleet routed by the weighted cost model
//                 (probe dry runs, capability exclusion, affinity).
//
// Gates:
//   - invariants: zero violations in every configuration;
//   - routing value: cost-based admissions >= round-robin admissions on
//     the same fleet and workload (the router must not be worse than
//     blind rotation);
//   - migration safety: zero lost apps across every migration churn;
//   - determinism (--quick): the cost run replays to a bit-identical
//     digest.
//
// Usage: bench_fleet [--lifetimes=N] [--seed=S] [--quick]
// Emits BENCH_fleet.json; exits non-zero on any gate failure.
// scripts/tier1.sh runs `bench_fleet --quick`.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/spec.hpp"
#include "load/fleet_soak.hpp"

namespace {

using namespace vapres;

struct ConfigOutcome {
  std::string name;
  load::FleetSoakResult res;
  double util_spread = 0.0;  ///< max - min mean fabric utilization
  bool deterministic = true;
};

ConfigOutcome run_config(const std::string& name, fleet::FleetSpec fs,
                         const load::ScenarioSpec& scenario,
                         std::uint64_t seed, bool verbose) {
  ConfigOutcome out;
  out.name = name;

  load::FleetSoakOptions opt;
  opt.seed = seed;
  opt.verbose = verbose;
  opt.scenario = scenario;
  opt.fleet = std::move(fs);
  out.res = load::run_fleet_soak(opt);

  double lo = 1.0;
  double hi = 0.0;
  for (const double u : out.res.fabric_mean_utilization) {
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  out.util_spread = std::max(0.0, hi - lo);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t lifetimes = 5'000;
  std::uint64_t seed = 1;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--lifetimes=", 12) == 0) {
      lifetimes = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return 2;
    }
  }
  if (quick && lifetimes == 5'000) lifetimes = 400;

  // Every configuration replays the same offered load: the workload is
  // generated for the 4-fabric fleet's capacity, so the consolidated
  // baseline runs oversubscribed — that is the comparison.
  fleet::FleetSpec cost_fleet = fleet::FleetSpec::heterogeneous();
  const load::ScenarioSpec scenario = load::ScenarioSpec::standard_fleet(
      seed, lifetimes, 3, static_cast<int>(cost_fleet.fabrics.size()));

  fleet::FleetSpec mega;
  mega.fabrics.push_back(fleet::FabricSpec::mega("mega0"));
  fleet::FleetSpec rr_fleet = fleet::FleetSpec::heterogeneous();
  rr_fleet.policy = fleet::RoutePolicy::kRoundRobin;

  std::printf("== fleet: %llu lifetimes, seed %llu%s ==\n",
              static_cast<unsigned long long>(lifetimes),
              static_cast<unsigned long long>(seed), quick ? " (quick)" : "");

  std::vector<ConfigOutcome> runs;
  runs.push_back(
      run_config("mega", std::move(mega), scenario, seed, !quick));
  runs.push_back(
      run_config("fleet-rr", std::move(rr_fleet), scenario, seed, !quick));
  runs.push_back(run_config("fleet-cost", std::move(cost_fleet), scenario,
                            seed, !quick));
  const ConfigOutcome& mega_run = runs[0];
  const ConfigOutcome& rr = runs[1];
  ConfigOutcome& cost = runs[2];

  for (const ConfigOutcome& c : runs) {
    std::printf("\n-- %s --\n%s\n  utilization spread %.0f%%\n",
                c.name.c_str(), c.res.summary().c_str(),
                c.util_spread * 100.0);
  }

  std::vector<std::string> failures;
  auto gate = [&](bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  };
  for (const ConfigOutcome& c : runs) {
    gate(c.res.invariants.ok(), c.name + ": " + c.res.invariants.to_string());
    gate(c.res.migrations_lost == 0,
         c.name + ": " + std::to_string(c.res.migrations_lost) +
             " apps lost in migration");
    gate(c.res.lifetimes_completed == c.res.submitted,
         c.name + ": only " + std::to_string(c.res.lifetimes_completed) +
             " of " + std::to_string(c.res.submitted) +
             " lifetimes completed");
  }
  gate(cost.res.admitted >= rr.res.admitted,
       "cost-based routing admitted " + std::to_string(cost.res.admitted) +
           " < round-robin " + std::to_string(rr.res.admitted) +
           " on the same fleet and workload");
  gate(cost.res.admitted > 0 && rr.res.admitted > 0 &&
           mega_run.res.admitted > 0,
       "degenerate mix: a configuration admitted nothing");

  if (quick) {
    load::FleetSoakOptions replay_opt;
    replay_opt.seed = seed;
    replay_opt.scenario = scenario;
    replay_opt.fleet = fleet::FleetSpec::heterogeneous();
    const load::FleetSoakResult replay = load::run_fleet_soak(replay_opt);
    cost.deterministic = replay.digest == cost.res.digest;
    gate(cost.deterministic,
         "nondeterministic: fleet-cost replay digest differs for seed " +
             std::to_string(seed));
  }

  bool pass = failures.empty();
  for (const std::string& f : failures) {
    std::printf("GATE FAIL: %s\n", f.c_str());
  }

  std::FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"lifetimes\": %llu,\n  \"seed\": %llu,\n"
                 "  \"quick\": %s,\n  \"configs\": [\n",
                 static_cast<unsigned long long>(lifetimes),
                 static_cast<unsigned long long>(seed),
                 quick ? "true" : "false");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const ConfigOutcome& c = runs[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"digest\": \"%016llx\", "
          "\"submitted\": %llu, \"admitted\": %llu, \"rejected\": %llu, "
          "\"quota_rejected\": %llu, \"fallbacks\": %llu, "
          "\"migrations_moved\": %llu, \"migrations_rolled_back\": %llu, "
          "\"migrations_lost\": %llu, \"quota_preemptions\": %llu, "
          "\"util_spread\": %.4f, \"p50_submit_to_launch\": %llu, "
          "\"p99_submit_to_launch\": %llu, \"invariant_violations\": %zu, "
          "\"deterministic\": %s}%s\n",
          c.name.c_str(), static_cast<unsigned long long>(c.res.digest),
          static_cast<unsigned long long>(c.res.submitted),
          static_cast<unsigned long long>(c.res.admitted),
          static_cast<unsigned long long>(c.res.rejected),
          static_cast<unsigned long long>(c.res.quota_rejected),
          static_cast<unsigned long long>(c.res.route_fallbacks),
          static_cast<unsigned long long>(c.res.migrations_moved),
          static_cast<unsigned long long>(c.res.migrations_rolled_back),
          static_cast<unsigned long long>(c.res.migrations_lost),
          static_cast<unsigned long long>(c.res.quota_preemptions),
          c.util_spread,
          static_cast<unsigned long long>(c.res.p50_submit_to_launch),
          static_cast<unsigned long long>(c.res.p99_submit_to_launch),
          c.res.invariants.violations.size(),
          c.deterministic ? "true" : "false",
          i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_fleet.json\n");
  }
  std::printf("fleet gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
