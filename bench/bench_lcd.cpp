// Experiment E6 — local clock domains (paper Section III.B.2).
//
// "LCDs enable an RSPS to regulate data processing throughput": each PRR
// is independently clocked via DCM/PMCD -> BUFGMUX (CLK_sel) -> BUFR
// (CLK_en), isolated by the asynchronous FIFOs. The bench runs the same
// filter module under PRR clocks of 100/50/25/12.5 MHz (the PMCD tap
// ladder) and reports the delivered stream throughput, plus the
// half-throughput step a runtime CLK_sel write produces mid-stream.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>

#include "core/system.hpp"

namespace {

using namespace vapres;
using comm::Word;

core::SystemParams lcd_params(double prr_clock_b_mhz) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  p.prr_clock_b_mhz = prr_clock_b_mhz;
  return p;
}

/// Words delivered at the IOM over `cycles` system cycles with the PRR
/// clocked from BUFGMUX input 1 = `prr_mhz`.
std::size_t throughput_at(double prr_mhz, int cycles) {
  core::VapresSystem sys(lcd_params(prr_mhz));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "gain_x2");
  core::Rsb& rsb = sys.rsb();
  sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  sys.socket_set_bits(rsb.prr_socket_address(0), core::PrSocket::kClkSel,
                      true);  // select input 1 = prr_mhz
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      });
  sys.run_system_cycles(static_cast<sim::Cycles>(cycles));
  return rsb.iom(0).received().size();
}

void print_paper_table() {
  constexpr int kCycles = 20000;  // 200 us at 100 MHz
  std::printf("\n=== E6: local clock domains regulate throughput "
              "(Section III.B.2) ===\n");
  std::printf("gain_x2 module, IOM source saturated, 200 us window; PRR "
              "clock from the\nDCM/PMCD ladder via BUFGMUX input 1 "
              "(PRSocket CLK_sel = 1).\n\n");
  std::printf("%-16s %14s %16s\n", "PRR clock [MHz]", "words out",
              "Mwords/s");
  for (double mhz : {100.0, 50.0, 25.0, 12.5}) {
    const std::size_t words = throughput_at(mhz, kCycles);
    std::printf("%-16.1f %14zu %16.1f\n", mhz, words,
                static_cast<double>(words) / (kCycles / 100.0));
  }
  std::printf("\nShape check: throughput tracks the PRR clock 1:1 — the "
              "asynchronous module\ninterfaces isolate the 100 MHz static "
              "region completely.\n");

  // Runtime frequency change mid-stream (the MicroBlaze toggling
  // CLK_sel, no reset, no data loss).
  core::VapresSystem sys(lcd_params(50.0));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  core::Rsb& rsb = sys.rsb();
  sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  int produced = 0;
  rsb.iom(0).set_source_generator(
      [&produced]() mutable -> std::optional<Word> {
        return static_cast<Word>(produced++);
      });
  sys.run_system_cycles(10000);
  const std::size_t at_100 = rsb.iom(0).received().size();
  sys.socket_set_bits(rsb.prr_socket_address(0), core::PrSocket::kClkSel,
                      true);
  sys.run_system_cycles(10000);
  const std::size_t at_50 = rsb.iom(0).received().size() - at_100;
  std::printf("\n--- runtime CLK_sel toggle mid-stream ---\n");
  std::printf("first 100 us @100 MHz: %zu words; next 100 us @50 MHz: %zu "
              "words (ratio %.2f)\n",
              at_100, at_50,
              static_cast<double>(at_100) / static_cast<double>(at_50));
  // Continuity: the received stream is still the exact prefix 0,1,2,...
  bool ordered = true;
  const auto& rx = rsb.iom(0).received();
  for (std::size_t i = 0; i < rx.size(); ++i) {
    if (rx[i] != static_cast<Word>(i)) {
      ordered = false;
      break;
    }
  }
  std::printf("stream continuity across the switchover: %s\n\n",
              ordered ? "intact (no loss, no reorder)" : "BROKEN");
}

void BM_LcdThroughput(benchmark::State& state) {
  const double mhz = static_cast<double>(state.range(0));
  std::size_t words = 0;
  for (auto _ : state) words = throughput_at(mhz, 5000);
  state.counters["words"] = static_cast<double>(words);
}
BENCHMARK(BM_LcdThroughput)->Arg(100)->Arg(25)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
