// Tooling benchmark — simulator throughput and the activity-driven win.
//
// Not a paper experiment: measures how fast the discrete-event model
// itself runs, comparing the activity-driven (quiescence-aware) kernel
// against the exhaustive tick-everything reference (docs/SIMULATOR.md)
// on two workloads:
//
//   idle-heavy    a long PR transfer (vapres_array2icap of a 640-slice
//                 module) with the other PRR's clock gated, followed by
//                 an idle-fabric span — the span the quiescence tracking
//                 exists for;
//   fully-active  a rate-1 stream saturating an IOM -> PRR -> IOM chain,
//                 every component busy every cycle — the worst case for
//                 the poll overhead.
//
// Emits BENCH_sim_speed.json (edges delivered/skipped, wall-clock,
// sim-time/wall-time ratio per workload and kernel) and exits non-zero
// when the acceptance thresholds regress: >= 5x wall-clock speedup on
// idle-heavy, <= 10 % slowdown on fully-active. scripts/tier1.sh runs
// this binary.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "core/system.hpp"
#include "sim/clock.hpp"

namespace {

using namespace vapres;
using comm::Word;

struct RunResult {
  double wall_s = 0.0;
  double sim_s = 0.0;
  sim::Cycles cycles = 0;
  sim::KernelStats stats;

  double sim_wall_ratio() const { return wall_s > 0 ? sim_s / wall_s : 0; }
};

std::unique_ptr<core::VapresSystem> make_system(bool activity_driven) {
  core::SystemParams p = core::SystemParams::prototype();
  auto sys = std::make_unique<core::VapresSystem>(std::move(p));
  sys->sim().set_activity_driven(activity_driven);
  sys->bring_up_all_sites();
  return sys;
}

template <typename Fn>
RunResult timed(core::VapresSystem& sys, Fn&& body) {
  const sim::Picoseconds ps0 = sys.sim().now();
  const sim::Cycles c0 = sys.system_clock().cycle_count();
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.sim_s = static_cast<double>(sys.sim().now() - ps0) * 1e-12;
  r.cycles = sys.system_clock().cycle_count() - c0;
  r.stats = sys.sim().kernel_stats();
  return r;
}

/// Long PR transfer with the spare PRR's clock gated, then idle fabric.
RunResult run_idle_heavy(bool activity_driven) {
  auto sys = make_system(activity_driven);
  sys->preload_sdram("fir4_smooth", 0, 0);
  sys->rsb().prr(1).clock_tree().set_enabled(false);
  return timed(*sys, [&] {
    sys->reconfigure_now(0, 0, "fir4_smooth");
    sys->run_system_cycles(6'000'000);
  });
}

/// Rate-1 stream through a passthrough module, everything busy.
RunResult run_fully_active(bool activity_driven) {
  auto sys = make_system(activity_driven);
  sys->reconfigure_now(0, 0, "passthrough");
  core::Rsb& rsb = sys->rsb();
  sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      /*interval_cycles=*/1);
  return timed(*sys, [&] {
    for (int chunk = 0; chunk < 50; ++chunk) {
      sys->run_system_cycles(10'000);
      rsb.iom(0).take_received();  // keep memory flat
    }
  });
}

void print_result(const char* workload, const char* kernel,
                  const RunResult& r) {
  std::printf(
      "%-13s %-10s wall %8.3f s | sim %9.4f s (%8.1fx real time) | "
      "%llu cycles | edges: %llu delivered, %llu skipped | "
      "%llu sleeps, %llu wakes\n",
      workload, kernel, r.wall_s, r.sim_s, r.sim_wall_ratio(),
      static_cast<unsigned long long>(r.cycles),
      static_cast<unsigned long long>(r.stats.edges_delivered),
      static_cast<unsigned long long>(r.stats.edges_skipped),
      static_cast<unsigned long long>(r.stats.domain_sleeps),
      static_cast<unsigned long long>(r.stats.component_wakes));
}

void emit_json_run(std::FILE* f, const char* kernel, const RunResult& r,
                   bool last) {
  std::fprintf(f,
               "    \"%s\": {\n"
               "      \"wall_seconds\": %.6f,\n"
               "      \"sim_seconds\": %.6f,\n"
               "      \"sim_wall_ratio\": %.3f,\n"
               "      \"system_cycles\": %llu,\n"
               "      \"edges_delivered\": %llu,\n"
               "      \"edges_skipped\": %llu,\n"
               "      \"domain_sleeps\": %llu,\n"
               "      \"component_wakes\": %llu\n"
               "    }%s\n",
               kernel, r.wall_s, r.sim_s, r.sim_wall_ratio(),
               static_cast<unsigned long long>(r.cycles),
               static_cast<unsigned long long>(r.stats.edges_delivered),
               static_cast<unsigned long long>(r.stats.edges_skipped),
               static_cast<unsigned long long>(r.stats.domain_sleeps),
               static_cast<unsigned long long>(r.stats.component_wakes),
               last ? "" : ",");
}

}  // namespace

int main() {
  std::printf("== simulator throughput: activity-driven vs exhaustive ==\n");

  // Best-of-2 wall times per configuration to damp scheduler noise; the
  // kernel counters are identical across repeats (deterministic model).
  auto best = [](RunResult a, RunResult b) {
    return a.wall_s <= b.wall_s ? a : b;
  };
  const RunResult idle_fast =
      best(run_idle_heavy(true), run_idle_heavy(true));
  const RunResult idle_ref =
      best(run_idle_heavy(false), run_idle_heavy(false));
  const RunResult active_fast =
      best(run_fully_active(true), run_fully_active(true));
  const RunResult active_ref =
      best(run_fully_active(false), run_fully_active(false));

  print_result("idle-heavy", "activity", idle_fast);
  print_result("idle-heavy", "exhaustive", idle_ref);
  print_result("fully-active", "activity", active_fast);
  print_result("fully-active", "exhaustive", active_ref);

  const double speedup =
      idle_fast.wall_s > 0 ? idle_ref.wall_s / idle_fast.wall_s : 0;
  const double slowdown_pct =
      active_ref.wall_s > 0
          ? 100.0 * (active_fast.wall_s - active_ref.wall_s) /
                active_ref.wall_s
          : 0;
  const bool idle_ok = speedup >= 5.0;
  const bool active_ok = slowdown_pct <= 10.0;
  std::printf("idle-heavy speedup: %.1fx (threshold >= 5x: %s)\n", speedup,
              idle_ok ? "PASS" : "FAIL");
  std::printf("fully-active slowdown: %+.1f%% (threshold <= 10%%: %s)\n",
              slowdown_pct, active_ok ? "PASS" : "FAIL");

  std::FILE* f = std::fopen("BENCH_sim_speed.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"idle_heavy\": {\n");
    emit_json_run(f, "activity", idle_fast, false);
    emit_json_run(f, "exhaustive", idle_ref, true);
    std::fprintf(f, "  },\n  \"fully_active\": {\n");
    emit_json_run(f, "activity", active_fast, false);
    emit_json_run(f, "exhaustive", active_ref, true);
    std::fprintf(f,
                 "  },\n"
                 "  \"idle_heavy_speedup\": %.2f,\n"
                 "  \"fully_active_slowdown_pct\": %.2f,\n"
                 "  \"thresholds\": {\"idle_heavy_speedup_min\": 5.0, "
                 "\"fully_active_slowdown_max_pct\": 10.0},\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 speedup, slowdown_pct,
                 idle_ok && active_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_sim_speed.json\n");
  }
  return idle_ok && active_ok ? 0 : 1;
}
