// Tooling benchmark — simulator throughput.
//
// Not a paper experiment: measures how fast the discrete-event model
// itself runs (simulated cycles per wall-clock second) as the system
// grows, so users can budget experiment runtimes (e.g. a full-prototype
// cf2icap at 104 M cycles). Reported per configuration via counters.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>

#include "core/system.hpp"

namespace {

using namespace vapres;
using comm::Word;

std::unique_ptr<core::VapresSystem> make_system(int prrs) {
  core::SystemParams p = core::SystemParams::prototype();
  p.device = fabric::DeviceGeometry::xc4vlx60();
  p.rsbs[0].num_prrs = prrs;
  p.rsbs[0].prr_width_clbs = 2;
  auto sys = std::make_unique<core::VapresSystem>(std::move(p));
  sys->bring_up_all_sites();
  return sys;
}

void BM_IdleSystemCycles(benchmark::State& state) {
  auto sys = make_system(static_cast<int>(state.range(0)));
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sys->run_system_cycles(10000);
    cycles += 10000;
  }
  state.counters["Mcycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IdleSystemCycles)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_StreamingSystemCycles(benchmark::State& state) {
  auto sys = make_system(static_cast<int>(state.range(0)));
  const int prrs = static_cast<int>(state.range(0));
  core::Rsb& rsb = sys->rsb();
  for (int p = 0; p < prrs; ++p) {
    sys->reconfigure_now(0, p, "passthrough");
  }
  // One measured chain through PRR 0.
  sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      });
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sys->run_system_cycles(10000);
    cycles += 10000;
    rsb.iom(0).take_received();  // keep memory flat
  }
  state.counters["Mcycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StreamingSystemCycles)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ReconfigurationSimulated(benchmark::State& state) {
  auto sys = make_system(2);
  bool toggle = false;
  for (auto _ : state) {
    sys->reconfigure_now(0, 0, toggle ? "passthrough" : "offset_100");
    toggle = !toggle;
  }
}
BENCHMARK(BM_ReconfigurationSimulated)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
