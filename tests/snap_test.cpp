// Checkpoint/restore subsystem (snap/): byte-determinism of cold
// restore, warm-restart reconciliation against a live fabric, resume/
// rollback of an in-flight 9-step module switch from every journaled
// step, and corrupt-blob rejection (ctest label: snap).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "sim/check.hpp"
#include "snap/format.hpp"
#include "snap/system_snapshot.hpp"

namespace vapres::snap {
namespace {

using comm::Word;

/// The scheduler test floorplan: four PRRs, three IOMs, three lanes.
core::SystemParams quad_params() {
  core::SystemParams p;
  p.name = "snapsys";
  core::RsbParams& r = p.rsbs[0];
  r.num_prrs = 4;
  r.num_ioms = 3;
  r.ki = 1;
  r.ko = 1;
  r.kr = 3;
  r.kl = 3;
  p.prr_rects = {fabric::ClbRect{0, 0, 16, 10},
                 fabric::ClbRect{16, 0, 16, 4},
                 fabric::ClbRect{32, 0, 16, 10},
                 fabric::ClbRect{48, 0, 16, 4}};
  return p;
}

sched::AppRequest make_app(const std::string& name,
                           std::vector<std::string> modules,
                           int interval = 4, std::uint64_t words = 0) {
  sched::AppRequest req;
  req.name = name;
  req.modules = std::move(modules);
  req.priority = 1;
  req.source_interval_cycles = interval;
  req.source_words = words;
  return req;
}

/// Drives the system to the cold-snapshot barrier: no reconfiguration,
/// staging, or prefetch in flight (the same barrier load/soak.cpp uses).
void quiesce(core::VapresSystem& sys) {
  sys.drain_transfer_path();
  while (sys.prefetch().pending() > 0 || sys.prefetch().staging()) {
    sys.run_system_cycles(64);
  }
}

/// First byte offset where two blobs differ (for failure diagnostics).
std::string first_difference(const std::string& a, const std::string& b) {
  if (a == b) return "identical";
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return "sizes " + std::to_string(a.size()) + "/" + std::to_string(b.size()) +
         ", first difference at byte " + std::to_string(i);
}

TEST(Snap, EpochAndSectionProbes) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  quiesce(sys);
  const std::string blob = SystemSnapshot::save(sys, 42);
  EXPECT_EQ(SystemSnapshot::epoch(blob), 42u);
  EXPECT_FALSE(SystemSnapshot::has_scheduler(blob));
  EXPECT_FALSE(SystemSnapshot::has_switch(blob));

  sched::ApplicationScheduler sched(sys);
  const std::string blob2 = SystemSnapshot::save(sys, 43, &sched);
  EXPECT_EQ(SystemSnapshot::epoch(blob2), 43u);
  EXPECT_TRUE(SystemSnapshot::has_scheduler(blob2));
  EXPECT_FALSE(SystemSnapshot::has_switch(blob2));
}

TEST(Snap, RejectsCorruptAndTruncatedBlobs) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  quiesce(sys);
  const std::string blob = SystemSnapshot::save(sys, 1);

  // Flip one byte in the middle of the payload: a section digest must
  // catch it.
  std::string corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0x40;
  EXPECT_THROW(SnapshotReader{corrupt}, ModelError);

  // Truncation at any of several points must be rejected, not read past.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, blob.size() / 4, blob.size() - 1}) {
    EXPECT_THROW(SnapshotReader{blob.substr(0, keep)}, ModelError)
        << "truncated to " << keep << " bytes";
  }

  // Wrong magic.
  std::string magic = blob;
  magic[0] ^= 0xFF;
  EXPECT_THROW(SnapshotReader{magic}, ModelError);
}

TEST(Snap, ColdRestoreVerifiesParams) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  quiesce(sys);
  const std::string blob = SystemSnapshot::save(sys, 1);

  core::SystemParams wrong = quad_params();
  wrong.name = "otherbox";
  EXPECT_THROW(SystemSnapshot::restore_system(blob, wrong), ModelError);

  wrong = quad_params();
  wrong.rsbs[0].fifo_depth += 1;
  EXPECT_THROW(SystemSnapshot::restore_system(blob, wrong), ModelError);
}

// The tentpole determinism gate: checkpoint mid-stream, restore into a
// fresh system, run both the original and the restored system the same
// number of cycles — the two final snapshots must be byte-identical.
TEST(Snap, ColdRestoreIsByteDeterministic) {
  obs::Registry::instance().reset();
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);

  // One still-streaming finite app, one already-exhausted one, one
  // unbounded one — the generator re-install has to handle all three.
  const int a = sched.submit(make_app("finite", {"gain_x2"}, 4, 5000));
  const int b = sched.submit(make_app("done", {"passthrough"}, 4, 32));
  const int c = sched.submit(make_app("endless", {"gain_half"}, 8, 0));
  sched.run_admission();
  ASSERT_TRUE(sched.app(a).running());
  ASSERT_TRUE(sched.app(b).running());
  ASSERT_TRUE(sched.app(c).running());
  sys.run_system_cycles(2000);  // "done" has emitted all 32 words by now
  quiesce(sys);

  const std::string blob0 = SystemSnapshot::save(sys, 7, &sched);

  // Uninterrupted continuation.
  sys.run_system_cycles(5000);
  const std::string blob1 = SystemSnapshot::save(sys, 8, &sched);

  // Restore-then-run continuation.
  auto sys2 = SystemSnapshot::restore_system(blob0, quad_params());
  auto sched2 = SystemSnapshot::restore_scheduler(blob0, *sys2);
  sys2->run_system_cycles(5000);
  const std::string blob1r = SystemSnapshot::save(*sys2, 8, sched2.get());

  EXPECT_TRUE(blob1 == blob1r) << first_difference(blob1, blob1r);

  // The restored run's streams behaved identically in detail too.
  EXPECT_EQ(sched.app(a).running(), sched2->app(a).running());
  EXPECT_EQ(sched.received_words(c), sched2->received_words(c));
}

// Restoring twice from the same blob yields byte-identical snapshots
// immediately (no hidden dependence on pre-restore process state).
TEST(Snap, RestoreIsReproducible) {
  obs::Registry::instance().reset();
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);
  sched.submit(make_app("app", {"gain_x2"}, 4, 1000));
  sched.run_admission();
  sys.run_system_cycles(500);
  quiesce(sys);
  const std::string blob = SystemSnapshot::save(sys, 3, &sched);

  auto r1 = SystemSnapshot::restore_system(blob, quad_params());
  auto s1 = SystemSnapshot::restore_scheduler(blob, *r1);
  const std::string again1 = SystemSnapshot::save(*r1, 3, s1.get());

  auto r2 = SystemSnapshot::restore_system(blob, quad_params());
  auto s2 = SystemSnapshot::restore_scheduler(blob, *r2);
  const std::string again2 = SystemSnapshot::save(*r2, 3, s2.get());

  EXPECT_TRUE(blob == again1) << first_difference(blob, again1);
  EXPECT_TRUE(again1 == again2) << first_difference(again1, again2);
}

// SystemStats counters and obs::Registry metrics must round-trip the
// snapshot (kernel edge-delivery accounting is excluded by design: the
// restore wakes every component once).
TEST(Snap, StatsAndMetricsRoundTrip) {
  obs::Registry::instance().reset();
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);
  sched.submit(make_app("app", {"ma8", "gain_x2"}, 4, 2000));
  sched.run_admission();
  sys.run_system_cycles(3000);
  quiesce(sys);

  obs::Registry::instance().counter("test.extra.counter").add(17);
  obs::Registry::instance().gauge("test.extra.gauge").set(-4);
  obs::Registry::instance().histogram("test.extra.hist").record(123);
  obs::Registry::instance().histogram("test.extra.hist").record(99999);

  const std::string blob = SystemSnapshot::save(sys, 1, &sched);
  const core::SystemStats before = core::collect_stats(sys);
  const obs::MetricsSnapshot ms_before = obs::Registry::instance().snapshot();

  // Post-save drift the restore must erase.
  obs::Registry::instance().counter("test.extra.counter").add(1000);
  obs::Registry::instance().histogram("test.extra.hist").record(1);

  auto sys2 = SystemSnapshot::restore_system(blob, quad_params());
  const core::SystemStats after = core::collect_stats(*sys2);
  const obs::MetricsSnapshot ms_after = obs::Registry::instance().snapshot();

  // Registry: every nonzero metric identical, histograms to the raw
  // bucket (count/sum/min/max/percentiles all derive from them).
  std::map<std::string, std::uint64_t> counters_before, counters_after;
  for (const auto& [n, v] : ms_before.counters) {
    if (v != 0) counters_before[n] = v;
  }
  for (const auto& [n, v] : ms_after.counters) {
    if (v != 0) counters_after[n] = v;
  }
  EXPECT_EQ(counters_before, counters_after);
  for (const auto& h : ms_before.histograms) {
    if (h.count == 0) continue;
    SCOPED_TRACE(h.name);
    const obs::Histogram& restored =
        obs::Registry::instance().histogram(h.name);
    EXPECT_EQ(restored.count(), h.count);
    EXPECT_EQ(restored.sum(), h.sum);
    EXPECT_EQ(restored.min(), h.min);
    EXPECT_EQ(restored.max(), h.max);
    EXPECT_EQ(restored.percentile(0.50), h.p50);
    EXPECT_EQ(restored.percentile(0.99), h.p99);
  }

  // SystemStats: every counter the report prints, minus kernel activity.
  ASSERT_EQ(before.sites.size(), after.sites.size());
  for (std::size_t i = 0; i < before.sites.size(); ++i) {
    SCOPED_TRACE(before.sites[i].name);
    EXPECT_EQ(before.sites[i].loaded_module, after.sites[i].loaded_module);
    EXPECT_EQ(before.sites[i].reconfigurations,
              after.sites[i].reconfigurations);
    EXPECT_EQ(before.sites[i].words_in, after.sites[i].words_in);
    EXPECT_EQ(before.sites[i].words_out, after.sites[i].words_out);
    EXPECT_EQ(before.sites[i].words_discarded,
              after.sites[i].words_discarded);
    EXPECT_EQ(before.sites[i].stall_cycles, after.sites[i].stall_cycles);
  }
  ASSERT_EQ(before.fifos.size(), after.fifos.size());
  for (std::size_t i = 0; i < before.fifos.size(); ++i) {
    SCOPED_TRACE(before.fifos[i].name);
    EXPECT_EQ(before.fifos[i].pushed, after.fifos[i].pushed);
    EXPECT_EQ(before.fifos[i].popped, after.fifos[i].popped);
    EXPECT_EQ(before.fifos[i].high_watermark, after.fifos[i].high_watermark);
    EXPECT_EQ(before.fifos[i].fault_dropped, after.fifos[i].fault_dropped);
    EXPECT_EQ(before.fifos[i].fault_duplicated,
              after.fifos[i].fault_duplicated);
  }
  ASSERT_EQ(before.domains.size(), after.domains.size());
  for (std::size_t i = 0; i < before.domains.size(); ++i) {
    SCOPED_TRACE(before.domains[i].name);
    EXPECT_EQ(before.domains[i].frequency_mhz, after.domains[i].frequency_mhz);
    EXPECT_EQ(before.domains[i].cycles, after.domains[i].cycles);
  }
  EXPECT_EQ(before.active_channels, after.active_channels);
  EXPECT_EQ(before.dcr_accesses, after.dcr_accesses);
  EXPECT_EQ(before.mb_busy_cycles, after.mb_busy_cycles);
  EXPECT_EQ(before.system_cycles, after.system_cycles);
  EXPECT_EQ(before.icap_bytes, after.icap_bytes);
  EXPECT_EQ(before.reconfigurations, after.reconfigurations);
  EXPECT_EQ(before.robustness.faults_injected,
            after.robustness.faults_injected);
  EXPECT_EQ(before.robustness.icap_corrupted, after.robustness.icap_corrupted);
  EXPECT_EQ(before.robustness.icap_timeouts, after.robustness.icap_timeouts);
  EXPECT_EQ(before.robustness.reconfig_retries,
            after.robustness.reconfig_retries);
  EXPECT_EQ(before.robustness.source_fallbacks,
            after.robustness.source_fallbacks);
  EXPECT_EQ(before.robustness.reconfig_failures,
            after.robustness.reconfig_failures);
  EXPECT_EQ(before.robustness.switch_rollbacks,
            after.robustness.switch_rollbacks);
  EXPECT_EQ(before.robustness.fifo_words_dropped,
            after.robustness.fifo_words_dropped);
  EXPECT_EQ(before.robustness.fifo_words_duplicated,
            after.robustness.fifo_words_duplicated);
  EXPECT_EQ(before.robustness.stuck_ports, after.robustness.stuck_ports);
  EXPECT_EQ(before.bitcache.hits, after.bitcache.hits);
  EXPECT_EQ(before.bitcache.misses, after.bitcache.misses);
  EXPECT_EQ(before.bitcache.evictions, after.bitcache.evictions);
  EXPECT_EQ(before.bitcache.prefetch_issued, after.bitcache.prefetch_issued);
  EXPECT_EQ(before.bitcache.prefetch_useful, after.bitcache.prefetch_useful);
}

// ---- warm restart ---------------------------------------------------------

TEST(Snap, WarmRestartAdoptsLiveAppsWithZeroStreamGaps) {
  obs::Registry::instance().reset();
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);
  const int a = sched.submit(make_app("left", {"gain_x2"}, 4, 0));
  const int b = sched.submit(make_app("right", {"gain_half"}, 4, 0));
  sched.run_admission();
  ASSERT_TRUE(sched.app(a).running());
  ASSERT_TRUE(sched.app(b).running());
  sys.run_system_cycles(1000);
  quiesce(sys);
  const std::string blob = SystemSnapshot::save(sys, 5, &sched);

  // Controller crash: the fabric (sys) lives on; the scheduler object is
  // abandoned. Reset the gap window, reconcile a fresh controller, keep
  // streaming — the output stream must never see a reset.
  core::Rsb& rsb = sys.rsb(0);
  rsb.iom(sched.app(a).sink.iom).reset_gap_stats(sched.app(a).sink.channel);
  rsb.iom(sched.app(b).sink.iom).reset_gap_stats(sched.app(b).sink.channel);

  WarmRestart wr = SystemSnapshot::warm_restart(blob, sys);
  ASSERT_NE(wr.scheduler, nullptr);
  EXPECT_EQ(wr.report.adopted_apps, 2);
  EXPECT_EQ(wr.report.mismatches, 0);
  EXPECT_FALSE(wr.report.switch_resumed);
  EXPECT_FALSE(wr.report.switch_rolled_back);

  const std::uint64_t words_before =
      wr.scheduler->app(a).running()
          ? rsb.iom(wr.scheduler->app(a).sink.iom)
                .words_received(wr.scheduler->app(a).sink.channel)
          : 0;
  sys.run_system_cycles(2000);

  // Both apps still run under the new controller and their sinks kept
  // receiving at the source rate (gap stays at the interval, no reset).
  EXPECT_TRUE(wr.scheduler->app(a).running());
  EXPECT_TRUE(wr.scheduler->app(b).running());
  const sched::AppRecord& ra = wr.scheduler->app(a);
  EXPECT_GT(rsb.iom(ra.sink.iom).words_received(ra.sink.channel), words_before);
  EXPECT_LE(rsb.iom(ra.sink.iom).max_output_gap(ra.sink.channel), 64u);
  const sched::AppRecord& rb = wr.scheduler->app(b);
  EXPECT_LE(rsb.iom(rb.sink.iom).max_output_gap(rb.sink.channel), 64u);

  // The adopted controller passes the same ledger checks a fresh one
  // would.
  EXPECT_EQ(wr.scheduler->running_apps().size(), 2u);
}

TEST(Snap, WarmRestartDowngradesMismatchedApps) {
  obs::Registry::instance().reset();
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);
  const int a = sched.submit(make_app("keeper", {"gain_x2"}, 4, 0));
  const int b = sched.submit(make_app("goner", {"gain_half"}, 4, 0));
  sched.run_admission();
  ASSERT_TRUE(sched.app(a).running() && sched.app(b).running());
  sys.run_system_cycles(500);
  quiesce(sys);
  const std::string blob = SystemSnapshot::save(sys, 6, &sched);

  // Between checkpoint and crash the fabric moved on: "goner" was torn
  // down, so the journal no longer matches the fabric for it.
  sched.stop(b);

  WarmRestart wr = SystemSnapshot::warm_restart(blob, sys);
  EXPECT_EQ(wr.report.adopted_apps, 1);
  EXPECT_EQ(wr.report.mismatches, 1);
  EXPECT_TRUE(wr.scheduler->app(a).running());
  EXPECT_FALSE(wr.scheduler->app(b).running());
  // The keeper's stream is untouched.
  sys.run_system_cycles(500);
  EXPECT_TRUE(wr.scheduler->app(a).running());
}

// ---- in-flight switch resume/rollback sweep -------------------------------

struct SwitchRig {
  std::unique_ptr<core::VapresSystem> sys;
  std::unique_ptr<sched::ApplicationScheduler> sched;
  core::ChannelId upstream = 0;
  core::ChannelId downstream = 0;

  SwitchRig() {
    core::SystemParams p = core::SystemParams::prototype();
    p.rsbs[0].prr_width_clbs = 4;  // small PRR: fast reconfiguration
    sys = std::make_unique<core::VapresSystem>(std::move(p));
    sys->bring_up_all_sites();
    sys->reconfigure_now(0, 0, "passthrough");
    sys->preload_sdram("gain_x2", 0, 1);
    sched = std::make_unique<sched::ApplicationScheduler>(*sys);
    core::Rsb& rsb = sys->rsb();
    upstream = *sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
    downstream = *sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
    rsb.iom(0).set_source_generator(
        [n = Word{0}]() mutable -> std::optional<Word> {
          return static_cast<Word>((n++) & 0x7FFFFFFFu);
        },
        /*interval=*/4);
  }

  core::SwitchRequest request() const {
    core::SwitchRequest req;
    req.src_prr = 0;
    req.dst_prr = 1;
    req.new_module_id = "gain_x2";
    req.upstream = upstream;
    req.downstream = downstream;
    req.eos_iom = 0;
    req.source = core::ReconfigSource::kSdramArray;
    return req;
  }

  /// Advances until the switcher first shows `target` (coarse chunks
  /// through the long PR step, single cycles through the fast protocol
  /// tail so no step is skipped over).
  bool run_to_state(core::ModuleSwitcher& sw,
                    core::ModuleSwitcher::State target) {
    using St = core::ModuleSwitcher::State;
    for (std::uint64_t budget = 0; budget < 80'000'000; ++budget) {
      if (sw.state() == target) return true;
      if (sw.finished()) return false;
      // Chunking through kReconfiguring would overshoot: the whole
      // protocol tail (steps 2..9) can complete inside one chunk. Only
      // kIdle is safe to cross coarsely.
      const std::uint64_t chunk = sw.state() == St::kIdle ? 1024 : 1;
      sys->run_system_cycles(chunk);
    }
    return false;
  }
};

TEST(Snap, WarmRestartRollsBackSwitchInterruptedDuringReconfig) {
  obs::Registry::instance().reset();
  SwitchRig rig;
  core::ModuleSwitcher sw(*rig.sys, rig.request());
  sw.begin();
  ASSERT_TRUE(
      rig.run_to_state(sw, core::ModuleSwitcher::State::kReconfiguring));

  const std::string blob =
      SystemSnapshot::save(*rig.sys, 9, rig.sched.get(), &sw);
  EXPECT_TRUE(SystemSnapshot::has_switch(blob));
  // A warm blob must be refused by the cold path.
  EXPECT_THROW(SystemSnapshot::restore_system(
                   blob, core::SystemParams::prototype()),
               ModelError);

  // Crash: the controller (and its switcher task) is gone.
  rig.sys->mb().remove_task(&sw);
  WarmRestart wr = SystemSnapshot::warm_restart(blob, *rig.sys);
  EXPECT_TRUE(wr.report.switch_rolled_back);
  EXPECT_FALSE(wr.report.switch_resumed);
  EXPECT_EQ(wr.switcher, nullptr);

  core::Rsb& rsb = rig.sys->rsb();
  // The spare PRR is not left stuck half-configured.
  EXPECT_FALSE(rsb.prr(1).occupied());
  EXPECT_EQ(rsb.prr(1).loaded_module(), "");
  // The original stream never moved and keeps flowing.
  EXPECT_TRUE(rsb.channels().active(rig.upstream));
  EXPECT_TRUE(rsb.channels().active(rig.downstream));
  const std::uint64_t before = rsb.iom(0).words_received(0);
  rig.sys->run_system_cycles(2000);
  EXPECT_GT(rsb.iom(0).words_received(0), before);
}

class SnapSwitchResume
    : public ::testing::TestWithParam<core::ModuleSwitcher::State> {};

TEST_P(SnapSwitchResume, ResumesFromJournaledStep) {
  obs::Registry::instance().reset();
  SwitchRig rig;
  core::ModuleSwitcher sw(*rig.sys, rig.request());
  sw.begin();
  ASSERT_TRUE(rig.run_to_state(sw, GetParam()))
      << "state " << static_cast<int>(GetParam()) << " never observed";

  const std::string blob =
      SystemSnapshot::save(*rig.sys, 9, rig.sched.get(), &sw);
  rig.sys->mb().remove_task(&sw);  // crash

  WarmRestart wr = SystemSnapshot::warm_restart(blob, *rig.sys);
  EXPECT_TRUE(wr.report.switch_resumed);
  ASSERT_NE(wr.switcher, nullptr);

  // The resumed switcher completes the protocol; the PRR is never left
  // stuck and the stream ends up on the new module.
  ASSERT_TRUE(rig.sys->sim().run_until([&] { return wr.switcher->finished(); },
                                       800'000'000'000ULL));
  EXPECT_TRUE(wr.switcher->done());
  core::Rsb& rsb = rig.sys->rsb();
  EXPECT_EQ(rsb.prr(1).loaded_module(), "gain_x2");
  EXPECT_FALSE(rsb.channels().active(rig.upstream));
  EXPECT_FALSE(rsb.channels().active(rig.downstream));
  // Output continues on the re-routed channel.
  const std::uint64_t before = rsb.iom(0).words_received(0);
  rig.sys->run_system_cycles(2000);
  EXPECT_GT(rsb.iom(0).words_received(0), before);
}

INSTANTIATE_TEST_SUITE_P(
    AllSteps, SnapSwitchResume,
    ::testing::Values(core::ModuleSwitcher::State::kQuiesceUpstream,
                      core::ModuleSwitcher::State::kRerouteUpstream,
                      core::ModuleSwitcher::State::kSendFlush,
                      core::ModuleSwitcher::State::kCollectState,
                      core::ModuleSwitcher::State::kInitNewModule,
                      core::ModuleSwitcher::State::kWaitIomEos,
                      core::ModuleSwitcher::State::kQuiesceSrc,
                      core::ModuleSwitcher::State::kRerouteDownstream));

}  // namespace
}  // namespace vapres::snap
