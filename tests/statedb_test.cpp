// Control-plane state table: byte-deterministic journals, replay
// equivalence across truncation, crash-at-every-journal-step migration
// sweeps, router/quota restart reconvergence, and quota hysteresis
// streak reconstruction. ctest label: fleet.
#include <gtest/gtest.h>

#include "fleet/controlplane.hpp"
#include "load/scenario.hpp"

namespace vapres {
namespace {

sched::AppRequest request(const std::string& name,
                          std::vector<std::string> modules, int priority = 1,
                          int interval = 8, std::uint64_t words = 64) {
  sched::AppRequest r;
  r.name = name;
  r.modules = std::move(modules);
  r.priority = priority;
  r.source_interval_cycles = interval;
  r.source_words = words;
  return r;
}

/// Drives the same short mixed workload (submissions, one cross-fabric
/// move, one stop) through a plane.
void drive(fleet::ControlPlane& fc, std::uint64_t seed) {
  load::ScenarioSpec spec =
      load::ScenarioSpec::standard_fleet(seed, 25, 3, fc.num_fabrics());
  load::ScenarioGenerator gen(spec);
  while (auto ev = gen.next()) {
    fc.advance_to(ev->at_cycle);
    fc.submit("t" + std::to_string(ev->tenant), ev->request);
    if (ev->migrate && !fc.running_ids().empty()) {
      const int id = fc.running_ids().front();
      fc.migrate(id, (fc.locate(id)->fabric + 1) % fc.num_fabrics());
    }
    if (ev->churn_stop && !fc.running_ids().empty()) {
      fc.stop(fc.running_ids().front());
    }
  }
}

TEST(StateDb, SerializedRequestRoundTrips) {
  const sched::AppRequest r = request("edge,case", {"gain_x2", "ma8"}, 3, 2, 99);
  const sched::AppRequest back = fleet::parse_request(
      fleet::serialize_request(r));
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.modules, r.modules);
  EXPECT_EQ(back.priority, r.priority);
  EXPECT_EQ(back.source_interval_cycles, r.source_interval_cycles);
  EXPECT_EQ(back.source_words, r.source_words);
}

TEST(StateDb, JournalBytesAreDeterministicPerIntentStream) {
  fleet::ControlPlane a(fleet::FleetSpec::heterogeneous());
  fleet::ControlPlane b(fleet::FleetSpec::heterogeneous());
  drive(a, 42);
  drive(b, 42);

  // Same intent stream, byte-identical journal — the serialization has
  // no map-order, pointer, or timing dependence.
  EXPECT_GT(a.statedb().journal_depth(), 0u);
  EXPECT_EQ(a.statedb().serialize_journal(), b.statedb().serialize_journal());
  EXPECT_EQ(a.statedb().journal_digest(), b.statedb().journal_digest());
  EXPECT_EQ(a.statedb().view_digest(), b.statedb().view_digest());

  fleet::ControlPlane c(fleet::FleetSpec::heterogeneous());
  drive(c, 43);
  EXPECT_NE(a.statedb().journal_digest(), c.statedb().journal_digest());
}

TEST(StateDb, ReplayReproducesViewAcrossTruncation) {
  fleet::ControlPlane fc(fleet::FleetSpec::heterogeneous());
  drive(fc, 7);
  EXPECT_EQ(fc.statedb().replayed_view_digest(), fc.statedb().view_digest());

  // Truncation snapshots the view as the new replay base; the rolling
  // journal digest is unaffected and replay still lands on the view.
  const std::uint64_t rolling = fc.statedb().journal_digest();
  fc.truncate_journal();
  EXPECT_EQ(fc.statedb().journal_depth(), 0u);
  EXPECT_EQ(fc.statedb().journal_digest(), rolling);
  EXPECT_EQ(fc.statedb().replayed_view_digest(), fc.statedb().view_digest());

  drive(fc, 8);
  EXPECT_GT(fc.statedb().journal_depth(), 0u);
  EXPECT_EQ(fc.statedb().replayed_view_digest(), fc.statedb().view_digest());
}

// The core crash-tolerance sweep: kill the MigrationAgent at *every*
// journal version a migration can be mid-flight at. Whatever the step,
// the restarted agent must finish the move — never lose the app.
TEST(StateDb, MigrationSurvivesKillAtEveryJournalStep) {
  for (std::uint64_t offset = 1; offset <= 10; ++offset) {
    fleet::ControlPlane fc(fleet::FleetSpec::uniform(2));
    const fleet::RouteDecision d =
        fc.submit("t0", request("amp", {"gain_x2"}));
    ASSERT_TRUE(d.admitted);
    const int dst = 1 - d.fabric;

    fc.schedule_kill(fleet::AgentId::kMigration,
                     fc.statedb().version() + offset);
    const fleet::MigrateResult mr = fc.migrate(d.fleet_id, dst);
    EXPECT_EQ(mr.outcome, fleet::MigrateOutcome::kMoved)
        << "kill offset " << offset << ": "
        << fleet::migrate_outcome_name(mr.outcome) << " (" << mr.reason
        << ")";
    EXPECT_TRUE(fc.running(d.fleet_id)) << "kill offset " << offset;
    EXPECT_EQ(fc.locate(d.fleet_id)->fabric, dst) << "kill offset " << offset;
    EXPECT_EQ(fc.counters().migrations_lost, 0u);
    EXPECT_TRUE(fc.reconcile().empty());
    EXPECT_EQ(fc.statedb().replayed_view_digest(),
              fc.statedb().view_digest());
  }
}

// Same sweep down the rollback path: the destination is saturated, so
// the restarted agent must re-admit the app on its source fabric.
TEST(StateDb, RollbackSurvivesKillAtEveryJournalStep) {
  for (std::uint64_t offset = 1; offset <= 10; ++offset) {
    fleet::ControlPlane fc(fleet::FleetSpec::uniform(2));
    const fleet::RouteDecision d =
        fc.submit("t0", request("amp", {"gain_x2"}));
    ASSERT_TRUE(d.admitted);
    const int src = d.fabric;
    const int dst = 1 - src;
    for (int i = 0; i < 3; ++i) {
      fc.scheduler(dst).submit(
          request("fill" + std::to_string(i), {"gain_x2"}));
    }
    fc.scheduler(dst).run_admission();
    ASSERT_EQ(fc.running_on(dst), 3);

    fc.schedule_kill(fleet::AgentId::kMigration,
                     fc.statedb().version() + offset);
    const fleet::MigrateResult mr = fc.migrate(d.fleet_id, dst, false);
    EXPECT_EQ(mr.outcome, fleet::MigrateOutcome::kRolledBack)
        << "kill offset " << offset;
    EXPECT_TRUE(fc.running(d.fleet_id)) << "kill offset " << offset;
    EXPECT_EQ(fc.locate(d.fleet_id)->fabric, src) << "kill offset " << offset;
    EXPECT_EQ(fc.counters().migrations_lost, 0u);
    EXPECT_EQ(fc.statedb().replayed_view_digest(),
              fc.statedb().view_digest());
  }
}

// Killing the router mid-intent must not change where the submission
// lands: the fresh router resumes from the journaled order and attempt
// index.
TEST(StateDb, RouterRestartResumesOpenIntent) {
  fleet::ControlPlane undisturbed(fleet::FleetSpec::heterogeneous());
  const fleet::RouteDecision want =
      undisturbed.submit("t0", request("avg", {"ma8"}));
  ASSERT_TRUE(want.admitted);

  for (std::uint64_t offset = 1; offset <= 6; ++offset) {
    fleet::ControlPlane fc(fleet::FleetSpec::heterogeneous());
    fc.schedule_kill(fleet::AgentId::kRouter,
                     fc.statedb().version() + offset);
    const fleet::RouteDecision got = fc.submit("t0", request("avg", {"ma8"}));
    EXPECT_EQ(got.admitted, want.admitted) << "kill offset " << offset;
    EXPECT_EQ(got.fabric, want.fabric) << "kill offset " << offset;
    EXPECT_EQ(got.order, want.order) << "kill offset " << offset;
    EXPECT_EQ(fc.statedb().replayed_view_digest(),
              fc.statedb().view_digest());
  }
}

// A restarted QuotaAgent rebuilds its governor from the journaled
// kTenantState rows: the grow streak resumes mid-count instead of
// zeroing, so the third over-budget observation still triggers the
// grow.
TEST(StateDb, QuotaGrowStreakSurvivesRestart) {
  fleet::FleetSpec spec = fleet::FleetSpec::uniform(1);
  spec.quota.min_budget_prrs = 1;
  spec.quota.initial_budget_prrs = 1;
  spec.quota.max_budget_prrs = 8;
  spec.quota.grow_observations = 3;
  spec.quota.grow_step_prrs = 2;
  spec.quota.elastic_slack_prrs = 0;  // overshoot freely while PRRs free
  fleet::ControlPlane fc(spec);

  // Three submissions: the first is within budget, the next two build
  // the over-budget streak to 2 of 3.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        fc.submit("a", request("a" + std::to_string(i), {"gain_x2"}))
            .admitted)
        << i;
  }
  ASSERT_EQ(fc.governor().pressure("a"), 2);
  ASSERT_EQ(fc.governor().budget("a"), 1);

  EXPECT_TRUE(fc.restart_agent(fleet::AgentId::kQuota).empty());
  EXPECT_EQ(fc.governor().pressure("a"), 2);  // restored, not zeroed
  EXPECT_EQ(fc.governor().budget("a"), 1);
  EXPECT_EQ(fc.governor().usage("a"), 3);

  // The next over-budget observation completes the streak of 3.
  fc.submit("a", request("a3", {"gain_x2"}));
  EXPECT_EQ(fc.governor().budget("a"), 3);
  EXPECT_EQ(fc.statedb().replayed_view_digest(), fc.statedb().view_digest());
}

TEST(StateDb, RestartsAreLedgeredPerAgent) {
  fleet::ControlPlane fc(fleet::FleetSpec::uniform(2));
  EXPECT_EQ(fc.agent_restarts(), 0u);
  EXPECT_TRUE(fc.restart_agent(fleet::AgentId::kRouter).empty());
  EXPECT_TRUE(fc.restart_agent(fleet::AgentId::kRouter).empty());
  EXPECT_TRUE(fc.restart_agent(fleet::fabric_agent_id(1)).empty());
  EXPECT_EQ(fc.agent_restarts(), 3u);
  EXPECT_EQ(fc.statedb().restarts(fleet::AgentId::kRouter), 2u);
  EXPECT_EQ(fc.statedb().restarts(fleet::fabric_agent_id(1)), 1u);
  EXPECT_EQ(fc.statedb().restarts(fleet::AgentId::kQuota), 0u);
}

TEST(StateDb, FleetStatusReportsPlaneState) {
  fleet::ControlPlane fc(fleet::FleetSpec::uniform(2));
  ASSERT_TRUE(fc.submit("t0", request("amp", {"gain_x2"})).admitted);
  fc.restart_agent(fleet::AgentId::kQuota);

  const std::string s = fc.fleet_status();
  EXPECT_NE(s.find("journal"), std::string::npos) << s;
  EXPECT_NE(s.find("router"), std::string::npos) << s;
  EXPECT_NE(s.find("quota"), std::string::npos) << s;
  EXPECT_NE(s.find(fc.fabric_name(0)), std::string::npos) << s;
  EXPECT_NE(s.find("t0"), std::string::npos) << s;
}

}  // namespace
}  // namespace vapres
