// FIFO and FSL tests.
#include <gtest/gtest.h>

#include "comm/fifo.hpp"
#include "comm/fsl.hpp"
#include "sim/check.hpp"
#include "sim/random.hpp"

namespace vapres::comm {
namespace {

TEST(Fifo, BasicOrdering) {
  Fifo f("f", 4);
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_EQ(f.size(), 3);
  EXPECT_EQ(f.front(), 1u);
  EXPECT_EQ(f.pop(), 1u);
  EXPECT_EQ(f.pop(), 2u);
  EXPECT_EQ(f.pop(), 3u);
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, FullAndRemaining) {
  Fifo f("f", 2);
  EXPECT_EQ(f.remaining(), 2);
  f.push(1);
  f.push(2);
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.remaining(), 0);
}

TEST(Fifo, OverflowAndUnderflowThrow) {
  Fifo f("f", 1);
  f.push(1);
  EXPECT_THROW(f.push(2), ModelError);
  f.pop();
  EXPECT_THROW(f.pop(), ModelError);
  EXPECT_THROW(f.front(), ModelError);
}

TEST(Fifo, ResetClearsContents) {
  Fifo f("f", 4);
  f.push(1);
  f.push(2);
  f.reset();
  EXPECT_TRUE(f.empty());
  // Counters survive reset (they are diagnostics, not state).
  EXPECT_EQ(f.total_pushed(), 2u);
}

TEST(Fifo, CountersAndHighWatermark) {
  Fifo f("f", 8);
  for (Word i = 0; i < 5; ++i) f.push(i);
  f.pop();
  f.pop();
  f.push(9);
  EXPECT_EQ(f.total_pushed(), 6u);
  EXPECT_EQ(f.total_popped(), 2u);
  EXPECT_EQ(f.high_watermark(), 5);
}

TEST(Fifo, RejectsNonPositiveCapacity) {
  EXPECT_THROW(Fifo("f", 0), ModelError);
}

TEST(Fifo, ConservationUnderRandomTraffic) {
  sim::SplitMix64 rng(123);
  Fifo f("f", 16);
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  Word next_in = 0;
  Word next_out = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.55) && !f.full()) {
      f.push(next_in++);
      ++pushed;
    }
    if (rng.chance(0.5) && !f.empty()) {
      EXPECT_EQ(f.pop(), next_out++);
      ++popped;
    }
  }
  EXPECT_EQ(pushed - popped, static_cast<std::uint64_t>(f.size()));
}

TEST(Fsl, MasterSlaveEnds) {
  FslLink link("fsl", 4);
  EXPECT_TRUE(link.can_write());
  EXPECT_FALSE(link.can_read());
  link.write(11);
  link.write(22);
  EXPECT_EQ(link.occupancy(), 2);
  EXPECT_EQ(link.peek(), 11u);
  EXPECT_EQ(link.read(), 11u);
  EXPECT_EQ(*link.try_read(), 22u);
  EXPECT_FALSE(link.try_read().has_value());
}

TEST(Fsl, BlockingWriteBoundary) {
  FslLink link("fsl", 2);
  link.write(1);
  link.write(2);
  EXPECT_FALSE(link.can_write());
  EXPECT_THROW(link.write(3), ModelError);
}

TEST(Fsl, ResetDropsQueuedWords) {
  FslLink link("fsl", 4);
  link.write(1);
  link.reset();
  EXPECT_FALSE(link.can_read());
  EXPECT_EQ(link.total_written(), 1u);
}

TEST(Fsl, DefaultDepthIsOneBlockRam) {
  FslLink link("fsl");
  EXPECT_EQ(link.capacity(), 512);  // RAMB16 as 512 x 32
}

}  // namespace
}  // namespace vapres::comm
