// Switch-fabric integration tests: route configuration, conflicts,
// pipelined streaming, and the backpressure zero-loss property sweeps
// that substantiate the Section III.B protocol.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "comm/fabric_dump.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace vapres::comm {
namespace {

using test::FabricRig;

RouteSpec simple_route(int from, int to, int lane = 0) {
  RouteSpec spec;
  spec.producer_box = from;
  spec.consumer_box = to;
  spec.lanes.assign(static_cast<std::size_t>(std::abs(to - from)), lane);
  return spec;
}

TEST(RouteSpec, Geometry) {
  EXPECT_EQ(simple_route(0, 3).segments(), 3);
  EXPECT_EQ(simple_route(0, 3).hops(), 4);
  EXPECT_TRUE(simple_route(0, 3).rightward());
  EXPECT_FALSE(simple_route(3, 0).rightward());
  EXPECT_EQ(simple_route(2, 2).hops(), 1);
}

TEST(SwitchFabric, EstablishAndStreamRightward) {
  FabricRig rig(3);
  const RouteId id = rig.fabric->establish(simple_route(0, 2));
  rig.producers[0]->set_read_enable(true);
  rig.consumers[2]->set_write_enable(true);
  for (Word w = 0; w < 10; ++w) rig.producers[0]->fifo().push(100 + w);
  rig.run(20);
  const auto out = rig.drain(2);
  ASSERT_EQ(out.size(), 10u);
  for (Word w = 0; w < 10; ++w) EXPECT_EQ(out[w], 100 + w);
  EXPECT_EQ(rig.consumers[2]->words_discarded(), 0u);
  rig.fabric->release(id);
}

TEST(SwitchFabric, EstablishAndStreamLeftward) {
  FabricRig rig(4);
  rig.fabric->establish(simple_route(3, 0));
  rig.producers[3]->set_read_enable(true);
  rig.consumers[0]->set_write_enable(true);
  for (Word w = 0; w < 5; ++w) rig.producers[3]->fifo().push(w);
  rig.run(20);
  EXPECT_EQ(rig.drain(0), (std::vector<Word>{0, 1, 2, 3, 4}));
}

TEST(SwitchFabric, PipelineLatencyIsHopsPlusInterfaceStages) {
  // Producer output register + one register per box: first word reaches
  // the consumer FIFO hops + 2 cycles after enabling.
  for (int dist = 1; dist <= 4; ++dist) {
    FabricRig rig(5);
    rig.fabric->establish(simple_route(0, dist));
    rig.consumers[dist]->set_write_enable(true);
    rig.producers[0]->fifo().push(7);
    rig.producers[0]->set_read_enable(true);
    const int hops = dist + 1;
    rig.run(static_cast<sim::Cycles>(hops + 1));
    EXPECT_TRUE(rig.consumers[dist]->fifo().empty())
        << "word arrived early at distance " << dist;
    rig.run(1);
    EXPECT_EQ(rig.consumers[dist]->fifo().size(), 1)
        << "word late at distance " << dist;
  }
}

TEST(SwitchFabric, FullThroughputOneWordPerCycle) {
  FabricRig rig(4);
  rig.fabric->establish(simple_route(0, 3));
  rig.producers[0]->set_read_enable(true);
  rig.consumers[3]->set_write_enable(true);
  // Keep the producer fed; drain the consumer every cycle.
  std::uint64_t received = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    if (!rig.producers[0]->fifo().full()) {
      rig.producers[0]->fifo().push(static_cast<Word>(cycle));
    }
    rig.run(1);
    received += rig.drain(3).size();
  }
  // Pipeline fill is ~5 cycles; everything after flows at 1 word/cycle.
  EXPECT_GE(received, 190u);
}

TEST(SwitchFabric, TwoConcurrentChannelsDoNotInterfere) {
  FabricRig rig(4, SwitchBoxShape{2, 2, 1, 1});
  rig.fabric->establish(simple_route(0, 3, /*lane=*/0));
  rig.fabric->establish(simple_route(1, 2, /*lane=*/1));
  rig.producers[0]->set_read_enable(true);
  rig.producers[1]->set_read_enable(true);
  rig.consumers[3]->set_write_enable(true);
  rig.consumers[2]->set_write_enable(true);
  for (Word w = 0; w < 20; ++w) {
    rig.producers[0]->fifo().push(1000 + w);
    rig.producers[1]->fifo().push(2000 + w);
  }
  rig.run(40);
  const auto a = rig.drain(3);
  const auto b = rig.drain(2);
  ASSERT_EQ(a.size(), 20u);
  ASSERT_EQ(b.size(), 20u);
  EXPECT_EQ(a.front(), 1000u);
  EXPECT_EQ(b.front(), 2000u);
}

TEST(SwitchFabric, LaneConflictRejected) {
  FabricRig rig(3, SwitchBoxShape{1, 1, 1, 1});
  rig.fabric->establish(simple_route(0, 2, 0));
  EXPECT_THROW(rig.fabric->establish(simple_route(0, 1, 0)), ModelError);
  EXPECT_THROW(rig.fabric->establish(simple_route(1, 2, 0)), ModelError);
  // Opposite direction uses separate lanes: fine.
  EXPECT_NO_THROW(rig.fabric->establish(simple_route(2, 0, 0)));
}

TEST(SwitchFabric, ReleaseFreesLanes) {
  FabricRig rig(3, SwitchBoxShape{1, 1, 1, 1});
  const RouteId id = rig.fabric->establish(simple_route(0, 2, 0));
  rig.fabric->release(id);
  EXPECT_NO_THROW(rig.fabric->establish(simple_route(0, 2, 0)));
  EXPECT_THROW(rig.fabric->release(id), ModelError);
}

TEST(SwitchFabric, RouteValidation) {
  FabricRig rig(3);
  RouteSpec bad = simple_route(0, 2);
  bad.lanes.pop_back();
  EXPECT_THROW(rig.fabric->establish(bad), ModelError);
  bad = simple_route(0, 2, 5);  // lane out of range
  EXPECT_THROW(rig.fabric->establish(bad), ModelError);
  bad = simple_route(0, 7);
  EXPECT_THROW(rig.fabric->establish(bad), ModelError);
}

TEST(SwitchFabric, TooShallowConsumerFifoRejected) {
  // depth 8 cannot absorb the in-flight window of a 3-box route
  // (2*3 + 2 = 8 words): establishment must fail loudly, not deadlock.
  FabricRig rig(3, SwitchBoxShape{2, 2, 1, 1}, /*fifo_depth=*/8);
  EXPECT_THROW(rig.fabric->establish(simple_route(0, 2)), ModelError);
  // One hop needs only > 4: fine.
  EXPECT_NO_THROW(rig.fabric->establish(simple_route(0, 1)));
}

TEST(SwitchFabric, SameBoxLoopbackSupportedAtFabricLevel) {
  FabricRig rig(2);
  rig.fabric->establish(simple_route(1, 1));
  rig.producers[1]->set_read_enable(true);
  rig.consumers[1]->set_write_enable(true);
  rig.producers[1]->fifo().push(5);
  rig.run(5);
  EXPECT_EQ(rig.drain(1), (std::vector<Word>{5}));
}

TEST(FabricDump, RendersRoutesSymbolically) {
  FabricRig rig(3, SwitchBoxShape{2, 2, 1, 1});
  const std::string before = dump_fabric(*rig.fabric);
  EXPECT_NE(before.find("all outputs parked"), std::string::npos);
  EXPECT_NE(before.find("0 active route(s)"), std::string::npos);

  rig.fabric->establish(simple_route(0, 2, /*lane=*/1));
  const std::string after = dump_fabric(*rig.fabric);
  EXPECT_NE(after.find("1 active route(s)"), std::string::npos);
  EXPECT_NE(after.find("R1<-P0"), std::string::npos);  // source box
  EXPECT_NE(after.find("R1<-R1"), std::string::npos);  // middle box
  EXPECT_NE(after.find("C0<-R1"), std::string::npos);  // sink box
}

TEST(FabricDump, PortNames) {
  SwitchBox box("sw", SwitchBoxShape{2, 2, 1, 1});
  EXPECT_EQ(input_port_name(box, 0), "R0");
  EXPECT_EQ(input_port_name(box, 2), "L0");
  EXPECT_EQ(input_port_name(box, 4), "P0");
  EXPECT_EQ(output_port_name(box, 3), "L1");
  EXPECT_EQ(output_port_name(box, 4), "C0");
  EXPECT_THROW(input_port_name(box, 9), ModelError);
}

// ------------------------------------------------------ zero-loss property
//
// For every (distance, consumer FIFO depth, drain pattern): a producer
// streaming at full rate into a consumer that drains slowly must never
// drop a word — the pipelined feedback-full signal throttles the producer
// in time (Section III.B). This is the property the paper's 2*(N-d)
// formula is *for*; we verify the implemented threshold delivers it.

class BackpressureSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BackpressureSweep, NoWordEverDropped) {
  const auto [distance, depth, drain_every] = GetParam();
  FabricRig rig(distance + 1, SwitchBoxShape{2, 2, 1, 1}, depth);
  rig.fabric->establish(simple_route(0, distance));
  rig.producers[0]->set_read_enable(true);
  rig.consumers[static_cast<std::size_t>(distance)]->set_write_enable(true);

  constexpr int kWords = 400;
  Word next_push = 0;
  std::vector<Word> received;
  int cycle = 0;
  while (static_cast<int>(received.size()) < kWords && cycle < 100000) {
    if (next_push < kWords && !rig.producers[0]->fifo().full()) {
      rig.producers[0]->fifo().push(next_push++);
    }
    rig.run(1);
    ++cycle;
    if (cycle % drain_every == 0) {
      auto& fifo = rig.consumers[static_cast<std::size_t>(distance)]->fifo();
      if (!fifo.empty()) received.push_back(fifo.pop());
    }
  }

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kWords))
      << "stream did not complete";
  for (int i = 0; i < kWords; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], static_cast<Word>(i));
  }
  EXPECT_EQ(rig.consumers[static_cast<std::size_t>(distance)]
                ->words_discarded(),
            0u);
}

INSTANTIATE_TEST_SUITE_P(
    DistanceDepthDrain, BackpressureSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7),      // distance
                       ::testing::Values(32, 64, 512),        // FIFO depth
                       ::testing::Values(1, 3, 7)),           // drain period
    [](const auto& param_info) {
      return "d" + std::to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param)) + "_r" +
             std::to_string(std::get<2>(param_info.param));
    });

// The conservative half-capacity policy must also never drop a word.
class HalfCapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(HalfCapacitySweep, NoWordEverDropped) {
  const int distance = GetParam();
  FabricRig rig(distance + 1, SwitchBoxShape{2, 2, 1, 1}, /*depth=*/64);
  rig.fabric->establish(simple_route(0, distance),
                        BackpressurePolicy::kHalfCapacity);
  rig.producers[0]->set_read_enable(true);
  rig.consumers[static_cast<std::size_t>(distance)]->set_write_enable(true);

  constexpr int kWords = 300;
  Word next_push = 0;
  std::vector<Word> received;
  int cycle = 0;
  while (static_cast<int>(received.size()) < kWords && cycle < 100000) {
    if (next_push < kWords && !rig.producers[0]->fifo().full()) {
      rig.producers[0]->fifo().push(next_push++);
    }
    rig.run(1);
    ++cycle;
    if (cycle % 5 == 0) {
      auto& fifo = rig.consumers[static_cast<std::size_t>(distance)]->fifo();
      if (!fifo.empty()) received.push_back(fifo.pop());
    }
  }
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kWords));
  for (int i = 0; i < kWords; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], static_cast<Word>(i));
  }
  EXPECT_EQ(rig.consumers[static_cast<std::size_t>(distance)]
                ->words_discarded(),
            0u);
}

INSTANTIATE_TEST_SUITE_P(Distances, HalfCapacitySweep,
                         ::testing::Values(1, 3, 7));

// Random bursty traffic: conservation + ordering, many seeds.
class RandomTrafficSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomTrafficSweep, ConservationAndOrdering) {
  sim::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  const int distance = 1 + static_cast<int>(rng.next_below(6));
  const int depth = 32 << rng.next_below(3);
  FabricRig rig(distance + 1, SwitchBoxShape{2, 2, 1, 1}, depth);
  rig.fabric->establish(simple_route(0, distance));
  rig.producers[0]->set_read_enable(true);
  rig.consumers[static_cast<std::size_t>(distance)]->set_write_enable(true);

  Word next_push = 0;
  std::vector<Word> received;
  for (int cycle = 0; cycle < 5000; ++cycle) {
    if (rng.chance(0.7) && !rig.producers[0]->fifo().full()) {
      rig.producers[0]->fifo().push(next_push++);
    }
    rig.run(1);
    if (rng.chance(0.4)) {
      auto& fifo = rig.consumers[static_cast<std::size_t>(distance)]->fifo();
      if (!fifo.empty()) received.push_back(fifo.pop());
    }
  }
  // Drain everything still buffered in the producer FIFO, the pipeline,
  // and the consumer FIFO (repeat until no progress).
  for (int round = 0; round < 16; ++round) {
    rig.run(static_cast<sim::Cycles>(2 * depth + 100));
    const auto batch = rig.drain(distance);
    if (batch.empty()) break;
    received.insert(received.end(), batch.begin(), batch.end());
  }

  ASSERT_EQ(received.size(), static_cast<std::size_t>(next_push));
  for (std::size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i], static_cast<Word>(i));
  }
  EXPECT_EQ(rig.consumers[static_cast<std::size_t>(distance)]
                ->words_discarded(),
            0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTrafficSweep,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace vapres::comm
