// Design-space explorer tests.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "flow/explorer.hpp"

namespace vapres::flow {
namespace {

TEST(Explorer, PrototypeGoalRecoversPrototypeScalePoint) {
  // The prototype's goal: host the 8-tap FIR (620 slices) in 2 PRRs with
  // 1 IOM on the VLX25 — the explorer's best point should use PRRs just
  // big enough for the FIR, like the paper's 640-slice PRRs.
  const auto lib = hwmodule::ModuleLibrary::standard();
  DesignSpaceExplorer explorer(lib);
  ExplorationGoal goal;
  goal.device = fabric::DeviceGeometry::xc4vlx25();
  goal.required_modules = {"fir8_lowpass", "ma4"};
  goal.num_prrs = 2;
  goal.num_ioms = 1;
  goal.min_lanes = 2;
  goal.max_lanes = 2;

  const auto result = explorer.explore(goal);
  ASSERT_TRUE(result.feasible());
  const Candidate& best = result.best();
  // Smallest PRR hosting 620 slices at 16 CLB height: 16x10 = 640.
  EXPECT_EQ(best.params.rsbs[0].prr_height_clbs, 16);
  EXPECT_EQ(best.params.rsbs[0].prr_width_clbs, 10);
  EXPECT_NEAR(best.reconfig_ms, 71.94, 0.8);
  EXPECT_GT(best.static_slices, 9000);
}

TEST(Explorer, BestPointConstructsAWorkingSystem) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  DesignSpaceExplorer explorer(lib);
  ExplorationGoal goal;
  goal.required_modules = {"gain_x2"};
  goal.num_prrs = 2;
  const auto result = explorer.explore(goal);
  ASSERT_TRUE(result.feasible());
  core::VapresSystem sys(result.best().params);
  EXPECT_EQ(sys.rsb().num_prrs(), 2);
  EXPECT_GE(sys.rsb().prr(0).capacity().slices,
            lib.info("gain_x2").resources.slices);
}

TEST(Explorer, CandidatesSortedByTotalSlices) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  DesignSpaceExplorer explorer(lib);
  ExplorationGoal goal;
  goal.required_modules = {"passthrough"};
  goal.num_prrs = 1;
  const auto result = explorer.explore(goal);
  ASSERT_GT(result.candidates.size(), 1u);
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_LE(result.candidates[i - 1].total_slices(),
              result.candidates[i].total_slices());
  }
}

TEST(Explorer, ImpossibleGoalsRejectedWithReasons) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  DesignSpaceExplorer explorer(lib);

  // Too many PRRs for the device: every point rejected, reasons given.
  ExplorationGoal goal;
  goal.required_modules = {"fir16_sharp"};  // 1200 slices
  goal.num_prrs = 12;
  const auto result = explorer.explore(goal);
  EXPECT_FALSE(result.feasible());
  EXPECT_FALSE(result.rejections.empty());
  EXPECT_THROW(result.best(), ModelError);
}

TEST(Explorer, LargeModuleForcesMultiRegionPrrs) {
  // On the VLX25 a clock-region half is 14 CLBs wide, so one region
  // (16x14 = 896 slices) cannot host the 1,200-slice FIR: the explorer
  // must pick a multi-region PRR.
  const auto lib = hwmodule::ModuleLibrary::standard();
  DesignSpaceExplorer explorer(lib);
  ExplorationGoal goal;
  goal.device = fabric::DeviceGeometry::xc4vlx25();
  goal.required_modules = {"fir16_sharp"};  // 1200 slices
  goal.num_prrs = 1;
  const auto result = explorer.explore(goal);
  ASSERT_TRUE(result.feasible());
  EXPECT_GE(result.best().params.rsbs[0].prr_height_clbs, 32);
  EXPECT_GE(result.best().prr_slices_total, 1200);

  // On the much wider VLX60 a single 16-CLB-tall region suffices.
  goal.device = fabric::DeviceGeometry::xc4vlx60();
  const auto wide = explorer.explore(goal);
  ASSERT_TRUE(wide.feasible());
  EXPECT_EQ(wide.best().params.rsbs[0].prr_height_clbs, 16);
}

TEST(Explorer, ValidatesGoal) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  DesignSpaceExplorer explorer(lib);
  ExplorationGoal goal;
  EXPECT_THROW(explorer.explore(goal), ModelError);  // no modules
  goal.required_modules = {"no_such_module"};
  EXPECT_THROW(explorer.explore(goal), ModelError);
  goal.required_modules = {"passthrough"};
  goal.min_lanes = 3;
  goal.max_lanes = 1;
  EXPECT_THROW(explorer.explore(goal), ModelError);
}

TEST(Explorer, MoreLanesCostMoreSlices) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  DesignSpaceExplorer explorer(lib);
  ExplorationGoal goal;
  goal.required_modules = {"passthrough"};
  goal.num_prrs = 2;
  goal.min_lanes = 1;
  goal.max_lanes = 4;
  const auto result = explorer.explore(goal);
  ASSERT_TRUE(result.feasible());
  // The cheapest candidate uses the fewest lanes.
  EXPECT_EQ(result.best().params.rsbs[0].kr, 1);
}

}  // namespace
}  // namespace vapres::flow
