// Activity-driven simulation kernel (ctest label: simkernel).
//
// Two halves:
//   1. Kernel unit tests — quiescence/wake mechanics, analytic
//      fast-forward bookkeeping, mid-tick detach (regression), and the
//      inclusive run_until deadline.
//   2. Lockstep differential tests — seeded random full-system scenarios
//      run twice, once on the activity-driven kernel and once on the
//      exhaustive tick-everything reference (set_activity_driven(false)),
//      asserting bit-identical cycle counts, stream outputs, and
//      processor accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "comm/module_interface.hpp"
#include "core/stats.hpp"
#include "sched/scheduler.hpp"
#include "sim/fault.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace vapres {
namespace {

using sim::Clocked;
using sim::ClockDomain;
using sim::Cycles;
using sim::Simulator;

// ------------------------------------------------------------ unit rigs

/// Counter with a scriptable quiescence report.
class Idler final : public Clocked {
 public:
  int evals = 0;
  int commits = 0;
  bool idle = false;  ///< quiescent() report
  void eval() override { ++evals; }
  void commit() override { ++commits; }
  bool quiescent() const override { return idle; }
};

/// Commits `n` cycles of work, then reports quiescent.
class FiniteWorker final : public Clocked {
 public:
  explicit FiniteWorker(int n) : remaining_(n) {}
  int commits = 0;
  void eval() override {}
  void commit() override {
    ++commits;
    if (remaining_ > 0) --remaining_;
  }
  bool quiescent() const override { return remaining_ == 0; }

 private:
  int remaining_;
};

// -------------------------------------------------- detach during tick
// Regression: ClockDomain::detach used to erase from the component vector
// the tick loop was iterating, invalidating the loop's view (skipped or
// double-delivered neighbours, potential OOB). A module evicted during
// its own commit — exactly what ModuleSwitcher does — hit this.

class Evictor final : public Clocked {
 public:
  Evictor(ClockDomain& d, std::vector<Clocked*> victims)
      : domain_(d), victims_(std::move(victims)) {}
  int commits = 0;
  void eval() override {}
  void commit() override {
    ++commits;
    for (Clocked* v : victims_) domain_.detach(v);
    victims_.clear();
  }

 private:
  ClockDomain& domain_;
  std::vector<Clocked*> victims_;
};

TEST(DetachDuringTick, EvictingNeighborsMidCommitIsSafe) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  Idler before;   // earlier slot than the evictor
  Idler after;    // later slot: must not receive this tick's commit
  Evictor evictor(d, {&before, &after});
  d.attach(&before);
  d.attach(&evictor);
  d.attach(&after);

  sim.run_cycles(d, 1);
  // `before` was visited before the evictor ran; `after` was not.
  EXPECT_EQ(before.commits, 1);
  EXPECT_EQ(evictor.commits, 1);
  EXPECT_EQ(after.commits, 0);

  sim.run_cycles(d, 5);
  EXPECT_EQ(before.commits, 1);  // detached: no further edges
  EXPECT_EQ(after.commits, 0);
  EXPECT_EQ(evictor.commits, 6);
}

class SelfEvictor final : public Clocked {
 public:
  explicit SelfEvictor(ClockDomain& d) : domain_(d) {}
  int commits = 0;
  void eval() override {}
  void commit() override {
    ++commits;
    domain_.detach(this);
  }

 private:
  ClockDomain& domain_;
};

TEST(DetachDuringTick, SelfDetachMidCommitIsSafe) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  Idler other;
  SelfEvictor self(d);
  d.attach(&self);
  d.attach(&other);
  sim.run_cycles(d, 3);
  EXPECT_EQ(self.commits, 1);
  EXPECT_EQ(other.commits, 3);  // later slot still got every edge
}

TEST(DetachDuringTick, ReattachAfterMidTickDetachWorks) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  SelfEvictor self(d);
  d.attach(&self);
  sim.run_cycles(d, 1);
  EXPECT_EQ(self.commits, 1);
  d.attach(&self);
  sim.run_cycles(d, 1);
  EXPECT_EQ(self.commits, 2);
}

// ------------------------------------------------------ quiescence core

TEST(Quiescence, QuiescentComponentStopsReceivingEdges) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  Idler busy;
  Idler idle;
  idle.idle = true;
  d.attach(&busy);
  d.attach(&idle);
  sim.run_cycles(d, 100);
  EXPECT_EQ(busy.commits, 100);
  // The idle component is deactivated at the first quiescence poll; it
  // receives at most one poll interval's worth of edges.
  EXPECT_LE(idle.commits, 16);
  EXPECT_EQ(d.cycle_count(), 100u);
  EXPECT_EQ(d.active_components(), 1);
  EXPECT_GT(d.kernel_stats().edges_skipped, 0u);
}

TEST(Quiescence, WakeReArmsComponent) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  Idler busy;
  Idler idle;
  idle.idle = true;
  d.attach(&busy);
  d.attach(&idle);
  sim.run_cycles(d, 100);
  const int before = idle.commits;
  idle.idle = false;
  idle.wake();
  sim.run_cycles(d, 10);
  EXPECT_EQ(idle.commits, before + 10);
}

TEST(Quiescence, FullyAsleepDomainCoastsWithExactCycleCount) {
  Simulator sim;
  auto& active = sim.create_domain("active", 100.0);
  auto& lazy = sim.create_domain("lazy", 100.0);
  Idler busy;
  FiniteWorker worker(10);
  active.attach(&busy);
  lazy.attach(&worker);
  sim.run_cycles(active, 1000);
  // The lazy domain slept after ~10 + poll-interval edges, but its cycle
  // counter was fast-forwarded analytically.
  EXPECT_EQ(lazy.cycle_count(), 1000u);
  EXPECT_TRUE(lazy.asleep());
  EXPECT_LE(worker.commits, 32);
  EXPECT_GT(lazy.kernel_stats().domain_sleeps, 0u);
}

TEST(Quiescence, RunCyclesOnAsleepDomainCoasts) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  FiniteWorker worker(5);
  d.attach(&worker);
  sim.run_cycles(d, 500);
  EXPECT_EQ(d.cycle_count(), 500u);
  EXPECT_EQ(sim.now(), d.cycles_to_ps(500));
}

TEST(Quiescence, FrequencyChangeWhileAsleepKeepsAccounting) {
  Simulator sim;
  auto& active = sim.create_domain("active", 100.0);
  auto& lazy = sim.create_domain("lazy", 100.0);
  Idler busy;
  FiniteWorker worker(4);
  active.attach(&busy);
  lazy.attach(&worker);
  sim.run_cycles(active, 500);
  EXPECT_EQ(lazy.cycle_count(), 500u);
  lazy.set_frequency_mhz(50.0);  // retune while fully asleep
  sim.run_cycles(active, 500);
  EXPECT_EQ(lazy.cycle_count(), 500u + 250u);
}

TEST(Quiescence, GatingWhileAsleepSuspendsCycleCredit) {
  Simulator sim;
  auto& active = sim.create_domain("active", 100.0);
  auto& lazy = sim.create_domain("lazy", 100.0);
  Idler busy;
  FiniteWorker worker(4);
  active.attach(&busy);
  lazy.attach(&worker);
  sim.run_cycles(active, 100);
  lazy.set_enabled(false);
  sim.run_cycles(active, 100);
  EXPECT_EQ(lazy.cycle_count(), 100u);  // gated: no credit
  lazy.set_enabled(true);
  sim.run_cycles(active, 100);
  EXPECT_EQ(lazy.cycle_count(), 200u);
}

TEST(Quiescence, ExhaustiveModeDeliversEveryEdge) {
  Simulator sim;
  sim.set_activity_driven(false);
  auto& d = sim.create_domain("clk", 100.0);
  Idler idle;
  idle.idle = true;
  d.attach(&idle);
  sim.run_cycles(d, 50);
  EXPECT_EQ(idle.commits, 50);
  EXPECT_EQ(sim.kernel_stats().edges_skipped, 0u);
}

TEST(Quiescence, FifoWakeTargetReArmsSleepingReader) {
  // A ConsumerInterface with an idle input sleeps; an external push into
  // its FIFO (changing the feedback-full threshold state) wakes it.
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  comm::ConsumerInterface cons("cons", 8);
  cons.set_write_enable(true);
  d.attach(&cons);
  sim.run_cycles(d, 64);
  EXPECT_TRUE(d.asleep());
  // Fill past the backpressure threshold from outside the domain.
  for (int i = 0; i < 7; ++i) cons.fifo().push(static_cast<comm::Word>(i));
  EXPECT_FALSE(d.asleep());
  sim.run_cycles(d, 16);
  EXPECT_TRUE(*cons.full_feedback_signal());
  d.detach(&cons);
}

// ------------------------------------------------- run_until / run_for

TEST(RunUntil, DeadlineIsInclusive) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);  // first edge at 10000 ps
  Idler c;
  d.attach(&c);
  // The only edge inside the window lands exactly on the deadline.
  EXPECT_TRUE(sim.run_until([&] { return c.commits >= 1; }, 10000));
  EXPECT_EQ(sim.now(), 10000u);
}

TEST(RunUntil, EventExactlyAtDeadlineRuns) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(5000, [&] { fired = true; });
  EXPECT_TRUE(sim.run_until([&] { return fired; }, 5000));
}

TEST(RunUntil, ChecksPredicateAfterCoastingToDeadline) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  FiniteWorker worker(3);
  d.attach(&worker);
  // The domain sleeps long before the deadline; the coast must still
  // credit cycles and evaluate the predicate at the deadline.
  EXPECT_TRUE(sim.run_until([&] { return d.cycle_count() >= 100; },
                            d.cycles_to_ps(100)));
  EXPECT_EQ(sim.now(), d.cycles_to_ps(100));
}

TEST(RunUntil, NeverOvershootsDeadline) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  Idler c;
  d.attach(&c);
  EXPECT_FALSE(sim.run_until([] { return false; }, 35000));
  EXPECT_EQ(sim.now(), 35000u);
}

TEST(RunFor, IdleSystemStillAdvancesToDeadline) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  FiniteWorker worker(2);
  d.attach(&worker);
  sim.run_for(123456);
  EXPECT_EQ(sim.now(), 123456u);
  EXPECT_EQ(d.cycle_count(), 12u);  // edges at 10000..120000
}

// ------------------------------------------------- lockstep scenarios
//
// Each scenario is a deterministic function of (seed); it is run once on
// each kernel and the two digests must match bit-for-bit. The digest
// covers stream payloads, every domain's cycle counter, simulated time,
// and MicroBlaze accounting — everything except the kernel's own
// edge-delivery counters (which by design differ).

core::SystemParams small_params() {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;  // small PRRs keep reconfiguration fast
  return p;
}

std::string digest_of(core::VapresSystem& sys) {
  std::ostringstream os;
  os << "now=" << sys.sim().now() << "\n";
  for (const auto& d : sys.sim().domains()) {
    os << "domain " << d->name() << " cycles=" << d->cycle_count()
       << " freq=" << d->frequency_mhz() << " en=" << d->enabled() << "\n";
  }
  core::Rsb& rsb = sys.rsb();
  for (int i = 0; i < rsb.num_ioms(); ++i) {
    core::Iom& iom = rsb.iom(i);
    for (int c = 0; c < iom.num_consumers(); ++c) {
      os << "iom" << i << ".sink" << c << " eos=" << iom.eos_seen(c)
         << " words=";
      for (comm::Word w : iom.received(c)) os << w << ",";
      os << "\n";
    }
    for (int c = 0; c < iom.num_producers(); ++c) {
      os << "iom" << i << ".src" << c << " emitted=" << iom.words_emitted(c)
         << " stalls=" << iom.source_stall_cycles(c) << "\n";
    }
  }
  const core::SystemStats stats = core::collect_stats(sys);
  os << "mb_busy=" << stats.mb_busy_cycles << " dcr=" << stats.dcr_accesses
     << " icap_bytes=" << stats.icap_bytes << " prs=" << stats.reconfigurations
     << " discarded=" << stats.total_discarded() << "\n";
  for (const core::SiteStats& s : stats.sites) {
    os << "site " << s.name << " in=" << s.words_in << " out=" << s.words_out
       << " mod=" << s.loaded_module << "\n";
  }
  return os.str();
}

/// Common scenario body: a module streaming between the IOM's source and
/// sink channels, with optional seeded perturbations (LCD retunes, clock
/// gating) applied as scheduled events, and an idle-heavy tail.
std::string run_stream_scenario(std::uint64_t seed, bool activity,
                                bool arm_faults, bool lcd_changes,
                                bool gating) {
  std::optional<sim::ScopedFaultInjection> faults;
  core::VapresSystem sys(small_params());
  sys.sim().set_activity_driven(activity);
  sys.bring_up_all_sites();

  sim::SplitMix64 rng(seed);
  const char* modules[] = {"passthrough", "gain_x2", "offset_100"};
  const std::string module = modules[rng.next_below(3)];
  sys.reconfigure_now(0, 0, module);

  core::Rsb& rsb = sys.rsb();
  EXPECT_TRUE(sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0)));
  EXPECT_TRUE(sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0)));

  const int interval = 1 + static_cast<int>(rng.next_below(8));
  const int nwords = 50 + static_cast<int>(rng.next_below(100));
  std::vector<comm::Word> data;
  for (int w = 0; w < nwords; ++w) {
    data.push_back(static_cast<comm::Word>(w * 3 + 1));
  }
  sys.rsb().iom(0).set_source_data(data, interval);

  core::Prr& prr = rsb.prr(0);
  const auto period = sys.system_clock().period_ps();
  if (lcd_changes) {
    for (int i = 0; i < 4; ++i) {
      const auto at = (100 + rng.next_below(2000)) * period;
      const int sel = static_cast<int>(rng.next_below(2));
      sys.sim().schedule_after(at, [&prr, sel] {
        prr.clock_tree().select(sel);
      });
    }
  }
  if (gating) {
    // Paired gate-off/gate-on windows so the stream eventually drains.
    for (int i = 0; i < 3; ++i) {
      const auto off = (100 + rng.next_below(1500)) * period;
      const auto on = off + (50 + rng.next_below(300)) * period;
      sys.sim().schedule_after(off, [&prr] {
        prr.clock_tree().set_enabled(false);
      });
      sys.sim().schedule_after(on, [&prr] {
        prr.clock_tree().set_enabled(true);
      });
    }
  }
  if (arm_faults) faults.emplace(seed);

  // Active phase, then a long idle tail (the quiescence-heavy part).
  sys.run_system_cycles(4000 + rng.next_below(2000));
  sys.rsb().iom(0).stop_source();
  sys.run_system_cycles(20000);
  return digest_of(sys);
}

/// Scheduler churn: submissions, admissions, stops, and resubmissions of
/// short-lived streaming apps, driven by the seed.
std::string run_scheduler_scenario(std::uint64_t seed, bool activity) {
  core::SystemParams p;
  core::RsbParams& r = p.rsbs[0];
  r.num_prrs = 4;
  r.num_ioms = 3;
  r.kr = 3;
  r.kl = 3;
  p.prr_rects = {fabric::ClbRect{0, 0, 16, 10}, fabric::ClbRect{16, 0, 16, 4},
                 fabric::ClbRect{32, 0, 16, 10},
                 fabric::ClbRect{48, 0, 16, 4}};
  core::VapresSystem sys(p);
  sys.sim().set_activity_driven(activity);
  sys.bring_up_all_sites();
  sched::ApplicationScheduler scheduler(sys);

  sim::SplitMix64 rng(seed);
  const char* modules[] = {"passthrough", "gain_x2", "offset_100"};
  std::ostringstream log;
  std::vector<int> ids;
  for (int round = 0; round < 3; ++round) {
    const int submissions = 1 + static_cast<int>(rng.next_below(2));
    for (int s = 0; s < submissions; ++s) {
      sched::AppRequest req;
      req.name = "app" + std::to_string(round) + "_" + std::to_string(s);
      const int chain = 1 + static_cast<int>(rng.next_below(2));
      for (int m = 0; m < chain; ++m) {
        req.modules.push_back(modules[rng.next_below(3)]);
      }
      req.priority = 1 + static_cast<int>(rng.next_below(3));
      req.source_interval_cycles = 2 + static_cast<int>(rng.next_below(6));
      req.source_words = 24 + rng.next_below(40);
      ids.push_back(scheduler.submit(req));
    }
    scheduler.run_admission();
    sys.run_system_cycles(2000 + rng.next_below(2000));
    // Stop a random running app, if any.
    const auto running = scheduler.running_apps();
    if (!running.empty()) {
      scheduler.stop(running[rng.next_below(running.size())]);
    }
    sys.run_system_cycles(500);
  }
  sys.run_system_cycles(8000);  // idle-heavy tail

  for (int id : ids) {
    const sched::AppRecord& app = scheduler.app(id);
    log << "app " << id << " state=" << static_cast<int>(app.state)
        << " verdict=" << static_cast<int>(app.verdict) << " words=";
    for (comm::Word w : scheduler.received_words(id)) log << w << ",";
    log << "\n";
  }
  log << digest_of(sys);
  return log.str();
}

void expect_lockstep(const std::string& label, const std::string& fast,
                     const std::string& reference) {
  EXPECT_EQ(fast, reference) << label
                             << ": activity-driven kernel diverged from the "
                                "exhaustive reference";
}

TEST(Lockstep, StreamingIdleHeavy) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_lockstep(
        "stream seed " + std::to_string(seed),
        run_stream_scenario(seed, true, false, false, false),
        run_stream_scenario(seed, false, false, false, false));
  }
}

TEST(Lockstep, FaultInjectionArmed) {
  // With the injector enabled the kernel falls back to exhaustive
  // delivery (every commit is an RNG draw opportunity); the digests must
  // still match the reference exactly.
  for (std::uint64_t seed = 6; seed <= 10; ++seed) {
    expect_lockstep("fault seed " + std::to_string(seed),
                    run_stream_scenario(seed, true, true, false, false),
                    run_stream_scenario(seed, false, true, false, false));
  }
}

TEST(Lockstep, LcdFrequencyChanges) {
  for (std::uint64_t seed = 11; seed <= 15; ++seed) {
    expect_lockstep("lcd seed " + std::to_string(seed),
                    run_stream_scenario(seed, true, false, true, false),
                    run_stream_scenario(seed, false, false, true, false));
  }
}

TEST(Lockstep, ClockGating) {
  for (std::uint64_t seed = 16; seed <= 20; ++seed) {
    expect_lockstep("gating seed " + std::to_string(seed),
                    run_stream_scenario(seed, true, false, false, true),
                    run_stream_scenario(seed, false, false, false, true));
  }
}

TEST(Lockstep, EverythingAtOnce) {
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    expect_lockstep("combined seed " + std::to_string(seed),
                    run_stream_scenario(seed, true, true, true, true),
                    run_stream_scenario(seed, false, true, true, true));
  }
}

TEST(Lockstep, SchedulerChurn) {
  for (std::uint64_t seed = 24; seed <= 26; ++seed) {
    expect_lockstep("sched seed " + std::to_string(seed),
                    run_scheduler_scenario(seed, true),
                    run_scheduler_scenario(seed, false));
  }
}

TEST(Lockstep, ActivityKernelSkipsEdgesOnIdleTail) {
  // Sanity that the lockstep scenarios actually exercise the fast path:
  // the activity-driven run of a stream scenario must skip a large share
  // of its component edges.
  core::VapresSystem sys(small_params());
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  core::Rsb& rsb = sys.rsb();
  ASSERT_TRUE(sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0)));
  ASSERT_TRUE(sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0)));
  sys.rsb().iom(0).set_source_data({1, 2, 3, 4}, 4);
  sys.run_system_cycles(30000);
  const sim::KernelStats ks = sys.sim().kernel_stats();
  EXPECT_GT(ks.edges_skipped, ks.edges_delivered);
  EXPECT_GT(ks.domain_sleeps, 0u);
}

}  // namespace
}  // namespace vapres
