// Tests for the VCD waveform writer and the telemetry snapshot.
#include <gtest/gtest.h>

#include <sstream>

#include "core/stats.hpp"
#include "sim/vcd.hpp"

namespace vapres {
namespace {

TEST(Vcd, HeaderDeclaresSignals) {
  std::ostringstream out;
  sim::VcdWriter vcd(out);
  bool flag = false;
  std::uint32_t word = 0;
  vcd.add_bool("flag", &flag);
  vcd.add_word("data", &word);
  vcd.write_header();
  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale 1 ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! flag $end"), std::string::npos);
  EXPECT_NE(text.find("$var reg 32 \" data $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, EmitsOnlyChanges) {
  std::ostringstream out;
  sim::VcdWriter vcd(out);
  bool flag = false;
  vcd.add_bool("flag", &flag);
  vcd.sample(0);      // initial dump: 0
  vcd.sample(100);    // unchanged: nothing
  flag = true;
  vcd.sample(200);    // change: 1
  const std::string text = out.str();
  EXPECT_NE(text.find("#0\n0!"), std::string::npos);
  EXPECT_EQ(text.find("#100"), std::string::npos);
  EXPECT_NE(text.find("#200\n1!"), std::string::npos);
}

TEST(Vcd, WordSignalsDumpBinary) {
  std::ostringstream out;
  sim::VcdWriter vcd(out);
  std::uint32_t word = 5;
  vcd.add_word("w", &word);
  vcd.sample(10);
  EXPECT_NE(out.str().find(
                "b00000000000000000000000000000101 !"),
            std::string::npos);
}

TEST(Vcd, ProbesAndTimescale) {
  std::ostringstream out;
  sim::VcdWriter vcd(out, /*timescale_ps=*/1000);
  int counter = 7;
  vcd.add_probe("occupancy", [&counter] {
    return static_cast<std::uint32_t>(counter);
  });
  vcd.sample(10000);  // 10 units at 1 ns timescale
  EXPECT_NE(out.str().find("#10"), std::string::npos);
  EXPECT_EQ(vcd.signal_count(), 1u);
}

TEST(Vcd, RejectsOutOfOrderSamples) {
  std::ostringstream out;
  sim::VcdWriter vcd(out);
  bool flag = false;
  vcd.add_bool("flag", &flag);
  vcd.sample(100);
  flag = true;
  EXPECT_THROW(vcd.sample(50), ModelError);
}

TEST(Vcd, ManySignalsGetDistinctIds) {
  std::ostringstream out;
  sim::VcdWriter vcd(out);
  std::vector<std::unique_ptr<bool>> signals;
  for (int i = 0; i < 200; ++i) {
    signals.push_back(std::make_unique<bool>(false));
    vcd.add_bool("s" + std::to_string(i), signals.back().get());
  }
  vcd.write_header();
  // Two-character codes appear past signal 93.
  EXPECT_EQ(vcd.signal_count(), 200u);
  EXPECT_NE(out.str().find("s199"), std::string::npos);
}

// ------------------------------------------------------------------- stats

TEST(Stats, SnapshotCoversStreamingRun) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  core::VapresSystem sys(std::move(p));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  core::Rsb& rsb = sys.rsb();
  sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  sys.rsb().iom(0).set_source_data({1, 2, 3, 4, 5});
  sys.run_system_cycles(200);

  const auto stats = core::collect_stats(sys);
  EXPECT_EQ(stats.active_channels, 2u);
  EXPECT_EQ(stats.total_discarded(), 0u);
  EXPECT_EQ(stats.reconfigurations, 1);
  EXPECT_GT(stats.mb_busy_cycles, 0u);
  EXPECT_GT(stats.mb_utilization(), 0.0);
  EXPECT_LE(stats.mb_utilization(), 1.0);

  // The PRR site processed the five words in and out.
  bool found_prr = false;
  for (const auto& site : stats.sites) {
    if (site.is_prr && site.loaded_module == "passthrough") {
      found_prr = true;
      EXPECT_EQ(site.words_in, 5u);
      EXPECT_EQ(site.words_out, 5u);
    }
  }
  EXPECT_TRUE(found_prr);

  const std::string report = stats.to_string();
  EXPECT_NE(report.find("passthrough"), std::string::npos);
  EXPECT_NE(report.find("active channels: 2"), std::string::npos);
}

// Round-trip guard against report drift: every counter family the model
// keeps must survive into to_string(). Distinctive values catch a field
// silently dropped from (or mislabeled in) the printer.
TEST(Stats, ToStringPrintsEveryField) {
  core::SystemStats s;
  s.system_cycles = 424242;
  s.mb_busy_cycles = 131313;
  s.dcr_accesses = 7770;
  s.icap_bytes = 999111;
  s.reconfigurations = 17;
  s.active_channels = 5;
  s.kernel = {1111, 2222, 33, 44, 5555, 6666};
  s.domains.push_back({"dom_a", 125.0, 7777, 8181, 9191, 3});
  s.sites.push_back(
      {"prr_x", true, "fir4_smooth", 4, 1212, 3434, 5656, 787878});
  s.fifos.push_back({"fifo_y", 2468, 1357, 9, 16, 11, 12});
  s.bitcache = {21, 22, 23, 24, 2525, 26, 27, 28, 291, 292, 293, 294};
  s.robustness = {41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51};

  const std::string r = s.to_string();
  for (const char* needle :
       {// header + processor + ICAP + channels
        "cycle 424242", "busy: 131313", "DCR accesses: 7770",
        "17 reconfigurations", "999111 bytes", "active channels: 5",
        // kernel aggregate incl. active/quiescent cycle split
        "1111 edges delivered", "2222 skipped", "33 domain sleeps",
        "44 wakes", "5555 active", "6666 quiescent",
        // per-domain row
        "domain dom_a @ 125", "7777 cycles", "8181 active",
        "9191 quiescent", "3 sleeps",
        // site row incl. discards and producer stalls
        "prr_x [fir4_smooth, 4 PRs]", "in 1212", "out 3434",
        "stalled 787878", "DISCARDED 5656",
        // fifo row incl. popped and fault injections
        "fifo fifo_y: 2468 pushed, 1357 popped", "watermark 9/16",
        "fault-dropped 11", "fault-dup 12",
        // bitstream cache + prefetch
        "21 hits / 22 misses", "24 evictions", "2525 bytes", "26 staged",
        "27 replaced", "28 invalidated", "291 issued", "292 completed",
        "294 useful", "293 cancelled", "misses: 23",
        // robustness
        "41 faults injected", "42 corrupted", "43 timed out",
        "44 retries", "45 source fallbacks", "46 permanent failures",
        "47 rollbacks", "48 repairs", "49 dropped", "50 duplicated",
        "stuck ports now: 51"}) {
    EXPECT_NE(r.find(needle), std::string::npos)
        << "report lost \"" << needle << "\":\n" << r;
  }
}

// Same guard for the scheduler ledger, including the per-app
// submit/launch/stop timestamps.
TEST(Stats, SchedulerAccountingPrintsEveryField) {
  core::SchedulerAccounting acc;
  acc.submitted = 61;
  acc.admitted = 62;
  acc.admitted_after_defrag = 63;
  acc.admitted_after_preempt = 64;
  acc.rejected = 65;
  acc.preemptions = 66;
  acc.defrag_migrations = 67;
  acc.migration_rollbacks = 68;
  acc.fabric_utilization = 0.71;
  core::AppAccounting a;
  a.app_id = 9;
  a.name = "crc-9";
  a.priority = 2;
  a.state = "running";
  a.verdict = "admitted";
  a.submitted_at = 1001;
  a.launched_at = 1002;
  a.stopped_at = 1003;
  a.admission_mb_cycles = 1004;
  a.words_in = 1005;
  a.words_out = 1006;
  a.migrations = 7;
  a.module_slices = 8;
  acc.apps.push_back(a);

  const std::string r = acc.to_string();
  for (const char* needle :
       {"submitted 61", "admitted 62", "defrag 63", "preempt 64",
        "rejected 65", "preemptions 66", "migrations 67",
        "+68 rolled back", "utilization 71%",
        "#9 crc-9 prio 2 [running/admitted]", "slices 8",
        "words 1005->1006", "migrations 7", "admission 1004 MB cycles",
        "t=1001/1002/1003"}) {
    EXPECT_NE(r.find(needle), std::string::npos)
        << "ledger lost \"" << needle << "\":\n" << r;
  }
}

TEST(Stats, VcdProbesIntegrateWithSystem) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  core::VapresSystem sys(std::move(p));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  core::Rsb& rsb = sys.rsb();
  sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));

  std::ostringstream out;
  sim::VcdWriter vcd(out);
  vcd.add_probe("prr0_words_received", [&rsb] {
    return static_cast<std::uint32_t>(
        rsb.prr(0).consumer(0).words_received());
  });
  sys.rsb().iom(0).set_source_data({1, 2, 3});
  for (int i = 0; i < 50; ++i) {
    sys.run_system_cycles(1);
    vcd.sample(sys.sim().now());
  }
  // The counter moved at least once -> at least two timestamped dumps.
  const std::string text = out.str();
  const auto first = text.find('#');
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(text.find('#', first + 1), std::string::npos);
}

}  // namespace
}  // namespace vapres
