// Tests for the VCD waveform writer and the telemetry snapshot.
#include <gtest/gtest.h>

#include <sstream>

#include "core/stats.hpp"
#include "sim/vcd.hpp"

namespace vapres {
namespace {

TEST(Vcd, HeaderDeclaresSignals) {
  std::ostringstream out;
  sim::VcdWriter vcd(out);
  bool flag = false;
  std::uint32_t word = 0;
  vcd.add_bool("flag", &flag);
  vcd.add_word("data", &word);
  vcd.write_header();
  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale 1 ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! flag $end"), std::string::npos);
  EXPECT_NE(text.find("$var reg 32 \" data $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, EmitsOnlyChanges) {
  std::ostringstream out;
  sim::VcdWriter vcd(out);
  bool flag = false;
  vcd.add_bool("flag", &flag);
  vcd.sample(0);      // initial dump: 0
  vcd.sample(100);    // unchanged: nothing
  flag = true;
  vcd.sample(200);    // change: 1
  const std::string text = out.str();
  EXPECT_NE(text.find("#0\n0!"), std::string::npos);
  EXPECT_EQ(text.find("#100"), std::string::npos);
  EXPECT_NE(text.find("#200\n1!"), std::string::npos);
}

TEST(Vcd, WordSignalsDumpBinary) {
  std::ostringstream out;
  sim::VcdWriter vcd(out);
  std::uint32_t word = 5;
  vcd.add_word("w", &word);
  vcd.sample(10);
  EXPECT_NE(out.str().find(
                "b00000000000000000000000000000101 !"),
            std::string::npos);
}

TEST(Vcd, ProbesAndTimescale) {
  std::ostringstream out;
  sim::VcdWriter vcd(out, /*timescale_ps=*/1000);
  int counter = 7;
  vcd.add_probe("occupancy", [&counter] {
    return static_cast<std::uint32_t>(counter);
  });
  vcd.sample(10000);  // 10 units at 1 ns timescale
  EXPECT_NE(out.str().find("#10"), std::string::npos);
  EXPECT_EQ(vcd.signal_count(), 1u);
}

TEST(Vcd, RejectsOutOfOrderSamples) {
  std::ostringstream out;
  sim::VcdWriter vcd(out);
  bool flag = false;
  vcd.add_bool("flag", &flag);
  vcd.sample(100);
  flag = true;
  EXPECT_THROW(vcd.sample(50), ModelError);
}

TEST(Vcd, ManySignalsGetDistinctIds) {
  std::ostringstream out;
  sim::VcdWriter vcd(out);
  std::vector<std::unique_ptr<bool>> signals;
  for (int i = 0; i < 200; ++i) {
    signals.push_back(std::make_unique<bool>(false));
    vcd.add_bool("s" + std::to_string(i), signals.back().get());
  }
  vcd.write_header();
  // Two-character codes appear past signal 93.
  EXPECT_EQ(vcd.signal_count(), 200u);
  EXPECT_NE(out.str().find("s199"), std::string::npos);
}

// ------------------------------------------------------------------- stats

TEST(Stats, SnapshotCoversStreamingRun) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  core::VapresSystem sys(std::move(p));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  core::Rsb& rsb = sys.rsb();
  sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  sys.rsb().iom(0).set_source_data({1, 2, 3, 4, 5});
  sys.run_system_cycles(200);

  const auto stats = core::collect_stats(sys);
  EXPECT_EQ(stats.active_channels, 2u);
  EXPECT_EQ(stats.total_discarded(), 0u);
  EXPECT_EQ(stats.reconfigurations, 1);
  EXPECT_GT(stats.mb_busy_cycles, 0u);
  EXPECT_GT(stats.mb_utilization(), 0.0);
  EXPECT_LE(stats.mb_utilization(), 1.0);

  // The PRR site processed the five words in and out.
  bool found_prr = false;
  for (const auto& site : stats.sites) {
    if (site.is_prr && site.loaded_module == "passthrough") {
      found_prr = true;
      EXPECT_EQ(site.words_in, 5u);
      EXPECT_EQ(site.words_out, 5u);
    }
  }
  EXPECT_TRUE(found_prr);

  const std::string report = stats.to_string();
  EXPECT_NE(report.find("passthrough"), std::string::npos);
  EXPECT_NE(report.find("active channels: 2"), std::string::npos);
}

TEST(Stats, VcdProbesIntegrateWithSystem) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  core::VapresSystem sys(std::move(p));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  core::Rsb& rsb = sys.rsb();
  sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));

  std::ostringstream out;
  sim::VcdWriter vcd(out);
  vcd.add_probe("prr0_words_received", [&rsb] {
    return static_cast<std::uint32_t>(
        rsb.prr(0).consumer(0).words_received());
  });
  sys.rsb().iom(0).set_source_data({1, 2, 3});
  for (int i = 0; i < 50; ++i) {
    sys.run_system_cycles(1);
    vcd.sample(sys.sim().now());
  }
  // The counter moved at least once -> at least two timestamped dumps.
  const std::string text = out.str();
  const auto first = text.find('#');
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(text.find('#', first + 1), std::string::npos);
}

}  // namespace
}  // namespace vapres
