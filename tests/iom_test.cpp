// IOM tests: multi-channel sources/sinks (Figure 7's ki/ko applied to
// I/O modules), per-channel statistics, and in-band EOS detection.
#include <gtest/gtest.h>

#include <optional>

#include "core/assembler.hpp"
#include "core/system.hpp"

namespace vapres::core {
namespace {

using comm::Word;

SystemParams dual_channel_params() {
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].num_prrs = 2;
  p.rsbs[0].ki = 2;
  p.rsbs[0].ko = 2;
  p.rsbs[0].prr_width_clbs = 2;
  return p;
}

TEST(Iom, ExposesAllChannels) {
  VapresSystem sys(dual_channel_params());
  Iom& iom = sys.rsb().iom(0);
  EXPECT_EQ(iom.num_producers(), 2);
  EXPECT_EQ(iom.num_consumers(), 2);
  EXPECT_NO_THROW(iom.producer(1));
  EXPECT_NO_THROW(iom.consumer(1));
  EXPECT_THROW(iom.producer(2), ModelError);
  EXPECT_THROW(iom.consumer(-1), ModelError);
}

TEST(Iom, TwoIndependentStreamsThroughTwoChannels) {
  // IOM channel 0 -> PRR0 -> IOM channel 0; channel 1 -> PRR1 -> channel 1.
  VapresSystem sys(dual_channel_params());
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "gain_x2");
  sys.reconfigure_now(0, 1, "offset_100");
  Rsb& rsb = sys.rsb();
  ASSERT_TRUE(sys.connect(0, rsb.iom_producer(0, 0), rsb.prr_consumer(0)));
  ASSERT_TRUE(sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0, 0)));
  ASSERT_TRUE(sys.connect(0, rsb.iom_producer(0, 1), rsb.prr_consumer(1)));
  ASSERT_TRUE(sys.connect(0, rsb.prr_producer(1), rsb.iom_consumer(0, 1)));

  sys.rsb().iom(0).set_source_data({1, 2, 3}, 1, /*channel=*/0);
  sys.rsb().iom(0).set_source_data({10, 20, 30}, 1, /*channel=*/1);
  sys.run_system_cycles(300);

  EXPECT_EQ(sys.rsb().iom(0).received(0), (std::vector<Word>{2, 4, 6}));
  EXPECT_EQ(sys.rsb().iom(0).received(1),
            (std::vector<Word>{110, 120, 130}));
  EXPECT_EQ(sys.rsb().iom(0).words_emitted(0), 3u);
  EXPECT_EQ(sys.rsb().iom(0).words_emitted(1), 3u);
}

TEST(Iom, PerChannelStatsAreIndependent) {
  VapresSystem sys(dual_channel_params());
  sys.bring_up_all_sites();
  Iom& iom = sys.rsb().iom(0);
  // No channel established: channel-0 source fills its interface FIFO
  // (512) and then stalls; channel 1 idle.
  int n = 0;
  iom.set_source_generator(
      [&n]() -> std::optional<Word> { return static_cast<Word>(n++); }, 1,
      0);
  sys.run_system_cycles(600);
  EXPECT_EQ(iom.words_emitted(0), 512u);
  EXPECT_GT(iom.source_stall_cycles(0), 0u);
  EXPECT_EQ(iom.words_emitted(1), 0u);
  EXPECT_EQ(iom.source_stall_cycles(1), 0u);
}

TEST(Iom, EosCountedPerChannel) {
  VapresSystem sys(dual_channel_params());
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  Rsb& rsb = sys.rsb();
  ASSERT_TRUE(sys.connect(0, rsb.iom_producer(0, 0), rsb.prr_consumer(0)));
  ASSERT_TRUE(sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0, 1)));
  // Send a data word and the EOS pattern through channel 0 -> sink ch 1.
  sys.rsb().iom(0).set_source_data({7, comm::kEndOfStreamWord, 8}, 1, 0);
  sys.run_system_cycles(100);
  EXPECT_EQ(sys.rsb().iom(0).received(1), (std::vector<Word>{7, 8}));
  EXPECT_EQ(sys.rsb().iom(0).eos_seen(1), 1u);
  EXPECT_EQ(sys.rsb().iom(0).eos_seen(0), 0u);
  // The MicroBlaze was notified on the r-link.
  EXPECT_EQ(sys.rsb().iom(0).fsl_to_mb().read(), kIomEosDetected);
}

TEST(Iom, StopSourceHaltsEmission) {
  VapresSystem sys(dual_channel_params());
  sys.bring_up_all_sites();
  Iom& iom = sys.rsb().iom(0);
  int n = 0;
  iom.set_source_generator(
      [&n]() -> std::optional<Word> { return static_cast<Word>(n++); }, 4,
      0);
  sys.run_system_cycles(40);
  EXPECT_TRUE(iom.source_active(0));
  const auto emitted = iom.words_emitted(0);
  iom.stop_source(0);
  EXPECT_FALSE(iom.source_active(0));
  sys.run_system_cycles(40);
  EXPECT_EQ(iom.words_emitted(0), emitted);
}

TEST(Iom, KpnEdgeSpecCanAddressIomChannels) {
  // The assembler resolves "iom:0" with from_port/to_port channels.
  VapresSystem sys(dual_channel_params());
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);
  KpnAppSpec app;
  app.name = "dual_io";
  app.nodes = {{"a", "gain_x2"}, {"b", "offset_100"}};
  app.edges = {{"iom:0", "a", 0, 0},
               {"iom:0", "b", 1, 0},
               {"a", "iom:0", 0, 0},
               {"b", "iom:0", 0, 1}};
  assembler.assemble(app);
  sys.rsb().iom(0).set_source_data({5}, 1, 0);
  sys.rsb().iom(0).set_source_data({6}, 1, 1);
  sys.run_system_cycles(200);
  EXPECT_EQ(sys.rsb().iom(0).received(0), (std::vector<Word>{10}));
  EXPECT_EQ(sys.rsb().iom(0).received(1), (std::vector<Word>{106}));
}

}  // namespace
}  // namespace vapres::core
