// Fault-injection suite: the injector's determinism contract, a
// parameterized fault matrix over the ICAP sites (retry / source
// fallback / permanent failure), the FIFO and switch-box sites, the
// scrubber's repairs, and bit-for-bit replay of a whole faulty run from
// its seed. Recovery counters must match injected counts exactly — the
// scoreboard is the evidence that every injected fault was handled.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "comm/fifo.hpp"
#include "core/scrubber.hpp"
#include "core/stats.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "sim/fault.hpp"
#include "test_util.hpp"

namespace vapres {
namespace {

using sim::FaultSite;
using sim::RecoveryEvent;

// ------------------------------------------------------- injector unit

TEST(FaultInjector, ArmedWindowFiresExactlyOnPlannedOpportunities) {
  sim::ScopedFaultInjection faults(1u);
  faults->arm(FaultSite::kFifoDropWord, /*nth=*/2, /*count=*/3);
  std::string pattern;
  for (int i = 0; i < 8; ++i) {
    pattern += faults->should_fire(FaultSite::kFifoDropWord) ? '1' : '0';
  }
  EXPECT_EQ(pattern, "00111000");
  EXPECT_EQ(faults->injected(FaultSite::kFifoDropWord), 3u);
  EXPECT_EQ(faults->opportunities(FaultSite::kFifoDropWord), 8u);
}

TEST(FaultInjector, SameSeedSameProbabilisticSequence) {
  const auto draw = [](std::uint64_t seed) {
    sim::ScopedFaultInjection faults(seed);
    faults->set_probability(FaultSite::kConfigFrameUpset, 0.3);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += faults->should_fire(FaultSite::kConfigFrameUpset) ? '1' : '0';
    }
    return pattern;
  };
  EXPECT_EQ(draw(42), draw(42));
  EXPECT_NE(draw(42), draw(43));  // SplitMix64: distinct seeds diverge
}

TEST(FaultInjector, DisabledHooksNeverFireAndEnableResets) {
  auto& faults = sim::FaultInjector::instance();
  ASSERT_FALSE(faults.enabled());
  EXPECT_FALSE(faults.should_fire(FaultSite::kFifoDropWord));
  {
    sim::ScopedFaultInjection scoped(9u);
    scoped->arm(FaultSite::kFifoDropWord, 0);
    EXPECT_TRUE(scoped->should_fire(FaultSite::kFifoDropWord));
    scoped->note_recovery(RecoveryEvent::kScrubRepair);
  }
  // Counters survive disable() for post-run inspection ...
  EXPECT_FALSE(faults.enabled());
  EXPECT_EQ(faults.total_injected(), 1u);
  EXPECT_EQ(faults.total_recoveries(), 1u);
  // ... and the next enable() starts from zero (replay contract).
  sim::ScopedFaultInjection scoped(9u);
  EXPECT_EQ(faults.total_injected(), 0u);
  EXPECT_EQ(faults.total_recoveries(), 0u);
  EXPECT_EQ(faults.opportunities(FaultSite::kFifoDropWord), 0u);
}

TEST(FaultInjector, ReportListsNonzeroCountersStably) {
  sim::ScopedFaultInjection faults(3u);
  faults->arm(FaultSite::kIcapTransferTimeout, 0);
  faults->should_fire(FaultSite::kIcapTransferTimeout);
  faults->note_recovery(RecoveryEvent::kIcapRetry);
  const std::string report = faults->report();
  EXPECT_NE(report.find("icap_transfer_timeout"), std::string::npos);
  EXPECT_NE(report.find("icap_retry"), std::string::npos);
  EXPECT_EQ(report, faults->report());
}

// -------------------------------------------------- ICAP fault matrix

// One row of the matrix: arm `site` for the first `armed` transfer
// attempts of a PR and check the recovery machinery lands exactly where
// the policy says (default policy: 3 attempts per source, CF fallback).
struct IcapFaultCase {
  FaultSite site;
  std::uint64_t armed;
  int want_retries;
  int want_fallbacks;
};

std::string PrintCase(const ::testing::TestParamInfo<IcapFaultCase>& info) {
  return std::string(sim::fault_site_name(info.param.site)) + "_x" +
         std::to_string(info.param.armed);
}

class IcapFaultMatrix : public ::testing::TestWithParam<IcapFaultCase> {};

TEST_P(IcapFaultMatrix, RecoversAndCountersMatchInjectedCounts) {
  const IcapFaultCase c = GetParam();
  test::FaultRig rig(0xFA117u);
  rig.injector().arm(c.site, /*nth=*/0, c.armed);

  // The PR heals itself: the caller sees nothing but a longer call.
  rig.sys->reconfigure_now(0, 1, "gain_x2");
  EXPECT_EQ(rig.sys->rsb().prr(1).loaded_module(), "gain_x2");

  auto& reconfig = rig.sys->reconfig();
  EXPECT_EQ(reconfig.retries(), c.want_retries);
  EXPECT_EQ(reconfig.fallbacks(), c.want_fallbacks);
  EXPECT_EQ(reconfig.failures(), 0);

  // Scoreboard: injected counts match the armed plan, recoveries match
  // the policy's answer to them, nothing else moved.
  auto& inj = rig.injector();
  EXPECT_EQ(inj.injected(c.site), c.armed);
  EXPECT_EQ(inj.total_injected(), c.armed);
  EXPECT_EQ(inj.recoveries(RecoveryEvent::kIcapRetry),
            static_cast<std::uint64_t>(c.want_retries));
  EXPECT_EQ(inj.recoveries(RecoveryEvent::kSourceFallback),
            static_cast<std::uint64_t>(c.want_fallbacks));
  EXPECT_EQ(inj.total_recoveries(),
            static_cast<std::uint64_t>(c.want_retries + c.want_fallbacks));

  // The same numbers surface through core::stats.
  const auto stats = core::collect_stats(*rig.sys);
  EXPECT_EQ(stats.robustness.faults_injected, c.armed);
  EXPECT_EQ(stats.robustness.reconfig_retries,
            static_cast<std::uint64_t>(c.want_retries));
  EXPECT_EQ(stats.robustness.source_fallbacks,
            static_cast<std::uint64_t>(c.want_fallbacks));
  EXPECT_EQ(stats.robustness.reconfig_failures, 0u);
  if (c.site == FaultSite::kIcapBitstreamCorruption) {
    EXPECT_EQ(stats.robustness.icap_corrupted, c.armed);
  } else {
    EXPECT_EQ(stats.robustness.icap_timeouts, c.armed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IcapFaultMatrix,
    ::testing::Values(
        // 1 corrupt attempt: one retry on the SDRAM source heals it.
        IcapFaultCase{FaultSite::kIcapBitstreamCorruption, 1, 1, 0},
        // 2 corrupt attempts: two retries, still the same source.
        IcapFaultCase{FaultSite::kIcapBitstreamCorruption, 2, 2, 0},
        // 3 corrupt attempts exhaust the SDRAM source (2 retries), the
        // driver falls back to CompactFlash and succeeds first try.
        IcapFaultCase{FaultSite::kIcapBitstreamCorruption, 3, 2, 1},
        // Timeouts take the identical recovery path.
        IcapFaultCase{FaultSite::kIcapTransferTimeout, 1, 1, 0},
        IcapFaultCase{FaultSite::kIcapTransferTimeout, 3, 2, 1}),
    PrintCase);

TEST(FaultInjection, PermanentFailureIsCountedAndReportedToCaller) {
  test::FaultRig rig(77u);
  rig.sys->reconfig().set_retry_policy(
      {.max_attempts = 1, .backoff_base_cycles = 256,
       .fallback_to_cf = false});
  rig.injector().arm(FaultSite::kIcapBitstreamCorruption, 0);

  // Drive the path directly so the outcome is observable (the
  // reconfigure_now convenience throws on permanent failure instead).
  const std::string key = "gain_x2@" + rig.sys->rsb().prr(1).name();
  bool done = false;
  core::ReconfigOutcome outcome;
  rig.sys->reconfig().array2icap(key, [&](const core::ReconfigOutcome& o) {
    done = true;
    outcome = o;
  });
  ASSERT_TRUE(
      rig.sys->sim().run_until([&] { return done; }, sim::kPsPerSecond * 60));

  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.fallbacks, 0);
  EXPECT_EQ(rig.sys->reconfig().failures(), 1);
  EXPECT_EQ(rig.sys->reconfig().retries(), 0);
  EXPECT_EQ(rig.sys->rsb().prr(1).loaded_module(), "");  // not applied
  EXPECT_EQ(core::collect_stats(*rig.sys).robustness.reconfig_failures, 1u);

  // And the convenience wrapper surfaces the permanent failure loudly.
  rig.injector().arm(FaultSite::kIcapBitstreamCorruption, /*nth=*/1);
  EXPECT_THROW(rig.sys->reconfigure_now(0, 1, "gain_x2"), ModelError);
}

// ------------------------------------------------- FIFO fault sites

TEST(FaultInjection, FifoDropLosesExactlyTheArmedWords) {
  comm::Fifo fifo("faulty", 16);
  sim::ScopedFaultInjection faults(11u);
  faults->arm(FaultSite::kFifoDropWord, /*nth=*/2, /*count=*/2);
  for (comm::Word w = 0; w < 8; ++w) fifo.push(w);
  EXPECT_EQ(fifo.size(), 6);
  EXPECT_EQ(fifo.fault_dropped(), 2u);
  EXPECT_EQ(fifo.total_pushed(), 6u);  // dropped words never entered
  // Words 2 and 3 vanished; order of the survivors is preserved.
  std::vector<comm::Word> got;
  while (!fifo.empty()) got.push_back(fifo.pop());
  EXPECT_EQ(got, (std::vector<comm::Word>{0, 1, 4, 5, 6, 7}));
}

TEST(FaultInjection, FifoDuplicateDoublesExactlyTheArmedWord) {
  comm::Fifo fifo("faulty", 16);
  sim::ScopedFaultInjection faults(11u);
  faults->arm(FaultSite::kFifoDuplicateWord, /*nth=*/1);
  for (comm::Word w = 0; w < 4; ++w) fifo.push(w);
  EXPECT_EQ(fifo.size(), 5);
  EXPECT_EQ(fifo.fault_duplicated(), 1u);
  std::vector<comm::Word> got;
  while (!fifo.empty()) got.push_back(fifo.pop());
  EXPECT_EQ(got, (std::vector<comm::Word>{0, 1, 1, 2, 3}));
}

TEST(FaultInjection, FifoDuplicateRespectsCapacity) {
  comm::Fifo fifo("tight", 2);
  sim::ScopedFaultInjection faults(11u);
  faults->arm(FaultSite::kFifoDuplicateWord, /*nth=*/1, /*count=*/1);
  fifo.push(7);
  fifo.push(8);  // duplicate armed, but no room for a second copy
  EXPECT_EQ(fifo.size(), 2);
  EXPECT_EQ(fifo.fault_duplicated(), 0u);
}

// --------------------------------------- scrubber heals fabric faults

TEST(FaultInjection, ScrubberRepairsStuckSwitchBoxPort) {
  test::FaultRig rig(0x5C12Bu);
  core::ScrubberTask scrub(*rig.sys, /*period_cycles=*/500);
  scrub.start();
  // The first output-mux opportunity after enable goes stuck.
  rig.injector().arm(FaultSite::kSwitchBoxStuckPort, /*nth=*/0);

  rig.sys->run_system_cycles(50);  // fault lands on the first commit
  auto stats = core::collect_stats(*rig.sys);
  ASSERT_EQ(stats.robustness.stuck_ports, 1u);

  rig.sys->run_system_cycles(2000);  // several scrub periods
  EXPECT_GE(scrub.scans(), 1u);
  EXPECT_EQ(scrub.mux_repairs(), 1u);
  EXPECT_EQ(rig.injector().recoveries(RecoveryEvent::kScrubRepair), 1u);
  stats = core::collect_stats(*rig.sys);
  EXPECT_EQ(stats.robustness.stuck_ports, 0u);  // healed
  EXPECT_EQ(stats.robustness.scrub_repairs, 1u);
}

TEST(FaultInjection, ScrubberRepairsConfigFrameUpsets) {
  test::FaultRig rig(0x5EEDu);
  core::ScrubberTask scrub(*rig.sys, /*period_cycles=*/500);
  scrub.start();
  // Upsets hit the first two PRR frames the scrubber reads back.
  rig.injector().arm(FaultSite::kConfigFrameUpset, /*nth=*/0, /*count=*/2);

  rig.sys->run_system_cycles(3000);
  EXPECT_GE(scrub.scans(), 2u);
  EXPECT_EQ(scrub.frame_repairs(), 2u);
  EXPECT_EQ(scrub.repairs(), 2u);
  EXPECT_EQ(rig.injector().recoveries(RecoveryEvent::kScrubRepair), 2u);
  EXPECT_EQ(core::collect_stats(*rig.sys).robustness.scrub_repairs, 2u);
}

// ----------------------------------------------- deterministic replay

// A cross-layer scenario: streaming system, probabilistic FIFO faults,
// an armed ICAP corruption healed by retry, a scrub pass. Returns the
// full stats rendering plus the injector report.
std::pair<std::string, std::string> run_replay_scenario(std::uint64_t seed) {
  test::FaultRig rig(seed);
  auto& inj = rig.injector();
  inj.set_probability(FaultSite::kFifoDropWord, 0.002);
  inj.set_probability(FaultSite::kFifoDuplicateWord, 0.002);
  inj.arm(FaultSite::kIcapBitstreamCorruption, /*nth=*/0);
  core::ScrubberTask scrub(*rig.sys, /*period_cycles=*/5000);
  scrub.start();

  rig.stream_counter(/*interval=*/4);
  rig.sys->run_system_cycles(2000);
  rig.sys->reconfigure_now(0, 1, "gain_x2");
  rig.sys->run_system_cycles(2000);

  const auto stats = core::collect_stats(*rig.sys);
  return {stats.to_string(), inj.report()};
}

TEST(FaultInjection, FixedSeedReplayIsBitForBit) {
  // Same seed: identical counters everywhere, down to the rendered
  // report. This is the acceptance bar for the whole layer — a fault
  // run must be a pure function of its seed.
  const auto first = run_replay_scenario(0xD5EEDu);
  const auto second = run_replay_scenario(0xD5EEDu);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  // The scenario actually injected probabilistic faults (not vacuous).
  EXPECT_NE(first.second.find("fifo_drop_word"), std::string::npos)
      << first.second;
}

}  // namespace
}  // namespace vapres
