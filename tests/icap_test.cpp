// ICAP port unit tests: occupancy rules (the EAPR flow serializes all
// configuration through one port), transfer-size validation, and the
// port-level fault detection (CRC mismatch / timeout) results.
#include <gtest/gtest.h>

#include "fabric/icap.hpp"
#include "sim/fault.hpp"

namespace vapres::fabric {
namespace {

TEST(Icap, DoubleBeginThrowsAndReportsInflightBytes) {
  IcapPort port;
  port.begin_transfer(4096);
  EXPECT_TRUE(port.busy());
  EXPECT_EQ(port.inflight_bytes(), 4096);
  try {
    port.begin_transfer(128);
    FAIL() << "second begin_transfer must throw";
  } catch (const ModelError& e) {
    // The busy violation names the in-flight transfer so the caller can
    // see what is hogging the port.
    EXPECT_NE(std::string(e.what()).find("4096 bytes in flight"),
              std::string::npos)
        << e.what();
  }
  // The failed begin did not disturb the in-flight transfer.
  EXPECT_TRUE(port.busy());
  EXPECT_EQ(port.inflight_bytes(), 4096);
  EXPECT_TRUE(port.end_transfer().ok());
  EXPECT_EQ(port.completed_transfers(), 1);
  EXPECT_EQ(port.total_bytes_configured(), 4096);
}

TEST(Icap, ZeroAndNegativeByteTransfersThrow) {
  IcapPort port;
  EXPECT_THROW(port.begin_transfer(0), ModelError);
  EXPECT_THROW(port.begin_transfer(-4), ModelError);
  EXPECT_FALSE(port.busy());
}

TEST(Icap, EndWithoutBeginThrows) {
  IcapPort port;
  EXPECT_THROW(port.end_transfer(), ModelError);
}

TEST(Icap, ArmedCorruptionIsDetectedAtEndTransfer) {
  IcapPort port;
  sim::ScopedFaultInjection faults(0xC0FFEEu);
  faults->arm(sim::FaultSite::kIcapBitstreamCorruption, /*nth=*/0);

  port.begin_transfer(1024);
  const IcapTransferResult bad = port.end_transfer();
  EXPECT_TRUE(bad.corrupted);
  EXPECT_FALSE(bad.timed_out);
  EXPECT_FALSE(bad.ok());
  // A corrupted transfer still moved bytes but does not count completed.
  EXPECT_EQ(port.completed_transfers(), 0);
  EXPECT_EQ(port.corrupted_transfers(), 1);
  EXPECT_EQ(port.total_bytes_configured(), 1024);

  // The window was one opportunity wide: the retry is clean.
  port.begin_transfer(1024);
  EXPECT_TRUE(port.end_transfer().ok());
  EXPECT_EQ(port.completed_transfers(), 1);
}

TEST(Icap, ArmedTimeoutIsDetectedAtEndTransfer) {
  IcapPort port;
  sim::ScopedFaultInjection faults(7u);
  faults->arm(sim::FaultSite::kIcapTransferTimeout, /*nth=*/1);

  port.begin_transfer(64);
  EXPECT_TRUE(port.end_transfer().ok());
  port.begin_transfer(64);
  const IcapTransferResult bad = port.end_transfer();
  EXPECT_TRUE(bad.timed_out);
  EXPECT_FALSE(bad.corrupted);
  EXPECT_EQ(port.timed_out_transfers(), 1);
  EXPECT_EQ(port.completed_transfers(), 1);
}

TEST(Icap, DisabledInjectionLeavesTransfersClean) {
  IcapPort port;
  for (int i = 0; i < 10; ++i) {
    port.begin_transfer(256);
    EXPECT_TRUE(port.end_transfer().ok());
  }
  EXPECT_EQ(port.completed_transfers(), 10);
  EXPECT_EQ(port.corrupted_transfers(), 0);
  EXPECT_EQ(port.timed_out_transfers(), 0);
}

}  // namespace
}  // namespace vapres::fabric
