// Health subsystem: time-series ring determinism, rule-engine hysteresis
// (counter wraps included), sampler freezes, journaled health ops,
// isolate->drain->un-isolate remediation, HealthAgent kill-at-every-step
// replay parity, and the flight-recorder bundle round trip.
// ctest labels: health, fleet.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fleet/controlplane.hpp"
#include "load/scenario.hpp"
#include "obs/bus.hpp"
#include "obs/health/flight.hpp"
#include "obs/health/rules.hpp"
#include "obs/health/series.hpp"
#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "snap/format.hpp"
#include "snap/system_snapshot.hpp"

namespace vapres {
namespace {

using obs::health::HealthRuleSpec;
using obs::health::RuleEngine;
using obs::health::RuleOutcome;
using obs::health::RuleState;
using obs::health::Source;
using obs::health::TimeSeries;
using obs::health::counter_delta;

sched::AppRequest request(const std::string& name,
                          std::vector<std::string> modules, int priority = 1,
                          int interval = 8, std::uint64_t words = 64) {
  sched::AppRequest r;
  r.name = name;
  r.modules = std::move(modules);
  r.priority = priority;
  r.source_interval_cycles = interval;
  r.source_words = words;
  return r;
}

// ---- TimeSeries --------------------------------------------------------

TEST(TimeSeries, RingKeepsNewestAndStaysOldestFirst) {
  TimeSeries ts(4);
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_EQ(ts.last(), 0);

  for (int i = 0; i < 6; ++i) {
    ts.push(static_cast<sim::Cycles>(100 * i), i);
  }
  EXPECT_EQ(ts.capacity(), 4u);
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.total_pushed(), 6u);
  // Retained window is pushes 2..5, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ts.at(i).cycle, 100 * (i + 2));
    EXPECT_EQ(ts.at(i).value, static_cast<std::int64_t>(i + 2));
  }
  EXPECT_EQ(ts.last(), 5);
}

TEST(TimeSeries, DigestIsPureFunctionOfRetainedWindow) {
  TimeSeries a(4);
  TimeSeries b(4);
  // Same final window reached through different histories.
  for (int i = 0; i < 10; ++i) a.push(static_cast<sim::Cycles>(i), i);
  for (int i = 6; i < 10; ++i) b.push(static_cast<sim::Cycles>(i), i);
  EXPECT_EQ(a.digest(), b.digest());

  TimeSeries c(4);
  for (int i = 6; i < 10; ++i) c.push(static_cast<sim::Cycles>(i), i + 1);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(TimeSeries, CounterDeltaIsWrapAware) {
  EXPECT_EQ(counter_delta(10, 25), 15u);
  EXPECT_EQ(counter_delta(25, 25), 0u);
  // Reset/wrap: the whole new reading is the delta.
  EXPECT_EQ(counter_delta(1000, 7), 7u);
}

// ---- RuleEngine --------------------------------------------------------

TEST(RuleEngine, RateSourcePrimesOnFirstReading) {
  HealthRuleSpec r;
  r.source = Source::kCounterRate;
  r.threshold = 0;
  r.breach_observations = 1;

  RuleState s;
  // A monitor brought up mid-incident sees a huge absolute counter; the
  // first reading must only prime, never trip.
  RuleOutcome o = RuleEngine::evaluate(r, 1'000'000, s);
  EXPECT_FALSE(o.bad);
  EXPECT_FALSE(o.tripped);
  EXPECT_TRUE(o.state.primed);
  EXPECT_EQ(o.state.last_raw, 1'000'000);
  EXPECT_EQ(o.state.bad_streak, 0);

  o = RuleEngine::evaluate(r, 1'000'003, o.state);
  EXPECT_EQ(o.value, 3);
  EXPECT_TRUE(o.bad);
  EXPECT_TRUE(o.tripped);
}

TEST(RuleEngine, HysteresisSurvivesCounterWrap) {
  HealthRuleSpec r;
  r.source = Source::kCounterRate;
  r.threshold = 5;
  r.breach_observations = 2;
  r.clear_observations = 2;

  RuleState s;
  RuleOutcome o = RuleEngine::evaluate(r, 100, s);  // primes
  o = RuleEngine::evaluate(r, 110, o.state);        // delta 10 > 5: bad 1
  EXPECT_TRUE(o.bad);
  EXPECT_FALSE(o.tripped);
  EXPECT_EQ(o.state.bad_streak, 1);

  // Counter resets across the wrap; the delta is the new reading (8),
  // still over threshold — the streak continues instead of resetting.
  o = RuleEngine::evaluate(r, 8, o.state);
  EXPECT_EQ(o.value, 8);
  EXPECT_TRUE(o.tripped);
  EXPECT_TRUE(o.state.breached);
  EXPECT_EQ(o.state.breaches, 1u);

  o = RuleEngine::evaluate(r, 10, o.state);  // delta 2: good 1
  EXPECT_FALSE(o.bad);
  EXPECT_FALSE(o.cleared);
  EXPECT_TRUE(o.state.breached);
  o = RuleEngine::evaluate(r, 12, o.state);  // good 2: cleared
  EXPECT_TRUE(o.cleared);
  EXPECT_FALSE(o.state.breached);
  EXPECT_EQ(o.state.breaches, 1u);
}

TEST(RuleEngine, BreachBelowThreshold) {
  HealthRuleSpec r;
  r.source = Source::kGauge;
  r.threshold = 10;
  r.breach_above = false;
  r.breach_observations = 1;
  r.clear_observations = 1;

  RuleState s;
  RuleOutcome o = RuleEngine::evaluate(r, 12, s);
  EXPECT_FALSE(o.bad);
  o = RuleEngine::evaluate(r, 9, o.state);
  EXPECT_TRUE(o.tripped);
  o = RuleEngine::evaluate(r, 11, o.state);
  EXPECT_TRUE(o.cleared);
}

TEST(RuleEngine, FlappingSignalCannotFlapTheRule) {
  HealthRuleSpec r;
  r.source = Source::kGauge;
  r.threshold = 0;
  r.breach_observations = 3;
  r.clear_observations = 3;

  RuleState s;
  RuleOutcome o;
  o.state = s;
  // bad,bad,good repeated: bad_streak never reaches 3.
  for (int i = 0; i < 9; ++i) {
    o = RuleEngine::evaluate(r, (i % 3 == 2) ? 0 : 1, o.state);
    EXPECT_FALSE(o.tripped);
    EXPECT_FALSE(o.state.breached);
  }
}

// ---- HealthSampler -----------------------------------------------------

TEST(HealthSampler, FreezesRegistryWithTypedKeysAndBusGauges) {
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();
  reg.counter("t.ctr").add(10);
  reg.gauge("t.gauge").set(-3);
  for (std::uint64_t v = 1; v <= 100; ++v) reg.histogram("t.hist").record(v);

  obs::health::HealthSampler sampler(8);
  sampler.sample(1000);
  EXPECT_EQ(sampler.samples_taken(), 1u);

  const TimeSeries* rate = sampler.series("rate:t.ctr");
  ASSERT_NE(rate, nullptr);
  // First sample of a counter is its delta from zero.
  EXPECT_EQ(rate->last(), 10);

  const TimeSeries* gauge = sampler.series("gauge:t.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->last(), -3);

  ASSERT_NE(sampler.series("p50:t.hist"), nullptr);
  ASSERT_NE(sampler.series("p99:t.hist"), nullptr);
  EXPECT_EQ(sampler.series("p50:t.hist")->last(),
            static_cast<std::int64_t>(reg.histogram("t.hist").percentile(0.5)));

  // sample() publishes the EventBus occupancy gauges first, so trace
  // loss is part of the frozen window.
  EXPECT_NE(sampler.series("gauge:obs.bus.dropped"), nullptr);
  EXPECT_NE(sampler.series("gauge:obs.bus.retained"), nullptr);

  // Second sample: counter unchanged => rate 0.
  reg.counter("t.ctr").add(0);
  sampler.sample(2000);
  EXPECT_EQ(sampler.series("rate:t.ctr")->last(), 0);
  EXPECT_EQ(sampler.series("rate:t.ctr")->at(0).cycle, 1000u);
  EXPECT_EQ(sampler.series("rate:t.ctr")->at(1).cycle, 2000u);
}

TEST(HealthSampler, DigestIsByteStableAcrossIdenticalRuns) {
  auto run = [] {
    obs::Registry& reg = obs::Registry::instance();
    reg.reset();
    obs::health::HealthSampler sampler(16);
    for (int t = 1; t <= 5; ++t) {
      reg.counter("d.ctr").add(static_cast<std::uint64_t>(3 * t));
      reg.gauge("d.gauge").set(100 - t);
      reg.histogram("d.hist").record(static_cast<std::uint64_t>(t * 7));
      sampler.sample(static_cast<sim::Cycles>(t * 500));
    }
    return sampler.digest();
  };
  const std::uint64_t a = run();
  const std::uint64_t b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
}

// ---- Registry summaries (the one percentile implementation) ------------

TEST(RegistrySummary, MatchesSummarizeAndZeroesWhenAbsent) {
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();
  for (std::uint64_t v = 1; v <= 1000; ++v) reg.histogram("s.lat").record(v);

  const obs::HistogramSummary s = reg.summary("s.lat");
  const obs::HistogramSummary direct =
      obs::summarize("s.lat", reg.histogram("s.lat"));
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.p50, direct.p50);
  EXPECT_EQ(s.p99, direct.p99);
  EXPECT_EQ(s.p50, reg.histogram("s.lat").percentile(0.5));
  EXPECT_EQ(s.p99, reg.histogram("s.lat").percentile(0.99));

  const obs::HistogramSummary absent = reg.summary("no.such.histogram");
  EXPECT_EQ(absent.count, 0u);
  EXPECT_EQ(absent.p50, 0u);
  EXPECT_EQ(absent.p99, 0u);
}

// ---- Scheduler rejection streak (the reject_streak rule's signal) ------

TEST(RejectionStreak, CountsConsecutiveRejectsAndResetsOnLaunch) {
  core::VapresSystem sys(load::server_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);
  EXPECT_EQ(sched.rejection_streak(), 0);

  sched.submit(request("bad1", {"no_such_module"}));
  sched.run_admission();
  EXPECT_EQ(sched.rejection_streak(), 1);
  sched.submit(request("bad2", {"no_such_module"}));
  sched.run_admission();
  EXPECT_EQ(sched.rejection_streak(), 2);

  const int id = sched.submit(request("good", {"gain_x2"}));
  sched.run_admission();
  EXPECT_TRUE(sched.app(id).running());
  EXPECT_EQ(sched.rejection_streak(), 0);
}

// ---- StateDb health ops ------------------------------------------------

std::int64_t pack_rule_state(int bad, int good, bool breached, bool tripped,
                             bool cleared, bool primed, int fabric) {
  std::uint64_t p = static_cast<std::uint64_t>(bad) & 0xfffffu;
  p |= (static_cast<std::uint64_t>(good) & 0xfffffu) << 20;
  if (breached) p |= 1ull << 40;
  if (tripped) p |= 1ull << 41;
  if (cleared) p |= 1ull << 42;
  if (primed) p |= 1ull << 43;
  p |= (static_cast<std::uint64_t>(fabric + 1) & 0xffffu) << 48;
  return static_cast<std::int64_t>(p);
}

TEST(StateDbHealth, OpsMaterializeAndReplayByteIdentically) {
  fleet::StateDb db(2);

  db.append(fleet::AgentId::kOrchestrator, fleet::Op::kHealthTick, 0,
            {4242, 0, 0, 0});
  EXPECT_EQ(db.health_tick_cycle(), 4242u);
  EXPECT_EQ(db.health_tick_version(), db.version());
  const std::uint64_t tick_version = db.health_tick_version();

  // Rule 0: tripped against fabric 1, streaks mid-count.
  db.append(fleet::AgentId::kHealth, fleet::Op::kHealthRuleState, 0,
            {pack_rule_state(3, 0, true, true, false, true, 1), 77,
             static_cast<std::int64_t>(tick_version), 1},
            "icap_retry_rate");
  ASSERT_EQ(db.health_rules().size(), 1u);
  const fleet::HealthRuleRow& row = db.health_rules()[0];
  EXPECT_EQ(row.name, "icap_retry_rate");
  EXPECT_EQ(row.fabric, 1);
  EXPECT_EQ(row.bad_streak, 3);
  EXPECT_EQ(row.good_streak, 0);
  EXPECT_TRUE(row.breached);
  EXPECT_TRUE(row.primed);
  EXPECT_EQ(row.last_raw, 77);
  EXPECT_EQ(row.last_eval_version, tick_version);
  EXPECT_EQ(row.breaches, 1u);
  EXPECT_EQ(db.active_breaches(1), 1);
  EXPECT_EQ(db.active_breaches(0), 0);
  EXPECT_EQ(db.fabric_health(1).last_breach_cycle, 4242u);

  // Isolation on: available fabrics shrinks, transition counted.
  db.append(fleet::AgentId::kHealth, fleet::Op::kIsolateFabric, 1, {1, 1});
  EXPECT_TRUE(db.isolated(1));
  EXPECT_FALSE(db.isolated(0));
  EXPECT_EQ(db.available_fabrics(), 1);
  EXPECT_EQ(db.fabric_health(1).isolations, 1u);

  // Re-isolating an isolated fabric is idempotent on the counter.
  db.append(fleet::AgentId::kHealth, fleet::Op::kIsolateFabric, 1, {1, 1});
  EXPECT_EQ(db.fabric_health(1).isolations, 1u);

  // Off again.
  db.append(fleet::AgentId::kHealth, fleet::Op::kIsolateFabric, 1, {0, 0});
  EXPECT_FALSE(db.isolated(1));
  EXPECT_EQ(db.available_fabrics(), 2);

  EXPECT_EQ(db.replayed_view_digest(), db.view_digest());

  // Truncation keeps the health view replayable from the snapshot base.
  db.truncate();
  db.append(fleet::AgentId::kHealth, fleet::Op::kHealthRuleState, 0,
            {pack_rule_state(0, 2, false, false, true, true, 1), 5,
             static_cast<std::int64_t>(tick_version), 1});
  EXPECT_FALSE(db.health_rules()[0].breached);
  EXPECT_EQ(db.health_rules()[0].good_streak, 2);
  // The note is only published once; the name survives via the view.
  EXPECT_EQ(db.health_rules()[0].name, "icap_retry_rate");
  EXPECT_EQ(db.replayed_view_digest(), db.view_digest());
}

// ---- Fleet remediation round trip --------------------------------------

fleet::FleetSpec sick_gauge_fleet(const std::string& metric,
                                  int breach_observations,
                                  int clear_observations,
                                  bool remediate = true) {
  fleet::FleetSpec fs = fleet::FleetSpec::uniform(2);
  fs.health.enabled = true;
  fs.health.remediate = remediate;
  HealthRuleSpec sick;
  sick.name = "test.sick";
  sick.source = Source::kGauge;
  sick.metric = metric;
  sick.fabric = 1;
  sick.threshold = 0;
  sick.breach_above = true;
  sick.breach_observations = breach_observations;
  sick.clear_observations = clear_observations;
  fs.health.rules = {sick};
  return fs;
}

TEST(HealthFleet, IsolateDrainUnisolateRoundTrip) {
  obs::Registry::instance().reset();
  const fleet::FleetSpec fs = sick_gauge_fleet("test.rt.sick", 1, 2);
  fleet::ControlPlane fc(fs);
  obs::Registry::instance().gauge("test.rt.sick").set(0);

  std::vector<int> ids;
  for (int i = 0; i < 3; ++i) {
    const auto d = fc.submit("t0", request("app" + std::to_string(i),
                                           {"gain_x2"}));
    ASSERT_TRUE(d.admitted);
    ids.push_back(d.fleet_id);
  }
  // Park two apps on the to-be-degraded fabric so the drain has work.
  for (int i = 0; i < 2; ++i) {
    if (fc.statedb().app(ids[static_cast<std::size_t>(i)])->fabric != 1) {
      const auto m = fc.migrate(ids[static_cast<std::size_t>(i)], 1);
      ASSERT_EQ(m.outcome, fleet::MigrateOutcome::kMoved);
    }
  }
  ASSERT_GT(fc.running_on(1), 0);

  // Healthy tick: nothing trips, nothing isolates.
  EXPECT_EQ(fc.health_tick(), 0u);
  EXPECT_FALSE(fc.statedb().isolated(1));

  // Sick gauge: the next tick trips the rule, isolates fabric 1, and
  // starts draining (one drain intent per fabric per tick).
  obs::Registry::instance().gauge("test.rt.sick").set(1);
  EXPECT_EQ(fc.health_tick(), 1u);
  EXPECT_TRUE(fc.statedb().isolated(1));
  EXPECT_EQ(fc.statedb().active_breaches(1), 1);
  EXPECT_EQ(fc.counters().breaches_tripped, 1u);
  EXPECT_EQ(fc.counters().isolations, 1u);
  EXPECT_GE(fc.counters().drains_started, 1u);

  // The router scores an isolated fabric unroutable: new work lands
  // elsewhere.
  const auto steer = fc.submit("t0", request("steer", {"gain_x2"}));
  ASSERT_TRUE(steer.admitted);
  EXPECT_EQ(steer.fabric, 0);
  fc.stop(steer.fleet_id);

  // Further sick ticks drain the remaining apps off fabric 1.
  for (int guard = 0; fc.running_on(1) > 0 && guard < 16; ++guard) {
    fc.health_tick();
  }
  EXPECT_EQ(fc.running_on(1), 0);
  EXPECT_EQ(fc.counters().migrations_lost, 0u);
  for (int id : ids) {
    EXPECT_TRUE(fc.running(id)) << "app " << id << " lost in drain";
    EXPECT_EQ(fc.statedb().app(id)->fabric, 0);
  }
  // Still breached, still isolated.
  EXPECT_TRUE(fc.statedb().isolated(1));

  // Recovery needs clear_observations=2 consecutive good readings.
  obs::Registry::instance().gauge("test.rt.sick").set(0);
  fc.health_tick();
  EXPECT_TRUE(fc.statedb().isolated(1));
  fc.health_tick();
  EXPECT_FALSE(fc.statedb().isolated(1));
  EXPECT_EQ(fc.statedb().active_breaches(1), 0);
  EXPECT_EQ(fc.counters().breaches_cleared, 1u);
  EXPECT_EQ(fc.counters().unisolations, 1u);

  // The whole episode replays byte-identically.
  EXPECT_EQ(fc.statedb().replayed_view_digest(), fc.statedb().view_digest());

  // fleet_status surfaces the health ledger.
  const std::string status = fc.fleet_status();
  EXPECT_NE(status.find("health"), std::string::npos);
}

TEST(HealthFleet, ObserveOnlyModeNeverIsolates) {
  obs::Registry::instance().reset();
  const fleet::FleetSpec fs =
      sick_gauge_fleet("test.obs.sick", 1, 1, /*remediate=*/false);
  fleet::ControlPlane fc(fs);
  obs::Registry::instance().gauge("test.obs.sick").set(1);

  const auto d = fc.submit("t0", request("a", {"gain_x2"}));
  ASSERT_TRUE(d.admitted);

  EXPECT_EQ(fc.health_tick(), 1u);  // the rule still trips...
  EXPECT_EQ(fc.counters().breaches_tripped, 1u);
  EXPECT_FALSE(fc.statedb().isolated(1));  // ...but nothing remediates
  EXPECT_EQ(fc.counters().isolations, 0u);
  EXPECT_EQ(fc.counters().drains_started, 0u);
  EXPECT_EQ(fc.statedb().replayed_view_digest(), fc.statedb().view_digest());
}

TEST(HealthFleet, LastAvailableFabricIsNeverIsolated) {
  obs::Registry::instance().reset();
  // Two rules, one per fabric: both sick at once. Only one fabric may be
  // isolated — the fleet never isolates its last routable fabric.
  fleet::FleetSpec fs = fleet::FleetSpec::uniform(2);
  fs.health.enabled = true;
  for (int f = 0; f < 2; ++f) {
    HealthRuleSpec r;
    r.name = "sick" + std::to_string(f);
    r.source = Source::kGauge;
    r.metric = "test.both.sick";
    r.fabric = f;
    r.threshold = 0;
    r.breach_observations = 1;
    r.clear_observations = 1;
    fs.health.rules.push_back(r);
  }
  fleet::ControlPlane fc(fs);
  obs::Registry::instance().gauge("test.both.sick").set(1);

  EXPECT_EQ(fc.health_tick(), 2u);
  EXPECT_EQ(fc.statedb().available_fabrics(), 1);
  fc.health_tick();
  EXPECT_EQ(fc.statedb().available_fabrics(), 1);
  EXPECT_EQ(fc.statedb().replayed_view_digest(), fc.statedb().view_digest());
}

// ---- Kill-invariance ---------------------------------------------------

// Everything the health monitor *decided*, independent of journal
// versions (which legitimately shift under restart markers).
std::string decision_state(const fleet::ControlPlane& fc) {
  std::ostringstream os;
  for (const auto& r : fc.statedb().health_rules()) {
    os << r.name << " f" << r.fabric << " bad=" << r.bad_streak
       << " good=" << r.good_streak << " breached=" << r.breached
       << " primed=" << r.primed << " raw=" << r.last_raw
       << " trips=" << r.breaches << "\n";
  }
  for (int f = 0; f < fc.statedb().num_fabrics(); ++f) {
    const auto& fh = fc.statedb().fabric_health(f);
    os << "fabric" << f << " isolated=" << fh.isolated
       << " isolations=" << fh.isolations << "\n";
  }
  for (int id : fc.running_ids()) {
    os << "app" << id << "@" << fc.statedb().app(id)->fabric << "\n";
  }
  const auto& c = fc.counters();
  os << "tripped=" << c.breaches_tripped << " cleared=" << c.breaches_cleared
     << " iso=" << c.isolations << " uniso=" << c.unisolations
     << " drains=" << c.drains_started << " lost=" << c.migrations_lost
     << "\n";
  return os.str();
}

TEST(HealthFleet, KillAtEveryJournalStepPreservesDecisions) {
  // One full remediation episode (trip -> isolate -> drain -> recover),
  // re-run with the HealthAgent killed at each journal offset. Decision
  // state must match the no-kill baseline exactly, and every run must
  // replay to its own live digest. Flight recording stays off: bundle
  // checkpoints journal entries and would shift the offsets.
  auto run = [](std::uint64_t kill_offset) {
    obs::Registry::instance().reset();
    const fleet::FleetSpec fs = sick_gauge_fleet("test.kill.sick", 2, 2);
    fleet::ControlPlane fc(fs);
    obs::Registry::instance().gauge("test.kill.sick").set(0);

    std::vector<int> ids;
    for (int i = 0; i < 3; ++i) {
      const auto d = fc.submit("t0", request("app" + std::to_string(i),
                                             {"gain_x2"}));
      EXPECT_TRUE(d.admitted);
      ids.push_back(d.fleet_id);
    }
    // Two apps on the to-be-degraded fabric: the episode must include
    // real drains, not just an isolation toggle.
    for (int i = 0; i < 2; ++i) {
      if (fc.statedb().app(ids[static_cast<std::size_t>(i)])->fabric != 1) {
        fc.migrate(ids[static_cast<std::size_t>(i)], 1);
      }
    }
    EXPECT_GT(fc.running_on(1), 0);
    obs::Registry::instance().gauge("test.kill.sick").set(1);
    if (kill_offset > 0) {
      fc.schedule_kill(fleet::AgentId::kHealth,
                       fc.statedb().version() + kill_offset);
    }
    for (int t = 0; t < 3; ++t) fc.health_tick();  // trip on t=1, drain
    obs::Registry::instance().gauge("test.kill.sick").set(0);
    for (int t = 0; t < 2; ++t) fc.health_tick();  // clear + un-isolate

    EXPECT_EQ(fc.statedb().replayed_view_digest(),
              fc.statedb().view_digest())
        << "replay parity broken at kill offset " << kill_offset;
    return decision_state(fc);
  };

  const std::string baseline = run(0);
  EXPECT_NE(baseline.find("isolations=1"), std::string::npos);
  EXPECT_NE(baseline.find("lost=0"), std::string::npos);
  for (std::uint64_t offset = 1; offset <= 12; ++offset) {
    EXPECT_EQ(run(offset), baseline) << "kill offset " << offset;
  }
}

TEST(HealthFleet, RestartLedgerNotesHealthKills) {
  obs::Registry::instance().reset();
  const fleet::FleetSpec fs = sick_gauge_fleet("test.ledger.sick", 1, 1);
  fleet::ControlPlane fc(fs);

  EXPECT_EQ(fc.statedb().restarts(fleet::AgentId::kHealth), 0u);
  fc.restart_agent(fleet::AgentId::kHealth);
  EXPECT_EQ(fc.statedb().restarts(fleet::AgentId::kHealth), 1u);
  EXPECT_GE(fc.agent_restarts(), 1u);
  EXPECT_NE(fc.fleet_status().find("health"), std::string::npos);
  EXPECT_EQ(fc.statedb().replayed_view_digest(), fc.statedb().view_digest());
}

// ---- Flight recorder ---------------------------------------------------

TEST(HealthFleet, FlightBundleRoundTripsThroughSnapshotReader) {
  namespace fsys = std::filesystem;
  const std::string dir = "health_flight_tmp";
  std::error_code ec;
  fsys::remove_all(dir, ec);

  obs::Registry::instance().reset();
  const fleet::FleetSpec fs = sick_gauge_fleet("test.flight.sick", 1, 2);
  fleet::ControlPlane fc(fs);
  fc.set_flight_dir(dir);
  obs::Registry::instance().gauge("test.flight.sick").set(0);

  std::vector<int> ids;
  for (int i = 0; i < 3; ++i) {
    const auto d = fc.submit("t0", request("f" + std::to_string(i),
                                           {"gain_x2"}));
    ASSERT_TRUE(d.admitted);
    ids.push_back(d.fleet_id);
  }
  if (fc.statedb().app(ids[0])->fabric != 1) {
    ASSERT_EQ(fc.migrate(ids[0], 1).outcome, fleet::MigrateOutcome::kMoved);
  }
  ASSERT_GT(fc.running_on(1), 0);

  obs::Registry::instance().gauge("test.flight.sick").set(1);
  ASSERT_EQ(fc.health_tick(), 1u);
  // The bundle snapshots the suspect fabric *after* this tick's
  // remediation ran, so compare against the post-tick population.
  const int running_on_suspect = fc.running_on(1);
  ASSERT_EQ(fc.flight_bundles(), 1u);
  ASSERT_NE(fc.flight_recorder(), nullptr);
  ASSERT_EQ(fc.flight_recorder()->paths().size(), 1u);

  // The bundle is a plain .vsnp on disk; load it back cold.
  const std::string path = fc.flight_recorder()->paths().front();
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const snap::SnapshotReader r(buf.str());

  for (const char* section :
       {"flight.meta", "flight.snapshot", "flight.trace", "flight.journal",
        "flight.metrics", "flight.health"}) {
    EXPECT_TRUE(r.has_section(section)) << section;
  }

  r.open_section("flight.meta");
  EXPECT_EQ(r.str(), "slo_breach");
  EXPECT_GT(r.u64(), 0u);      // capture cycle
  EXPECT_EQ(r.u64(), 0u);      // bundle sequence

  // The embedded snapshot restores into a working system+scheduler: the
  // postmortem is actionable, not just bytes.
  r.open_section("flight.snapshot");
  const std::string inner = r.str();
  ASSERT_FALSE(inner.empty());
  auto sys = snap::SystemSnapshot::restore_system(inner, fs.fabrics[1].params);
  auto sched = snap::SystemSnapshot::restore_scheduler(inner, *sys);
  EXPECT_EQ(static_cast<int>(sched->running_apps().size()),
            running_on_suspect);

  r.open_section("flight.trace");
  EXPECT_NE(r.str().find("traceEvents"), std::string::npos);

  r.open_section("flight.journal");
  EXPECT_FALSE(r.str().empty());

  r.open_section("flight.metrics");
  EXPECT_NE(r.str().find("test.flight.sick"), std::string::npos);

  r.open_section("flight.health");
  ASSERT_TRUE(r.boolean());  // sampler present
  const std::uint64_t samples = r.u64();
  EXPECT_GE(samples, 1u);
  const std::uint64_t nseries = r.u64();
  EXPECT_GT(nseries, 0u);
  bool saw_sick_gauge = false;
  for (std::uint64_t s = 0; s < nseries; ++s) {
    const std::string key = r.str();
    if (key == "gauge:test.flight.sick") saw_sick_gauge = true;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      (void)r.u64();  // cycle
      (void)r.i64();  // value
    }
  }
  EXPECT_TRUE(saw_sick_gauge);
  const std::string rules = r.str();
  EXPECT_NE(rules.find("test.sick"), std::string::npos);
  EXPECT_EQ(r.remaining(), 0u);

  // The bundle cap holds: a recorder capped at 1 writes once, then
  // refuses.
  fc.set_flight_dir(dir, 1);
  EXPECT_FALSE(fc.record_flight("manual").empty());
  EXPECT_TRUE(fc.record_flight("manual").empty());
  EXPECT_EQ(fc.flight_bundles(), 1u);

  fsys::remove_all(dir, ec);
}

}  // namespace
}  // namespace vapres
