// Fleet subsystem: router determinism, fallback order, cross-fabric
// migration (move + rollback), elastic quota hysteresis, starvation
// preemption, and probe_admit side-effect freedom. ctest label: fleet.
#include <gtest/gtest.h>

#include "fleet/controlplane.hpp"
#include "load/invariants.hpp"
#include "load/scenario.hpp"
#include "sched/scheduler.hpp"

namespace vapres {
namespace {

sched::AppRequest request(const std::string& name,
                          std::vector<std::string> modules, int priority = 1,
                          int interval = 8, std::uint64_t words = 64) {
  sched::AppRequest r;
  r.name = name;
  r.modules = std::move(modules);
  r.priority = priority;
  r.source_interval_cycles = interval;
  r.source_words = words;
  return r;
}

TEST(ProbeAdmit, DryRunHasNoSideEffects) {
  core::VapresSystem sys(load::server_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);

  const int free_before = sched.fabric().free_count();
  const int apps_before = sched.num_apps();
  const sim::Cycles cycle_before = sys.system_clock().cycle_count();
  const sim::Picoseconds ps_before = sys.sim().now();

  const auto probe = sched.probe_admit(request("p", {"gain_x2"}));
  EXPECT_TRUE(probe.admissible);
  EXPECT_EQ(probe.verdict, sched::AdmissionVerdict::kAdmitted);
  EXPECT_EQ(probe.prrs.size(), 1u);
  EXPECT_TRUE(probe.iom_available);
  EXPECT_EQ(probe.defrag_migrations, 0);

  EXPECT_EQ(sched.fabric().free_count(), free_before);
  EXPECT_EQ(sched.num_apps(), apps_before);
  EXPECT_EQ(sys.system_clock().cycle_count(), cycle_before);
  EXPECT_EQ(sys.sim().now(), ps_before);
}

TEST(ProbeAdmit, ReportsRejectionVerdicts) {
  core::VapresSystem sys(load::server_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);

  const auto bad = sched.probe_admit(request("bad", {"no_such_module"}));
  EXPECT_FALSE(bad.admissible);
  EXPECT_EQ(bad.verdict, sched::AdmissionVerdict::kRejectedBadSpec);

  // A compact-tier fabric's halved clock ladder cannot sustain an
  // interval-2 stream.
  const fleet::FabricSpec mini = fleet::FabricSpec::compact("mini");
  core::VapresSystem mini_sys(mini.params);
  mini_sys.bring_up_all_sites();
  sched::ApplicationScheduler mini_sched(mini_sys);
  const auto fast = mini_sched.probe_admit(request("fast", {"gain_x2"}, 1, 2));
  EXPECT_FALSE(fast.admissible);
  EXPECT_EQ(fast.verdict, sched::AdmissionVerdict::kRejectedRateInfeasible);
  // ...and its 128-slice sites fit no 300-slice ma8.
  const auto big = mini_sched.probe_admit(request("big", {"ma8"}));
  EXPECT_FALSE(big.admissible);
  EXPECT_EQ(big.verdict, sched::AdmissionVerdict::kRejectedNoPrrFit);
}

TEST(FleetRouter, DeterministicForFixedSeed) {
  auto run = [](std::vector<std::pair<int, bool>>& decisions) {
    fleet::ControlPlane fc(fleet::FleetSpec::heterogeneous());
    load::ScenarioSpec spec =
        load::ScenarioSpec::standard_fleet(42, 40, 3, fc.num_fabrics());
    load::ScenarioGenerator gen(spec);
    while (auto ev = gen.next()) {
      fc.advance_to(ev->at_cycle);
      const fleet::RouteDecision d =
          fc.submit("t" + std::to_string(ev->tenant), ev->request);
      decisions.emplace_back(d.fabric, d.admitted);
    }
  };
  std::vector<std::pair<int, bool>> a, b;
  run(a);
  run(b);
  EXPECT_EQ(a.size(), 40u);
  EXPECT_EQ(a, b);
}

TEST(FleetRouter, CostModelExcludesIncapableFabrics) {
  // compact first, standard second: a cost router must skip the fabric
  // that cannot host the request at all (no submission wasted on it).
  fleet::FleetSpec spec;
  spec.fabrics.push_back(fleet::FabricSpec::compact("mini"));
  spec.fabrics.push_back(fleet::FabricSpec::standard("std"));
  fleet::ControlPlane fc(spec);

  const fleet::RouteDecision d = fc.submit("t0", request("avg", {"ma8"}));
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.fabric, 1);
  EXPECT_EQ(d.attempts, 1);
  ASSERT_EQ(d.order.size(), 1u);  // compact excluded, not just deprioritized
  EXPECT_EQ(d.order[0], 1);
  EXPECT_EQ(fc.counters().fallbacks, 0u);
}

TEST(FleetRouter, RoundRobinFallsBackInRotationOrder) {
  fleet::FleetSpec spec;
  spec.fabrics.push_back(fleet::FabricSpec::compact("mini"));
  spec.fabrics.push_back(fleet::FabricSpec::standard("std"));
  spec.policy = fleet::RoutePolicy::kRoundRobin;
  fleet::ControlPlane fc(spec);

  // Rotation starts at fabric 0, which rejects ma8 (no PRR fit); the
  // router falls back to fabric 1.
  const fleet::RouteDecision d = fc.submit("t0", request("avg", {"ma8"}));
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.fabric, 1);
  EXPECT_EQ(d.attempts, 2);
  ASSERT_EQ(d.order.size(), 2u);
  EXPECT_EQ(d.order[0], 0);
  EXPECT_EQ(fc.counters().fallbacks, 1u);
}

TEST(FleetMigration, MovesAppAndAdoptsMasters) {
  fleet::ControlPlane fc(fleet::FleetSpec::uniform(2));
  const fleet::RouteDecision d = fc.submit("t0", request("amp", {"gain_x2"}));
  ASSERT_TRUE(d.admitted);
  const int src = d.fabric;
  const int dst = 1 - src;
  EXPECT_EQ(fc.scheduler(dst).store().master_count(), 0u);

  const fleet::MigrateResult mr = fc.migrate(d.fleet_id, dst);
  EXPECT_EQ(mr.outcome, fleet::MigrateOutcome::kMoved);
  EXPECT_TRUE(fc.running(d.fleet_id));
  EXPECT_EQ(fc.locate(d.fleet_id)->fabric, dst);
  // The destination restreamed from an adopted relocatable master, not a
  // cold regenerate.
  EXPECT_GE(fc.scheduler(dst).store().master_count(), 1u);
  EXPECT_EQ(fc.counters().migrations_moved, 1u);
  EXPECT_EQ(fc.running_on(src), 0);
  EXPECT_EQ(fc.running_on(dst), 1);
}

TEST(FleetMigration, RollsBackWhenDestinationAdmitFails) {
  fleet::ControlPlane fc(fleet::FleetSpec::uniform(2));
  const fleet::RouteDecision d = fc.submit("t0", request("amp", {"gain_x2"}));
  ASSERT_TRUE(d.admitted);
  const int src = d.fabric;
  const int dst = 1 - src;

  // Saturate the destination's IOM channel pairs directly (3 per
  // standard fabric) so its replayed admission must fail mid-move.
  for (int i = 0; i < 3; ++i) {
    fc.scheduler(dst).submit(request("fill" + std::to_string(i), {"gain_x2"}));
  }
  fc.scheduler(dst).run_admission();
  ASSERT_EQ(fc.running_on(dst), 3);

  // probe_first=false forces the teardown-replay path to hit the full
  // destination and roll back.
  const fleet::MigrateResult mr = fc.migrate(d.fleet_id, dst, false);
  EXPECT_EQ(mr.outcome, fleet::MigrateOutcome::kRolledBack);
  EXPECT_TRUE(fc.running(d.fleet_id));
  EXPECT_EQ(fc.locate(d.fleet_id)->fabric, src);
  EXPECT_EQ(fc.counters().migrations_rolled_back, 1u);

  // With the probe on, the same hopeless move is skipped outright.
  const fleet::MigrateResult skipped = fc.migrate(d.fleet_id, dst);
  EXPECT_EQ(skipped.outcome, fleet::MigrateOutcome::kSkipped);
  EXPECT_TRUE(fc.running(d.fleet_id));
}

TEST(QuotaGovernor, GrowAndShrinkHaveHysteresis) {
  fleet::QuotaConfig cfg;
  cfg.min_budget_prrs = 1;
  cfg.max_budget_prrs = 8;
  cfg.initial_budget_prrs = 2;
  cfg.grow_observations = 3;
  cfg.shrink_observations = 2;
  cfg.grow_step_prrs = 2;
  cfg.shrink_step_prrs = 1;
  cfg.shrink_below = 0.5;
  fleet::QuotaGovernor gov(cfg, 16);

  // Two over-budget observations are below the grow streak: no change.
  gov.set_usage("a", 2);
  gov.observe_demand("a", 3);
  gov.observe_demand("a", 3);
  EXPECT_EQ(gov.budget("a"), 2);
  gov.observe_demand("a", 3);
  EXPECT_EQ(gov.budget("a"), 4);
  EXPECT_EQ(gov.grows(), 1u);

  // One low-usage tick is below the shrink streak: no change. Demand in
  // between resets the streak.
  gov.set_usage("a", 0);
  gov.tick();
  EXPECT_EQ(gov.budget("a"), 4);
  gov.observe_demand("a", 1);  // resets the idle streak
  gov.tick();
  EXPECT_EQ(gov.budget("a"), 4);
  gov.tick();
  EXPECT_EQ(gov.budget("a"), 3);
  EXPECT_EQ(gov.shrinks(), 1u);

  // Shrink floors at min_budget_prrs.
  for (int i = 0; i < 20; ++i) gov.tick();
  EXPECT_EQ(gov.budget("a"), cfg.min_budget_prrs);

  // Grow ceilings at max_budget_prrs.
  for (int i = 0; i < 40; ++i) gov.observe_demand("a", 9);
  EXPECT_EQ(gov.budget("a"), cfg.max_budget_prrs);
}

TEST(QuotaGovernor, ElasticAdmitUsesFleetSlack) {
  fleet::QuotaConfig cfg;
  cfg.min_budget_prrs = 1;
  cfg.initial_budget_prrs = 2;
  cfg.elastic_slack_prrs = 2;
  fleet::QuotaGovernor gov(cfg, 8);

  gov.set_usage("a", 2);  // at budget
  // Over budget, but the fleet keeps >= 2 PRRs free after the grant.
  EXPECT_TRUE(gov.admit("a", 1, 6));
  // Over budget and the grant would eat into the slack reserve.
  EXPECT_FALSE(gov.admit("a", 1, 2));
  // Within budget always passes, slack or not.
  gov.set_usage("a", 0);
  EXPECT_TRUE(gov.admit("a", 2, 0));
}

TEST(FleetQuota, StarvedTenantPreemptsOverQuotaTenant) {
  fleet::FleetSpec spec = fleet::FleetSpec::uniform(1);
  spec.quota.min_budget_prrs = 1;
  spec.quota.initial_budget_prrs = 1;
  spec.quota.grow_observations = 100;  // keep budgets frozen for the test
  spec.quota.elastic_slack_prrs = 0;   // overshoot freely while PRRs are free
  fleet::ControlPlane fc(spec);

  // Tenant A soaks up every IOM channel pair (3 on a standard fabric),
  // ending far over its 1-PRR budget.
  std::vector<int> a_ids;
  for (int i = 0; i < 3; ++i) {
    const fleet::RouteDecision d =
        fc.submit("a", request("a" + std::to_string(i), {"gain_x2"}));
    ASSERT_TRUE(d.admitted) << i;
    a_ids.push_back(d.fleet_id);
  }
  EXPECT_TRUE(fc.governor().over_quota("a"));

  // Tenant B is within budget but capacity-starved: the router must
  // evict A's youngest app and admit B on the retry.
  const fleet::RouteDecision d = fc.submit("b", request("b0", {"gain_x2"}));
  EXPECT_TRUE(d.admitted);
  EXPECT_TRUE(d.preempted_for);
  EXPECT_EQ(fc.counters().quota_preemptions, 1u);
  EXPECT_FALSE(fc.running(a_ids.back()));  // youngest A app was the victim
  EXPECT_TRUE(fc.running(a_ids.front()));
}

TEST(FleetQuota, OverQuotaTenantIsRefusedWithoutSlack) {
  fleet::FleetSpec spec = fleet::FleetSpec::uniform(1);
  spec.quota.min_budget_prrs = 1;
  spec.quota.initial_budget_prrs = 1;
  spec.quota.grow_observations = 100;
  spec.quota.elastic_slack_prrs = 64;  // no overshoot headroom, ever
  fleet::ControlPlane fc(spec);

  const fleet::RouteDecision first = fc.submit("a", request("a0", {"gain_x2"}));
  ASSERT_TRUE(first.admitted);
  const fleet::RouteDecision second =
      fc.submit("a", request("a1", {"gain_x2"}));
  EXPECT_FALSE(second.admitted);
  EXPECT_TRUE(second.quota_limited);
  EXPECT_EQ(second.attempts, 0);  // never routed
  EXPECT_EQ(fc.counters().quota_rejected, 1u);
}

TEST(FleetInvariants, SweepsHoldPerFabricUnderMixedWorkload) {
  fleet::ControlPlane fc(fleet::FleetSpec::heterogeneous());
  load::ScenarioSpec spec =
      load::ScenarioSpec::standard_fleet(7, 60, 3, fc.num_fabrics());
  load::ScenarioGenerator gen(spec);

  int migrations = 0;
  while (auto ev = gen.next()) {
    fc.advance_to(ev->at_cycle);
    fc.submit("t" + std::to_string(ev->tenant), ev->request);
    if (ev->migrate && !fc.running_ids().empty()) {
      const int id = fc.running_ids().front();
      const int dst = (fc.locate(id)->fabric + 1) % fc.num_fabrics();
      fc.migrate(id, dst);
      ++migrations;
    }
    if (ev->churn_stop && !fc.running_ids().empty()) {
      fc.stop(fc.running_ids().front());
    }
  }
  EXPECT_GT(migrations, 0);

  load::InvariantReport report;
  for (int i = 0; i < fc.num_fabrics(); ++i) {
    load::check_resource_ledger(fc.scheduler(i), report);
    load::check_accounting(fc.scheduler(i), report);
  }
  EXPECT_TRUE(report.ok()) << report.to_string();

  // Retirement prunes terminal fleet ids but keeps the running ones
  // resolvable, and the per-fabric ledgers still balance.
  for (const int id : fc.running_ids()) fc.stop(id);
  fc.retire_terminal();
  EXPECT_TRUE(fc.running_ids().empty());
  load::InvariantReport after;
  for (int i = 0; i < fc.num_fabrics(); ++i) {
    load::check_resource_ledger(fc.scheduler(i), after);
    load::check_accounting(fc.scheduler(i), after);
  }
  EXPECT_TRUE(after.ok()) << after.to_string();
}

TEST(FleetFailover, RestoresCrashedFabricAppsOntoSpare) {
  fleet::ControlPlane fc(fleet::FleetSpec::uniform(2));
  std::vector<fleet::RouteDecision> apps;
  for (int i = 0; i < 3; ++i) {
    apps.push_back(fc.submit("t" + std::to_string(i % 2),
                             request("app" + std::to_string(i), {"gain_x2"},
                                     1, 8, /*words=*/0)));
    ASSERT_TRUE(apps.back().admitted);
  }
  fc.advance_to(fc.now() + 2000);

  fc.checkpoint_all();
  EXPECT_EQ(fc.checkpoints_taken(), 2u);
  ASSERT_NE(fc.last_checkpoint(0), nullptr);
  ASSERT_NE(fc.last_checkpoint(1), nullptr);
  EXPECT_GT(fc.last_checkpoint(0)->blob.size(), 0u);

  // Crash whichever fabric hosts the first app; the other is the spare.
  const int crashed = fc.locate(apps[0].fleet_id)->fabric;
  const int spare = 1 - crashed;
  std::vector<int> victims;
  for (const auto& d : apps) {
    if (fc.locate(d.fleet_id)->fabric == crashed) victims.push_back(d.fleet_id);
  }
  ASSERT_FALSE(victims.empty());

  fc.kill_fabric(crashed);
  const fleet::FailoverResult fr = fc.failover(crashed, spare);

  EXPECT_EQ(fr.from_fabric, crashed);
  EXPECT_EQ(fr.to_fabric, spare);
  EXPECT_EQ(fr.apps_lost, 0);  // the zero-loss acceptance gate
  EXPECT_EQ(fr.apps_restored, static_cast<int>(victims.size()));
  EXPECT_EQ(fr.epoch, fc.last_checkpoint(crashed)->epoch);

  // Every victim is running again on the spare under its fleet id.
  for (const int id : victims) {
    EXPECT_TRUE(fc.running(id)) << "fleet id " << id;
    EXPECT_EQ(fc.locate(id)->fabric, spare);
  }
  EXPECT_EQ(fc.running_on(spare), static_cast<int>(apps.size()));
  EXPECT_EQ(fc.running_on(crashed), 0);

  // The spare fabric keeps streaming and passes the ledger sweeps; the
  // table replays to the same view it holds live.
  fc.advance_to(fc.now() + 2000);
  load::InvariantReport rep;
  load::check_resource_ledger(fc.scheduler(spare), rep);
  load::check_accounting(fc.scheduler(spare), rep);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(fc.statedb().view_digest(), fc.statedb().replayed_view_digest());

  const std::string status = fc.fleet_status();
  EXPECT_NE(status.find("checkpoint"), std::string::npos);
  EXPECT_NE(status.find("failovers: 1 performed"), std::string::npos);
}

TEST(FleetFailover, RetiresAppsAlreadyTerminalInTheCheckpoint) {
  fleet::ControlPlane fc(fleet::FleetSpec::uniform(2));
  const fleet::RouteDecision d =
      fc.submit("t0", request("dead", {"gain_x2"}, 1, 8, /*words=*/0));
  ASSERT_TRUE(d.admitted);
  const int crashed = d.fabric;
  const int spare = 1 - crashed;
  fc.stop(d.fleet_id);  // terminal before the checkpoint is cut

  fc.checkpoint_fabric(crashed);
  fc.kill_fabric(crashed);
  const fleet::FailoverResult fr = fc.failover(crashed, spare);
  EXPECT_EQ(fr.apps_restored, 0);
  EXPECT_EQ(fr.apps_retired, 1);
  EXPECT_EQ(fr.apps_lost, 0);
  EXPECT_FALSE(fc.locate(d.fleet_id).has_value());
}

TEST(FleetFailover, RequiresCheckpointAndDistinctSpare) {
  fleet::ControlPlane fc(fleet::FleetSpec::uniform(2));
  EXPECT_THROW(fc.failover(0, 0), ModelError);   // no distinct spare
  EXPECT_THROW(fc.failover(0, 1), ModelError);   // never checkpointed
  fc.checkpoint_fabric(0);
  EXPECT_NO_THROW(fc.failover(0, 1));            // nothing to restore: ok
  EXPECT_EQ(fc.failovers(), 1u);
}

}  // namespace
}  // namespace vapres
