// Observability-layer tests: event bus ring semantics, span nesting,
// metrics registry, exporters, DCR performance counters, and the
// end-to-end guarantee that a module switch traces all nine protocol
// steps without interrupting the stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/perfcounter.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "obs/bus.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace vapres {
namespace {

using obs::Event;
using obs::EventBus;
using obs::EventKind;
using obs::Subsystem;

/// Every bus test starts from a clean, fully-enabled bus and leaves it
/// disabled so unrelated tests pay only the mask check.
struct BusGuard {
  explicit BusGuard(std::uint32_t mask = ~0u,
                    std::size_t capacity = EventBus::kDefaultCapacity) {
    EventBus::instance().enable(mask, capacity);
  }
  ~BusGuard() { EventBus::instance().disable(); }
};

// ------------------------------------------------------------ EventBus

TEST(EventBus, DisabledEmitIsDropped) {
  BusGuard guard(0u);
  auto& bus = EventBus::instance();
  bus.instant(Subsystem::kSwitch, obs::ev::kStep1Reconfigure, 0, 100);
  EXPECT_EQ(bus.size(), 0u);
  EXPECT_EQ(bus.total_emitted(), 0u);
}

TEST(EventBus, MaskFiltersPerSubsystem) {
  BusGuard guard(EventBus::bit(Subsystem::kSwitch));
  auto& bus = EventBus::instance();
  bus.instant(Subsystem::kSched, obs::ev::kSubmit, 0, 10);
  bus.instant(Subsystem::kSwitch, obs::ev::kStep1Reconfigure, 0, 20);
  bus.instant(Subsystem::kBitman, obs::ev::kHit, 0, 30);
  const auto events = bus.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].subsystem, Subsystem::kSwitch);
  EXPECT_EQ(events[0].time_ps, 20);
}

TEST(EventBus, RingOverflowDropsOldestKeepsNewest) {
  BusGuard guard(~0u, /*capacity=*/8);
  auto& bus = EventBus::instance();
  ASSERT_EQ(bus.capacity(), 8u);
  for (std::uint64_t i = 0; i < 21; ++i) {
    bus.instant(Subsystem::kKernel, obs::ev::kDomainSleep, 0,
                static_cast<sim::Picoseconds>(i * 10), /*arg0=*/i);
  }
  EXPECT_EQ(bus.total_emitted(), 21u);
  EXPECT_EQ(bus.dropped(), 13u);
  const auto events = bus.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first window of the 8 most recent records.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg0, 13u + i);
  }
}

TEST(EventBus, CapacityRoundsUpToPowerOfTwo) {
  BusGuard guard(~0u, /*capacity=*/100);
  EXPECT_EQ(EventBus::instance().capacity(), 128u);
}

TEST(EventBus, TracksAreStableAndNamed) {
  BusGuard guard;
  auto& bus = EventBus::instance();
  const std::uint32_t a = bus.track("prr0.switch");
  const std::uint32_t b = bus.track("icap");
  EXPECT_NE(a, b);
  EXPECT_EQ(bus.track("prr0.switch"), a);
  EXPECT_EQ(bus.track_names()[0], "main");
  EXPECT_EQ(bus.track_names()[a], "prr0.switch");
}

TEST(EventBus, SpanNestingEmitsBalancedBeginEnd) {
  BusGuard guard;
  auto& bus = EventBus::instance();
  const std::uint32_t track = bus.track("nest");
  obs::Span outer = obs::Span::begin(Subsystem::kSched, obs::ev::kAdmission,
                                     track, 1000, 7);
  obs::Span inner = obs::Span::begin(Subsystem::kSched, obs::ev::kMigrate,
                                     track, 1500);
  EXPECT_TRUE(outer.open());
  EXPECT_TRUE(inner.open());
  EXPECT_EQ(inner.end(2500), 1000);
  EXPECT_EQ(outer.end(4000), 3000);
  EXPECT_FALSE(outer.open());
  // Ending a closed span is a harmless no-op.
  EXPECT_EQ(outer.end(9000), 0);

  const auto events = bus.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, EventKind::kBegin);
  EXPECT_EQ(events[0].code, obs::ev::kAdmission);
  EXPECT_EQ(events[1].kind, EventKind::kBegin);
  EXPECT_EQ(events[1].code, obs::ev::kMigrate);
  EXPECT_EQ(events[2].kind, EventKind::kEnd);
  EXPECT_EQ(events[2].code, obs::ev::kMigrate);
  EXPECT_EQ(events[3].kind, EventKind::kEnd);
  EXPECT_EQ(events[3].code, obs::ev::kAdmission);
}

TEST(EventBus, SpanEndFeedsHistogramInCycles) {
  BusGuard guard;
  obs::Histogram hist;
  obs::Span span = obs::Span::begin(Subsystem::kReconfig,
                                    obs::ev::kArray2Icap, 0, 0);
  span.end(5'000'000, &hist, /*cycles=*/123);
  ASSERT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.sum(), 123u);  // cycles, not picoseconds
}

// ------------------------------------------------------------ Registry

TEST(Registry, CounterGaugeHistogramRoundTrip) {
  auto& reg = obs::Registry::instance();
  reg.reset();
  reg.counter("t.counter").add(3);
  reg.counter("t.counter").add();
  reg.gauge("t.gauge").set(-42);
  auto& h = reg.histogram("t.hist");
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 100u, 1024u}) h.record(v);

  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto counter_it =
      std::find_if(snap.counters.begin(), snap.counters.end(),
                   [](const auto& p) { return p.first == "t.counter"; });
  ASSERT_NE(counter_it, snap.counters.end());
  EXPECT_EQ(counter_it->second, 4u);
  const auto gauge_it =
      std::find_if(snap.gauges.begin(), snap.gauges.end(),
                   [](const auto& p) { return p.first == "t.gauge"; });
  ASSERT_NE(gauge_it, snap.gauges.end());
  EXPECT_EQ(gauge_it->second, -42);
  const auto hist_it =
      std::find_if(snap.histograms.begin(), snap.histograms.end(),
                   [](const auto& s) { return s.name == "t.hist"; });
  ASSERT_NE(hist_it, snap.histograms.end());
  EXPECT_EQ(hist_it->count, 6u);
  EXPECT_EQ(hist_it->min, 0u);
  EXPECT_EQ(hist_it->max, 1024u);

  const std::string text = snap.to_string();
  EXPECT_NE(text.find("t.counter"), std::string::npos);
  EXPECT_NE(text.find("t.gauge"), std::string::npos);
  EXPECT_NE(text.find("t.hist"), std::string::npos);

  // reset() zeroes values but keeps registrations (references stay valid).
  reg.reset();
  EXPECT_EQ(reg.counter("t.counter").value(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, HistogramLog2BucketsAndPercentiles) {
  obs::Histogram h;
  h.record(0);
  EXPECT_EQ(h.buckets()[0], 1u);
  h.record(1);
  EXPECT_EQ(h.buckets()[1], 1u);
  h.record(2);
  h.record(3);
  EXPECT_EQ(h.buckets()[2], 2u);
  h.record(1024);  // [2^10, 2^11)
  EXPECT_EQ(h.buckets()[11], 1u);
  h.record(~std::uint64_t{0});  // top bucket; never clips
  EXPECT_EQ(h.buckets()[64], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  // p50 of {0,1,2,3,1024,max}: third value (3) lives in bucket 2,
  // upper bound 2^2 - 1... percentile reports the bucket upper bound.
  EXPECT_LE(h.percentile(0.5), 3u);
  EXPECT_GE(h.percentile(1.0), 1024u);
}

// ----------------------------------------------------------- Exporters

TEST(Exporters, ChromeTraceIsStructurallyValidJson) {
  BusGuard guard;
  auto& bus = EventBus::instance();
  const std::uint32_t track = bus.track("prr\"quoted\"");  // escaping
  obs::Span span = obs::Span::begin(Subsystem::kSwitch,
                                    obs::ev::kStep1Reconfigure, track, 100);
  bus.instant(Subsystem::kBitman, obs::ev::kHit, 0, 150, 1, 2);
  span.end(900);

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();

  // Structural checks a JSON parser would enforce: balanced braces and
  // brackets, no unescaped quote from the track name, the expected
  // phases and names present. (tier1 additionally runs a real parser
  // over the example-produced trace.)
  long depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("step1.reconfigure"), std::string::npos);
  EXPECT_NE(json.find("prr\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
}

TEST(Exporters, VcdTraceHasLanesAndSamples) {
  BusGuard guard;
  auto& bus = EventBus::instance();
  const std::uint32_t track = bus.track("icap");
  obs::Span span = obs::Span::begin(Subsystem::kReconfig,
                                    obs::ev::kArray2Icap, track, 1000);
  span.end(5000);

  std::ostringstream os;
  obs::write_vcd_trace(os);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$var"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("icap"), std::string::npos);
}

// ------------------------------------------- DCR performance counters

TEST(PerfCounters, SelectsAndWrapsAt32Bits) {
  core::PerfCounters pc("pc");
  std::uint64_t words = 0;
  pc.set_source(core::PerfCounters::kSelWordsOut, [&] { return words; });

  EXPECT_EQ(pc.dcr_read(), 0u);  // unwired default select reads source
  words = 7;
  EXPECT_EQ(pc.dcr_read(), 7u);
  words = (1ull << 32) + 5;  // model counts 64-bit, DCR window wraps
  EXPECT_EQ(pc.dcr_read(), 5u);
  EXPECT_EQ(pc.raw(core::PerfCounters::kSelWordsOut), (1ull << 32) + 5);

  pc.dcr_write(core::PerfCounters::kSelStallCycles);
  EXPECT_EQ(pc.dcr_read(), 0u);  // unwired selector reads 0
  pc.dcr_write(99);              // out of range: ignored
  EXPECT_EQ(pc.selected(), core::PerfCounters::kSelStallCycles);
}

// One small-PRR system shared by the full-system tests below.
core::SystemParams small_prr_params() {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  return p;
}

TEST(PerfCounters, PrrCountersReadableOverDcrBus) {
  core::VapresSystem sys(small_prr_params());
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  core::Rsb& rsb = sys.rsb();
  auto up = sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  auto down = sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  ASSERT_TRUE(up && down);
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<comm::Word> {
        return static_cast<comm::Word>(n++);
      },
      /*interval=*/4);
  sys.run_system_cycles(4000);

  const comm::DcrAddress addr = rsb.prr_perf_address(0);
  // The perf bank must not collide with the socket bank.
  EXPECT_NE(addr, rsb.prr_socket_address(0));

  sys.dcr().write(addr, core::PerfCounters::kSelWordsOut);
  const comm::DcrValue words_out = sys.dcr().read(addr);
  sys.dcr().write(addr, core::PerfCounters::kSelWordsIn);
  const comm::DcrValue words_in = sys.dcr().read(addr);
  EXPECT_GT(words_in, 0u);
  EXPECT_GT(words_out, 0u);
  EXPECT_EQ(words_out,
            static_cast<comm::DcrValue>(
                rsb.prr(0).producer(0).words_sent() & 0xFFFFFFFFull));

  // The software path reads the same register through the bridge.
  sys.mb().dcr_write(addr, core::PerfCounters::kSelWordsIn);
  EXPECT_EQ(sys.mb().dcr_read(addr), words_in);
}

TEST(DcrCounterMonitor, DeltaSurvivesCounterWrap) {
  sim::Simulator sim;
  sim::ClockDomain& clk = sim.create_domain("clk", 100.0);
  comm::DcrBus dcr;
  proc::Microblaze mb("mb", clk, dcr);

  core::PerfCounters pc("pc");
  std::uint64_t value = 0xFFFFFE00ull;  // low 32 bits near wrap
  pc.set_source(core::PerfCounters::kSelWordsOut, [&] { return value; });
  dcr.map(0x180, &pc);

  std::vector<comm::Word> deltas;
  core::DcrCounterMonitor mon(
      "mon", 0x180, core::PerfCounters::kSelWordsOut,
      [&deltas](comm::Word d) {
        deltas.push_back(d);
        return false;  // never fire: keep sampling
      },
      [] {}, /*period_quanta=*/1);
  mon.start_polling(mb);

  // Each select+read pair holds the bridge ~12 cycles, so 5-cycle steps
  // land at most one new sample per iteration.
  auto next_delta = [&](std::uint64_t inc) {
    const std::size_t before = deltas.size();
    value += inc;
    while (deltas.size() == before) sim.run_cycles(clk, 5);
    return deltas.back();
  };

  // The priming read sets the baseline without evaluating the trigger;
  // the first evaluated sample of an idle counter reads a zero delta.
  while (deltas.empty()) sim.run_cycles(clk, 5);
  EXPECT_EQ(deltas.front(), 0u);

  EXPECT_EQ(next_delta(0x100), 0x100u);  // still below 2^32
  // Cross the 32-bit boundary: raw DCR value wraps, delta must not.
  EXPECT_EQ(next_delta(0x300), 0x300u);
  EXPECT_EQ(value & 0xFFFFFFFFull, 0x200ull);  // proves we wrapped
  dcr.unmap(0x180);
  mb.remove_task(&mon);
}

TEST(DcrCounterMonitor, ThresholdTriggerRearmsAcrossWrap) {
  // The standard hysteresis trigger fed with monitor-computed deltas:
  // an excursion before the wrap fires, low deltas re-arm, and the
  // wrap-crossing excursion fires again — rate monitoring is oblivious
  // to the 32-bit window.
  sim::Simulator sim;
  sim::ClockDomain& clk = sim.create_domain("clk", 100.0);
  comm::DcrBus dcr;
  proc::Microblaze mb("mb", clk, dcr);

  core::PerfCounters pc("pc");
  std::uint64_t value = 0xFFFFF000ull;
  pc.set_source(core::PerfCounters::kSelWordsOut, [&] { return value; });
  dcr.map(0x180, &pc);

  core::ThresholdTrigger trig(/*high=*/0x200, /*low=*/0x40);
  std::vector<bool> fires;
  core::DcrCounterMonitor mon(
      "mon", 0x180, core::PerfCounters::kSelWordsOut,
      [&](comm::Word d) {
        fires.push_back(trig(d));
        return false;  // record, never deschedule
      },
      [] {}, /*period_quanta=*/1);
  mon.start_polling(mb);

  // Advance the counter and wait for the trigger verdict on exactly the
  // next sample (each sample holds the bridge ~12 cycles, so 5-cycle
  // steps cannot skip one).
  auto sample_with_increment = [&](std::uint64_t inc) {
    const std::size_t before = fires.size();
    value += inc;
    while (fires.size() == before) sim.run_cycles(clk, 5);
    return static_cast<bool>(fires.back());
  };

  while (mon.samples() == 0) sim.run_cycles(clk, 5);  // prime
  EXPECT_TRUE(sample_with_increment(0x300));   // excursion: fires
  EXPECT_FALSE(sample_with_increment(0x10));   // below low: re-arms
  // This increment carries the low 32 bits across 2^32.
  ASSERT_LT(0xFFFFFFFFull - (value & 0xFFFFFFFFull), 0x2000ull);
  EXPECT_TRUE(sample_with_increment(0x1500));  // wrap excursion: refires
  dcr.unmap(0x180);
  mb.remove_task(&mon);
}

// ------------------------------------- full-system switch observability

TEST(SwitchTrace, AllNineStepsTracedWithZeroStreamGap) {
  // Kernel sleep/wake instants are frequent over a multi-ms run; a deep
  // ring keeps the early protocol spans from being overwritten.
  BusGuard guard(~0u, /*capacity=*/1u << 20);
  obs::Registry::instance().reset();

  core::VapresSystem sys(small_prr_params());
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  sys.preload_sdram("passthrough", 0, 1);
  core::Rsb& rsb = sys.rsb();
  auto up = sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  auto down = sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  ASSERT_TRUE(up && down);
  rsb.iom(0).set_source_generator(
      [n = 0]() mutable -> std::optional<comm::Word> {
        return static_cast<comm::Word>(n++);
      },
      /*interval=*/4);

  core::SwitchRequest req;
  req.src_prr = 0;
  req.dst_prr = 1;
  req.new_module_id = "passthrough";
  req.upstream = *up;
  req.downstream = *down;
  req.eos_iom = 0;
  core::ModuleSwitcher sw(sys, req);
  sw.begin();
  ASSERT_TRUE(sys.sim().run_until([&] { return sw.done(); },
                                  sim::kPsPerSecond * 120));
  ASSERT_FALSE(sw.aborted());
  sys.run_system_cycles(2000);  // post-switch streaming

  // Every one of the nine steps appears as a balanced span on the
  // switch's own track, in protocol order.
  std::vector<std::uint16_t> begins;
  std::map<std::uint16_t, int> balance;
  std::uint64_t sleeps = 0;
  for (const Event& e : EventBus::instance().snapshot()) {
    if (e.subsystem == Subsystem::kKernel &&
        e.code == obs::ev::kDomainSleep) {
      ++sleeps;
    }
    if (e.subsystem != Subsystem::kSwitch) continue;
    if (e.kind == EventKind::kBegin) {
      begins.push_back(e.code);
      ++balance[e.code];
    }
    if (e.kind == EventKind::kEnd) --balance[e.code];
  }
  ASSERT_EQ(begins.size(),
            static_cast<std::size_t>(obs::ev::kNumSwitchSteps));
  for (std::uint16_t step = 1; step <= obs::ev::kNumSwitchSteps; ++step) {
    EXPECT_EQ(begins[step - 1], step) << "step order broken at " << step;
    EXPECT_EQ(balance[step], 0) << "unbalanced span for step " << step;
  }
  // Activity-driven kernel: the domains slept somewhere in a run this
  // long, and the sleeps are on the trace.
  EXPECT_GT(sleeps, 0u);

  // Per-step latency histograms landed in the registry.
  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  std::set<std::string> names;
  for (const auto& h : snap.histograms) names.insert(h.name);
  for (std::uint16_t step = 1; step <= obs::ev::kNumSwitchSteps; ++step) {
    const std::string name =
        std::string("switch.") +
        obs::event_name(Subsystem::kSwitch, step) + ".cycles";
    EXPECT_TRUE(names.count(name)) << "missing histogram " << name;
  }
  EXPECT_TRUE(names.count("switch.total.cycles"));
  EXPECT_TRUE(names.count("reconfig.array2icap.cycles"));

  // Zero stream gap: the sink saw every word exactly once, in order,
  // across the switch (the EOS control word is filtered by the IOM).
  const std::vector<comm::Word>& words = rsb.iom(0).received(0);
  ASSERT_GT(words.size(), 100u);
  for (std::size_t i = 0; i < words.size(); ++i) {
    ASSERT_EQ(words[i], static_cast<comm::Word>(i))
        << "stream gap at index " << i;
  }
  EXPECT_EQ(rsb.iom(0).eos_seen(), 1u);
}

}  // namespace
}  // namespace vapres
