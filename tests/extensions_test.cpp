// Tests for the extension subsystems: interrupt controller, peripheral
// signal sources, composite (fused) modules, and ICAP readback-verify.
#include <gtest/gtest.h>

#include <cmath>

#include "core/peripherals.hpp"
#include "core/system.hpp"
#include "hwmodule/composite.hpp"
#include "hwmodule/modules.hpp"
#include "proc/interrupt.hpp"
#include "proc/microblaze.hpp"
#include "test_util.hpp"

namespace vapres {
namespace {

using comm::Word;

// --------------------------------------------------------------- interrupts

struct IntcRig {
  sim::Simulator sim;
  sim::ClockDomain* clk;
  comm::DcrBus dcr;
  std::unique_ptr<proc::Microblaze> mb;
  proc::InterruptController intc;

  IntcRig() {
    clk = &sim.create_domain("clk", 100.0);
    mb = std::make_unique<proc::Microblaze>("mb", *clk, dcr);
  }
  void run(sim::Cycles n) { sim.run_cycles(*clk, n); }
};

TEST(InterruptController, LatchesOnlyEnabledSources) {
  proc::InterruptController intc;
  bool level0 = false;
  bool level1 = false;
  const int irq0 = intc.add_source("a", [&] { return level0; });
  const int irq1 = intc.add_source("b", [&] { return level1; });
  intc.enable(irq1);
  level0 = level1 = true;
  intc.sample();
  EXPECT_EQ(intc.next_pending(), irq1);  // irq0 disabled: not latched
  intc.acknowledge(irq1);
  EXPECT_EQ(intc.next_pending(), -1);
  intc.enable(irq0);
  intc.sample();
  EXPECT_EQ(intc.next_pending(), irq0);
  EXPECT_EQ(intc.source_name(irq0), "a");
}

TEST(InterruptController, DisableClearsPending) {
  proc::InterruptController intc;
  bool level = true;
  const int irq = intc.add_source("a", [&] { return level; });
  intc.enable(irq);
  intc.sample();
  EXPECT_EQ(intc.next_pending(), irq);
  intc.enable(irq, false);
  EXPECT_EQ(intc.next_pending(), -1);
}

TEST(InterruptController, LowestNumberWins) {
  proc::InterruptController intc;
  bool a = true;
  bool b = true;
  const int i0 = intc.add_source("a", [&] { return a; });
  const int i1 = intc.add_source("b", [&] { return b; });
  intc.enable(i0);
  intc.enable(i1);
  intc.sample();
  EXPECT_EQ(intc.next_pending(), i0);
  intc.acknowledge(i0);
  a = false;
  EXPECT_EQ(intc.next_pending(), i1);
}

TEST(Microblaze, InterruptPreemptsTasksAndChargesOverhead) {
  IntcRig rig;
  comm::FslLink link("r", 16);
  const int irq =
      rig.intc.add_source("fsl", [&link] { return link.can_read(); });
  rig.intc.enable(irq);

  std::vector<Word> handled;
  rig.mb->attach_interrupts(&rig.intc,
                            [&](int which, proc::Microblaze&) {
                              ASSERT_EQ(which, irq);
                              handled.push_back(link.read());
                            });
  int task_steps = 0;
  proc::FunctionTask background("bg", [&](proc::Microblaze&) {
    ++task_steps;
    return false;
  });
  rig.mb->add_task(&background);

  rig.run(10);
  EXPECT_EQ(rig.mb->interrupts_serviced(), 0u);
  const int steps_before = task_steps;

  link.write(42);
  rig.run(20);
  ASSERT_EQ(handled, (std::vector<Word>{42}));
  EXPECT_EQ(rig.mb->interrupts_serviced(), 1u);
  // ISR + its overhead displaced background quanta.
  EXPECT_LT(task_steps - steps_before, 20);
  // Afterwards the background task runs again.
  rig.run(5);
  EXPECT_GT(task_steps - steps_before, 5);
}

TEST(Microblaze, LevelSourceRelatchesWhileDataRemains) {
  IntcRig rig;
  comm::FslLink link("r", 16);
  const int irq =
      rig.intc.add_source("fsl", [&link] { return link.can_read(); });
  rig.intc.enable(irq);
  std::vector<Word> handled;
  rig.mb->attach_interrupts(&rig.intc, [&](int, proc::Microblaze&) {
    handled.push_back(link.read());
  });
  link.write(1);
  link.write(2);
  link.write(3);
  rig.run(60);
  EXPECT_EQ(handled, (std::vector<Word>{1, 2, 3}));
}

// -------------------------------------------------------------- peripherals

TEST(Peripherals, SineMatchesTableAndPeriod) {
  namespace pp = core::peripherals;
  auto gen = pp::sine_source(1000, 5000, 64, 128);
  std::vector<std::int32_t> samples;
  while (auto w = gen()) {
    samples.push_back(static_cast<std::int32_t>(*w));
  }
  ASSERT_EQ(samples.size(), 128u);
  EXPECT_EQ(samples[0], 5000);         // sin(0) = 0
  EXPECT_EQ(samples[16], 6000);        // peak at period/4
  EXPECT_EQ(samples[32], 5000);        // zero crossing
  EXPECT_EQ(samples[48], 4000);        // trough
  // Periodicity.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(samples[static_cast<std::size_t>(i)],
              samples[static_cast<std::size_t>(i + 64)]);
  }
}

TEST(Peripherals, NoiseBoundedAndDeterministic) {
  namespace pp = core::peripherals;
  auto a = pp::noise_source(100, 1000, 7, 500);
  auto b = pp::noise_source(100, 1000, 7, 500);
  for (int i = 0; i < 500; ++i) {
    const auto va = a();
    const auto vb = b();
    ASSERT_TRUE(va && vb);
    EXPECT_EQ(*va, *vb);
    const auto v = static_cast<std::int32_t>(*va);
    EXPECT_GE(v, 900);
    EXPECT_LE(v, 1100);
  }
  EXPECT_FALSE(a().has_value());
}

TEST(Peripherals, SquareAndRamp) {
  namespace pp = core::peripherals;
  auto sq = pp::square_source(1, 9, 2, 8);
  std::vector<Word> s;
  while (auto w = sq()) s.push_back(*w);
  EXPECT_EQ(s, (std::vector<Word>{1, 1, 9, 9, 1, 1, 9, 9}));

  auto rp = pp::ramp_source(3, 4);
  std::vector<Word> r;
  while (auto w = rp()) r.push_back(*w);
  EXPECT_EQ(r, (std::vector<Word>{0, 3, 6, 9}));
}

TEST(Peripherals, MixSumsAndEndsWithShorter) {
  namespace pp = core::peripherals;
  auto m = pp::mix(pp::ramp_source(1, 3), pp::square_source(10, 20, 1, 10));
  std::vector<Word> v;
  while (auto w = m()) v.push_back(*w);
  EXPECT_EQ(v, (std::vector<Word>{10, 21, 12}));
}

TEST(Peripherals, DriveIomEndToEnd) {
  namespace pp = core::peripherals;
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 2;
  core::VapresSystem sys(std::move(p));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  core::Rsb& rsb = sys.rsb();
  sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  sys.rsb().iom(0).set_source_generator(
      pp::sine_source(500, 2048, 32, 96));
  sys.run_system_cycles(400);
  ASSERT_EQ(sys.rsb().iom(0).received().size(), 96u);
  EXPECT_EQ(sys.rsb().iom(0).received()[8], 2548u);  // peak
}

// ---------------------------------------------------------------- composite

std::unique_ptr<hwmodule::CompositeBehavior> make_chain() {
  std::vector<std::unique_ptr<hwmodule::ModuleBehavior>> stages;
  stages.push_back(std::make_unique<hwmodule::Gain>("g2", 2, 0));
  stages.push_back(std::make_unique<hwmodule::AddOffset>("o5", 5));
  stages.push_back(std::make_unique<hwmodule::Gain>("g3", 3, 0));
  return std::make_unique<hwmodule::CompositeBehavior>("fused",
                                                       std::move(stages));
}

TEST(Composite, MatchesSequentialApplication) {
  auto fused = make_chain();
  const std::vector<Word> in{1, 2, 3, 10, 100};
  const auto out = test::run_behavior(*fused, in);
  std::vector<Word> golden;
  for (Word x : in) golden.push_back((x * 2 + 5) * 3);
  EXPECT_EQ(out, golden);
  EXPECT_TRUE(fused->pipeline_empty());
}

TEST(Composite, OneWordPerCycleSteadyState) {
  auto fused = make_chain();
  test::PortsStub ports;
  for (Word w = 0; w < 20; ++w) ports.input().push_back(w);
  // After the 3-stage pipeline fills, each cycle emits one word.
  int filled_at = -1;
  for (int cycle = 0; cycle < 30; ++cycle) {
    const auto before = ports.output().size();
    fused->on_cycle(ports);
    if (filled_at < 0 && ports.output().size() > before) filled_at = cycle;
  }
  EXPECT_GE(filled_at, 0);
  EXPECT_LE(filled_at, 3);
  EXPECT_EQ(ports.output().size(), 20u);
}

TEST(Composite, StateTransferMidStream) {
  auto a = make_chain();
  test::PortsStub ports_a;
  for (Word w = 1; w <= 9; ++w) ports_a.input().push_back(w);
  // Run A partially: pipeline holds in-flight words.
  for (int i = 0; i < 5; ++i) a->on_cycle(ports_a);
  EXPECT_FALSE(a->pipeline_empty());

  auto b = make_chain();
  b->restore_state(a->save_state());

  // B continues with A's remaining input; outputs concatenate to the
  // full golden sequence.
  test::PortsStub ports_b;
  ports_b.input() = ports_a.input();
  std::vector<Word> out = ports_a.output();
  for (int i = 0; i < 40 && (!ports_b.input().empty() ||
                             !b->pipeline_empty());
       ++i) {
    b->on_cycle(ports_b);
  }
  out.insert(out.end(), ports_b.output().begin(), ports_b.output().end());
  std::vector<Word> golden;
  for (Word x = 1; x <= 9; ++x) golden.push_back((x * 2 + 5) * 3);
  EXPECT_EQ(out, golden);
}

TEST(Composite, RejectsMalformedState) {
  auto fused = make_chain();
  EXPECT_THROW(fused->restore_state(std::vector<Word>{1}), ModelError);
  auto good = fused->save_state();
  good.push_back(0xDEAD);
  EXPECT_THROW(fused->restore_state(good), ModelError);
}

TEST(Composite, RunsInsidePrrViaCustomLibrary) {
  auto lib = hwmodule::ModuleLibrary::standard();
  lib.register_module({"fused_chain", "gain*2 +5 gain*3 fused",
                       fabric::ResourceVector{230, 0, 0}, 1, 1, [] {
                         return std::unique_ptr<hwmodule::ModuleBehavior>(
                             make_chain().release());
                       }});
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  core::VapresSystem sys(std::move(p), std::move(lib));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "fused_chain");
  core::Rsb& rsb = sys.rsb();
  sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  sys.rsb().iom(0).set_source_data({1, 2, 3});
  sys.run_system_cycles(200);
  EXPECT_EQ(sys.rsb().iom(0).received(),
            (std::vector<Word>{21, 27, 33}));
}

// ------------------------------------------------------------------- verify

TEST(ReconfigVerify, ReadbackDoublesIcapShare) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 2;
  core::VapresSystem sys(std::move(p));
  const sim::Cycles plain = sys.reconfigure_now(0, 0, "passthrough");
  sys.reconfig().set_verify_after_write(true);
  const sim::Cycles verified = sys.reconfigure_now(0, 1, "passthrough");
  const auto est = core::ReconfigManager::estimate_array2icap(8240);
  EXPECT_NEAR(static_cast<double>(verified - plain), est.icap_cycles,
              2.0);
  EXPECT_EQ(sys.reconfig().last_breakdown().icap_cycles,
            2.0 * est.icap_cycles);
}

}  // namespace
}  // namespace vapres
