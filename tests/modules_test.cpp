// Hardware-module behaviour tests: each built-in module against an
// independent golden model, state save/restore round-trips, KPN firing
// discipline, and the module library.
#include <gtest/gtest.h>

#include <deque>

#include "hwmodule/library.hpp"
#include "hwmodule/modules.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace vapres::hwmodule {
namespace {

using comm::Word;
using test::PortsStub;
using test::run_behavior;

std::vector<Word> random_words(int n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<Word> v(static_cast<std::size_t>(n));
  for (auto& w : v) w = static_cast<Word>(rng.next());
  return v;
}

// ----------------------------------------------------------------- golden
// Independent reference implementations (plain loops, no shared code with
// the behaviours under test).

std::vector<Word> golden_moving_average(const std::vector<Word>& in,
                                        int window_log2) {
  const int w = 1 << window_log2;
  std::deque<Word> line(static_cast<std::size_t>(w), 0);
  std::vector<Word> out;
  std::uint64_t sum = 0;
  for (Word x : in) {
    sum -= line.front();
    line.pop_front();
    line.push_back(x);
    sum += x;
    out.push_back(static_cast<Word>(sum >> window_log2));
  }
  return out;
}

std::vector<Word> golden_fir(const std::vector<Word>& in,
                             const std::vector<std::int32_t>& taps) {
  std::vector<Word> line(taps.size(), 0);
  std::vector<Word> out;
  for (Word x : in) {
    for (std::size_t i = line.size() - 1; i > 0; --i) line[i] = line[i - 1];
    line[0] = x;
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < taps.size(); ++i) {
      acc += static_cast<std::int64_t>(taps[i]) *
             static_cast<std::int32_t>(line[i]);
    }
    out.push_back(static_cast<Word>(static_cast<std::uint64_t>(acc) >> 15));
  }
  return out;
}

// ------------------------------------------------------------- behaviours

TEST(Passthrough, Identity) {
  Passthrough m;
  const auto in = random_words(100, 1);
  EXPECT_EQ(run_behavior(m, in), in);
}

TEST(Gain, MultipliesQ16) {
  Gain m("g", 3u << 16, 16);  // x3
  const auto out = run_behavior(m, {1, 2, 100});
  EXPECT_EQ(out, (std::vector<Word>{3, 6, 300}));
}

TEST(Gain, FractionalAndWraparound) {
  Gain half("g", 1u << 15, 16);  // x0.5
  EXPECT_EQ(run_behavior(half, {8, 9}), (std::vector<Word>{4, 4}));
  Gain big("g", 0xFFFFFFFFu, 0);
  const auto out = run_behavior(big, {2});
  EXPECT_EQ(out[0], static_cast<Word>(2ull * 0xFFFFFFFFull));
}

TEST(Gain, StateRoundTrip) {
  Gain m("g", 7, 0);
  const auto st = m.save_state();
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0], 7u);
  Gain fresh("g", 1, 0);
  fresh.restore_state(st);
  EXPECT_EQ(fresh.multiplier(), 7u);
  EXPECT_THROW(fresh.restore_state(std::vector<Word>{1, 2}), ModelError);
}

TEST(AddOffset, AddsWithWrap) {
  AddOffset m("o", 100);
  EXPECT_EQ(run_behavior(m, {1, 0xFFFFFFFFu}),
            (std::vector<Word>{101, 99}));
}

class MovingAverageSweep : public ::testing::TestWithParam<int> {};

TEST_P(MovingAverageSweep, MatchesGolden) {
  const int wlog = GetParam();
  MovingAverage m("ma", wlog);
  const auto in = random_words(300, 42 + static_cast<std::uint64_t>(wlog));
  EXPECT_EQ(run_behavior(m, in), golden_moving_average(in, wlog));
}

INSTANTIATE_TEST_SUITE_P(Windows, MovingAverageSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8));

TEST(MovingAverage, StateTransferPreservesContinuity) {
  // Process a prefix in one instance, transfer state, continue in a fresh
  // instance: the concatenated output must equal a single-instance run.
  const auto in = random_words(200, 7);
  const std::vector<Word> head(in.begin(), in.begin() + 120);
  const std::vector<Word> tail(in.begin() + 120, in.end());

  MovingAverage a("ma", 3);
  auto out = run_behavior(a, head);
  MovingAverage b("ma", 3);
  b.restore_state(a.save_state());
  const auto out2 = run_behavior(b, tail);
  out.insert(out.end(), out2.begin(), out2.end());

  MovingAverage whole("ma", 3);
  EXPECT_EQ(out, run_behavior(whole, in));
}

TEST(MovingAverage, RestoreRejectsWrongWindow) {
  MovingAverage a("ma4", 2);
  MovingAverage b("ma8", 3);
  EXPECT_THROW(b.restore_state(a.save_state()), ModelError);
}

TEST(MovingAverage, MonitoringEmitsEveryInterval) {
  MovingAverage m("ma", 2, /*monitor_interval=*/16);
  PortsStub ports;
  ports.input() = random_words(64, 3);
  for (int i = 0; i < 64; ++i) m.on_cycle(ports);
  EXPECT_EQ(ports.fsl_out().size(), 4u);  // 64 / 16
}

class FirSweep : public ::testing::TestWithParam<int> {};

TEST_P(FirSweep, MatchesGolden) {
  std::vector<std::int32_t> taps;
  sim::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  const int n_taps = 1 + static_cast<int>(rng.next_below(16));
  for (int i = 0; i < n_taps; ++i) {
    taps.push_back(static_cast<std::int32_t>(rng.next_below(32768)) - 16384);
  }
  FirFilter m("fir", taps);
  const auto in = random_words(200, 99 + static_cast<std::uint64_t>(GetParam()));
  EXPECT_EQ(run_behavior(m, in), golden_fir(in, taps));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirSweep, ::testing::Range(1, 11));

TEST(FirFilter, StateTransferPreservesContinuity) {
  const std::vector<std::int32_t> taps{8192, 8192, 8192, 8192};
  const auto in = random_words(100, 5);
  FirFilter a("fir", taps);
  auto out = run_behavior(
      a, std::vector<Word>(in.begin(), in.begin() + 60));
  FirFilter b("fir", taps);
  b.restore_state(a.save_state());
  const auto out2 =
      run_behavior(b, std::vector<Word>(in.begin() + 60, in.end()));
  out.insert(out.end(), out2.begin(), out2.end());
  FirFilter whole("fir", taps);
  EXPECT_EQ(out, run_behavior(whole, in));
}

TEST(Decimator, KeepsEveryNth) {
  Decimator m("d", 3);
  EXPECT_EQ(run_behavior(m, {0, 1, 2, 3, 4, 5, 6}),
            (std::vector<Word>{0, 3, 6}));
}

TEST(Decimator, PhaseSurvivesStateTransfer) {
  Decimator a("d", 3);
  run_behavior(a, {0, 1});  // phase now 2
  Decimator b("d", 3);
  b.restore_state(a.save_state());
  EXPECT_EQ(run_behavior(b, {2, 3, 4, 5}), (std::vector<Word>{3}));
}

TEST(Upsampler, RepeatsAndReportsPipeline) {
  Upsampler m("u", 3);
  PortsStub ports;
  ports.input() = {7};
  m.on_cycle(ports);
  EXPECT_FALSE(m.pipeline_empty());  // 2 repeats still pending
  m.on_cycle(ports);
  m.on_cycle(ports);
  EXPECT_TRUE(m.pipeline_empty());
  EXPECT_EQ(ports.output(), (std::vector<Word>{7, 7, 7}));
}

TEST(Upsampler, FullRun) {
  Upsampler m("u", 2);
  EXPECT_EQ(run_behavior(m, {1, 2}), (std::vector<Word>{1, 1, 2, 2}));
}

TEST(DelayLine, DelaysByDepth) {
  DelayLine m("dl", 3);
  EXPECT_EQ(run_behavior(m, {10, 20, 30, 40, 50}),
            (std::vector<Word>{0, 0, 0, 10, 20}));
}

TEST(DelayLine, StateRoundTrip) {
  DelayLine a("dl", 2);
  run_behavior(a, {1, 2});
  DelayLine b("dl", 2);
  b.restore_state(a.save_state());
  EXPECT_EQ(run_behavior(b, {3, 4}), (std::vector<Word>{1, 2}));
}

TEST(Checksum, PassthroughWithRunningSum) {
  Checksum m;
  EXPECT_EQ(run_behavior(m, {1, 2, 3}), (std::vector<Word>{1, 2, 3}));
  EXPECT_EQ(m.sum(), 6u);
}

TEST(Checksum, StateCarries64BitSum) {
  Checksum a;
  run_behavior(a, {0xFFFFFFFFu, 0xFFFFFFFFu});
  Checksum b;
  b.restore_state(a.save_state());
  EXPECT_EQ(b.sum(), 2ull * 0xFFFFFFFFull);
}

TEST(Adder2, FiresOnlyWithBothInputs) {
  Adder2 m;
  PortsStub ports(2, 1);
  ports.input(0) = {1, 2};
  m.on_cycle(ports);
  EXPECT_TRUE(ports.output().empty());  // second input empty: blocked
  ports.input(1) = {10};
  m.on_cycle(ports);
  EXPECT_EQ(ports.output(), (std::vector<Word>{11}));
}

TEST(Splitter2, CopiesToBothOutputs) {
  Splitter2 m;
  PortsStub ports(1, 2);
  ports.input() = {5, 6};
  m.on_cycle(ports);
  m.on_cycle(ports);
  EXPECT_EQ(ports.output(0), (std::vector<Word>{5, 6}));
  EXPECT_EQ(ports.output(1), (std::vector<Word>{5, 6}));
}

TEST(Threshold, SuppressesSmallMagnitudes) {
  Threshold m("t", 100);
  EXPECT_EQ(run_behavior(m, {5, 100, 99, 5000}),
            (std::vector<Word>{100, 5000}));
  const auto st = m.save_state();
  EXPECT_EQ(st, (std::vector<Word>{2, 2}));  // passed, suppressed
}

TEST(FslBridges, RoundTrip) {
  FslBridgeOut out_bridge;
  PortsStub out_ports;
  out_ports.input() = {1, 2, 3};
  for (int i = 0; i < 3; ++i) out_bridge.on_cycle(out_ports);
  EXPECT_EQ(out_ports.fsl_out(), (std::vector<Word>{1, 2, 3}));

  FslBridgeIn in_bridge;
  PortsStub in_ports;
  in_ports.fsl_in() = {4, 5};
  for (int i = 0; i < 2; ++i) in_bridge.on_cycle(in_ports);
  EXPECT_EQ(in_ports.output(), (std::vector<Word>{4, 5}));
}

TEST(KpnDiscipline, NoInputConsumedWhenOutputBlocked) {
  // Every 1-in-1-out behaviour must hold its input while the output is
  // blocked — the blocking-write half of the KPN semantics.
  const auto check = [](ModuleBehavior& m) {
    PortsStub ports;
    ports.input() = {1, 2, 3};
    ports.set_output_blocked(true);
    for (int i = 0; i < 10; ++i) m.on_cycle(ports);
    EXPECT_EQ(ports.input().size(), 3u) << m.type_id();
    ports.set_output_blocked(false);
    for (int i = 0; i < 20; ++i) m.on_cycle(ports);
    EXPECT_TRUE(ports.input().empty()) << m.type_id();
  };
  Passthrough p;
  check(p);
  Gain g("g", 2, 0);
  check(g);
  MovingAverage ma("ma", 2);
  check(ma);
  FirFilter fir("fir", {1000, 2000});
  check(fir);
  DelayLine dl("dl", 4);
  check(dl);
  Checksum cs;
  check(cs);
  Upsampler up("u", 2);
  check(up);
}

// ------------------------------------------------------------------ IIR etc.

std::vector<Word> golden_biquad(const std::vector<Word>& in,
                                const IirBiquad::Coefficients& c) {
  std::int32_t x1 = 0, x2 = 0, y1 = 0, y2 = 0;
  std::vector<Word> out;
  for (Word w : in) {
    const auto x0 = static_cast<std::int32_t>(w);
    const std::int64_t acc = static_cast<std::int64_t>(c.b0) * x0 +
                             static_cast<std::int64_t>(c.b1) * x1 +
                             static_cast<std::int64_t>(c.b2) * x2 -
                             static_cast<std::int64_t>(c.a1) * y1 -
                             static_cast<std::int64_t>(c.a2) * y2;
    const auto y0 = static_cast<std::int32_t>(
        static_cast<std::uint64_t>(acc) >> 14);
    x2 = x1;
    x1 = x0;
    y2 = y1;
    y1 = y0;
    out.push_back(static_cast<Word>(y0));
  }
  return out;
}

class BiquadSweep : public ::testing::TestWithParam<int> {};

TEST_P(BiquadSweep, MatchesGolden) {
  sim::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  const IirBiquad::Coefficients c{
      static_cast<std::int32_t>(rng.next_below(32768)) - 16384,
      static_cast<std::int32_t>(rng.next_below(32768)) - 16384,
      static_cast<std::int32_t>(rng.next_below(32768)) - 16384,
      static_cast<std::int32_t>(rng.next_below(16384)) - 8192,
      static_cast<std::int32_t>(rng.next_below(16384)) - 8192};
  IirBiquad m("iir", c);
  const auto in = random_words(200, 31 + static_cast<std::uint64_t>(GetParam()));
  EXPECT_EQ(run_behavior(m, in), golden_biquad(in, c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BiquadSweep, ::testing::Range(1, 9));

TEST(IirBiquad, StateTransferPreservesContinuity) {
  const IirBiquad::Coefficients c{16384, -16384, 0, -15360, 0};
  const auto in = random_words(100, 77);
  IirBiquad a("iir", c);
  auto out =
      run_behavior(a, std::vector<Word>(in.begin(), in.begin() + 40));
  IirBiquad b("iir", c);
  b.restore_state(a.save_state());
  const auto out2 =
      run_behavior(b, std::vector<Word>(in.begin() + 40, in.end()));
  out.insert(out.end(), out2.begin(), out2.end());
  IirBiquad whole("iir", c);
  EXPECT_EQ(out, run_behavior(whole, in));
}

TEST(IirBiquad, DcBlockerRemovesDcAsymptotically) {
  // Constant input through the library's DC blocker decays toward zero.
  const IirBiquad::Coefficients c{16384, -16384, 0, -15360, 0};
  IirBiquad m("iir", c);
  std::vector<Word> in(200, 1000);
  const auto out = run_behavior(m, in);
  EXPECT_EQ(out[0], 1000u);  // step passes initially...
  // ...and the tail has decayed to (near) zero.
  EXPECT_LT(static_cast<std::int32_t>(out.back()), 10);
  EXPECT_GE(static_cast<std::int32_t>(out.back()), 0);
}

TEST(Saturate, ClampsBothSides) {
  Saturate m("sat", 100);
  const std::vector<Word> in{
      50, 150, static_cast<Word>(-150), static_cast<Word>(-50), 100};
  EXPECT_EQ(run_behavior(m, in),
            (std::vector<Word>{50, 100, static_cast<Word>(-100),
                               static_cast<Word>(-50), 100}));
}

TEST(Saturate, RejectsNonPositiveLimit) {
  EXPECT_THROW(Saturate("sat", 0), ModelError);
}

TEST(PeakHold, TracksRunningMaximum) {
  PeakHold m;
  EXPECT_EQ(run_behavior(m, {3, 1, 7, 2, 9, 4}),
            (std::vector<Word>{3, 3, 7, 7, 9, 9}));
  EXPECT_EQ(m.save_state(), (std::vector<Word>{9}));
  m.reset();
  EXPECT_EQ(run_behavior(m, {1}), (std::vector<Word>{1}));
}

TEST(PeakHold, StateRoundTrip) {
  PeakHold a;
  run_behavior(a, {42});
  PeakHold b;
  b.restore_state(a.save_state());
  EXPECT_EQ(run_behavior(b, {10}), (std::vector<Word>{42}));
}

// ------------------------------------------------------------------ library

TEST(Library, StandardContainsDocumentedModules) {
  const auto lib = ModuleLibrary::standard();
  for (const char* id :
       {"passthrough", "gain_x2", "ma4", "ma8", "fir4_smooth",
        "fir8_lowpass", "fir16_sharp", "decim2", "upsample2", "delay16",
        "checksum", "adder2", "splitter2", "threshold_1k", "fsl_bridge_in",
        "fsl_bridge_out"}) {
    EXPECT_TRUE(lib.contains(id)) << id;
  }
}

TEST(Library, InstantiateProducesMatchingTypeId) {
  const auto lib = ModuleLibrary::standard();
  for (const auto& id : lib.list()) {
    EXPECT_EQ(lib.instantiate(id)->type_id(), id);
  }
}

TEST(Library, ResourceFootprintsFitPrototypePrrExceptLarge) {
  const auto lib = ModuleLibrary::standard();
  const fabric::ResourceVector prr{640, 8, 8};  // prototype PRR + hard IP
  EXPECT_TRUE(lib.info("fir8_lowpass").resources.fits_in(prr));
  EXPECT_FALSE(lib.info("fir16_sharp").resources.fits_in(prr));
}

TEST(Library, PortSignatures) {
  const auto lib = ModuleLibrary::standard();
  EXPECT_EQ(lib.info("adder2").num_inputs, 2);
  EXPECT_EQ(lib.info("splitter2").num_outputs, 2);
  EXPECT_EQ(lib.info("fsl_bridge_in").num_inputs, 0);
}

TEST(Library, DuplicateRegistrationRejected) {
  auto lib = ModuleLibrary::standard();
  EXPECT_THROW(lib.register_module(
                   {"passthrough", "", {1, 0, 0}, 1, 1,
                    [] { return std::make_unique<Passthrough>(); }}),
               ModelError);
}

TEST(Library, UnknownModuleThrows) {
  const auto lib = ModuleLibrary::standard();
  EXPECT_FALSE(lib.contains("nonexistent"));
  EXPECT_THROW(lib.info("nonexistent"), ModelError);
}

}  // namespace
}  // namespace vapres::hwmodule
