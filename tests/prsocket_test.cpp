// PRSocket tests: every Table-1 DCR bit and the MUX_sel field encoding.
#include <gtest/gtest.h>

#include "comm/dcr.hpp"
#include "core/prsocket.hpp"
#include "hwmodule/modules.hpp"
#include "sim/simulator.hpp"

namespace vapres::core {
namespace {

using comm::DcrValue;

struct Rig {
  sim::Simulator sim;
  sim::ClockDomain* static_clk;
  sim::ClockDomain* prr_clk;
  comm::SwitchBox box{"sw", comm::SwitchBoxShape{2, 2, 1, 1}};
  comm::ProducerInterface producer{"p", 16};
  comm::ConsumerInterface consumer{"c", 16};
  comm::FslLink r{"r", 16};
  comm::FslLink t{"t", 16};
  std::unique_ptr<hwmodule::ModuleWrapper> wrapper;
  std::unique_ptr<fabric::PrrClockTree> tree;
  std::unique_ptr<PrSocket> socket;

  Rig() {
    static_clk = &sim.create_domain("clk_sys", 100.0);
    prr_clk = &sim.create_domain("clk_prr", 100.0);
    wrapper = std::make_unique<hwmodule::ModuleWrapper>(
        "w", std::vector<comm::ConsumerInterface*>{&consumer},
        std::vector<comm::ProducerInterface*>{&producer}, &r, &t);
    tree = std::make_unique<fabric::PrrClockTree>(
        fabric::Bufr("b", fabric::ClockRegionId{0, 0}),
        fabric::Bufgmux(100.0, 50.0), *prr_clk);
    socket = std::make_unique<PrSocket>(
        "sock", &box, std::vector<comm::ProducerInterface*>{&producer},
        std::vector<comm::ConsumerInterface*>{&consumer}, &r, &t,
        wrapper.get(), tree.get());
  }
};

TEST(PrSocket, PowerOnStateIsSafe) {
  Rig rig;
  EXPECT_TRUE(rig.wrapper->isolated());      // SM_en = 0
  EXPECT_FALSE(rig.prr_clk->enabled());      // CLK_en = 0
  EXPECT_FALSE(rig.producer.read_enable());  // FIFO_ren = 0
  EXPECT_FALSE(rig.consumer.write_enable()); // FIFO_wen = 0
  EXPECT_EQ(rig.box.selected(0), -1);        // outputs parked
}

TEST(PrSocket, SmEnBitControlsIsolation) {
  Rig rig;
  rig.socket->dcr_write(PrSocket::kSmEn);
  EXPECT_FALSE(rig.wrapper->isolated());
  rig.socket->dcr_write(0);
  EXPECT_TRUE(rig.wrapper->isolated());
}

TEST(PrSocket, PrrResetBit) {
  Rig rig;
  rig.wrapper->load(std::make_unique<hwmodule::Passthrough>());
  rig.socket->dcr_write(PrSocket::kPrrReset);
  EXPECT_TRUE(rig.wrapper->in_reset());
  rig.socket->dcr_write(0);
  EXPECT_FALSE(rig.wrapper->in_reset());
}

TEST(PrSocket, FifoResetClearsInterfaceFifos) {
  Rig rig;
  rig.producer.fifo().push(1);
  rig.consumer.fifo().push(2);
  rig.socket->dcr_write(PrSocket::kFifoReset);
  EXPECT_TRUE(rig.producer.fifo().empty());
  EXPECT_TRUE(rig.consumer.fifo().empty());
}

TEST(PrSocket, FslResetClearsLinks) {
  Rig rig;
  rig.r.write(1);
  rig.t.write(2);
  rig.socket->dcr_write(PrSocket::kFslReset);
  EXPECT_FALSE(rig.r.can_read());
  EXPECT_FALSE(rig.t.can_read());
}

TEST(PrSocket, ResetBitsAreEdgeTriggered) {
  Rig rig;
  rig.socket->dcr_write(PrSocket::kFifoReset);
  rig.producer.fifo().push(3);
  // Re-writing the same value must not clear again.
  rig.socket->dcr_write(PrSocket::kFifoReset);
  EXPECT_EQ(rig.producer.fifo().size(), 1);
  // Dropping and raising the bit clears.
  rig.socket->dcr_write(0);
  rig.socket->dcr_write(PrSocket::kFifoReset);
  EXPECT_TRUE(rig.producer.fifo().empty());
}

TEST(PrSocket, WenRenBits) {
  Rig rig;
  rig.socket->dcr_write(PrSocket::kFifoWen | PrSocket::kFifoRen);
  EXPECT_TRUE(rig.consumer.write_enable());
  EXPECT_TRUE(rig.producer.read_enable());
  rig.socket->dcr_write(PrSocket::kFifoWen);
  EXPECT_FALSE(rig.producer.read_enable());
  EXPECT_TRUE(rig.consumer.write_enable());
}

TEST(PrSocket, ClkEnGatesPrrClock) {
  Rig rig;
  rig.socket->dcr_write(PrSocket::kClkEn);
  EXPECT_TRUE(rig.prr_clk->enabled());
  rig.socket->dcr_write(0);
  EXPECT_FALSE(rig.prr_clk->enabled());
}

TEST(PrSocket, ClkSelRetunesPrrClock) {
  Rig rig;
  rig.socket->dcr_write(PrSocket::kClkEn);
  EXPECT_DOUBLE_EQ(rig.prr_clk->frequency_mhz(), 100.0);
  rig.socket->dcr_write(PrSocket::kClkEn | PrSocket::kClkSel);
  EXPECT_DOUBLE_EQ(rig.prr_clk->frequency_mhz(), 50.0);
}

TEST(PrSocket, MuxSelFieldEncoding) {
  Rig rig;
  // 5 inputs -> 3 bits per field; output port 2's field at bits 14..16.
  EXPECT_EQ(rig.socket->sel_bits(), 3);
  DcrValue v = rig.socket->with_mux_sel(0, /*output=*/2, /*input=*/4);
  EXPECT_EQ(v, static_cast<DcrValue>(5) << (8 + 2 * 3));
  rig.socket->dcr_write(v);
  EXPECT_EQ(rig.box.selected(2), 4);
  EXPECT_EQ(rig.box.selected(0), -1);  // others still parked

  // Park it again.
  v = rig.socket->with_mux_sel(v, 2, -1);
  rig.socket->dcr_write(v);
  EXPECT_EQ(rig.box.selected(2), -1);
}

TEST(PrSocket, MuxSelRejectsNonexistentInput) {
  Rig rig;
  // Field value 6 selects input 5 which does not exist (5 inputs: 0..4).
  const DcrValue v = static_cast<DcrValue>(6) << 8;
  EXPECT_THROW(rig.socket->dcr_write(v), ModelError);
}

TEST(PrSocket, ReadbackReturnsLastWrite) {
  Rig rig;
  const DcrValue v = PrSocket::kSmEn | PrSocket::kClkEn;
  rig.socket->dcr_write(v);
  EXPECT_EQ(rig.socket->dcr_read(), v);
}

TEST(PrSocket, IomSocketToleratesNullWrapperAndClock) {
  comm::SwitchBox box("sw", comm::SwitchBoxShape{2, 2, 1, 1});
  comm::ProducerInterface p("p", 16);
  comm::ConsumerInterface c("c", 16);
  PrSocket socket("iom_sock", &box,
                  std::vector<comm::ProducerInterface*>{&p},
                  std::vector<comm::ConsumerInterface*>{&c}, nullptr,
                  nullptr, nullptr, nullptr);
  EXPECT_NO_THROW(socket.dcr_write(PrSocket::kSmEn | PrSocket::kClkEn |
                                   PrSocket::kPrrReset |
                                   PrSocket::kFslReset));
  socket.dcr_write(PrSocket::kFifoWen | PrSocket::kFifoRen);
  EXPECT_TRUE(p.read_enable());
  EXPECT_TRUE(c.write_enable());
}

TEST(PrSocket, MuxSelMustFitDcr) {
  // 8 outputs x 4-bit fields = 32 bits + 8 base bits > 32: rejected.
  comm::SwitchBox box("sw", comm::SwitchBoxShape{4, 4, 4, 4});
  EXPECT_THROW(PrSocket("sock", &box, {}, {}, nullptr, nullptr, nullptr,
                        nullptr),
               ModelError);
}

}  // namespace
}  // namespace vapres::core
