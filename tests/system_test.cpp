// Full-system tests: construction, bring-up, end-to-end streaming
// IOM -> PRR -> IOM, reconfiguration timing against the paper's Section
// V.B numbers, local clock domains, and IOM statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "bitstream/bitgen.hpp"
#include "core/api.hpp"
#include "core/system.hpp"
#include "proc/timer.hpp"
#include "sim/random.hpp"

namespace vapres::core {
namespace {

std::unique_ptr<VapresSystem> make_prototype() {
  return std::make_unique<VapresSystem>(SystemParams::prototype());
}

// Prototype parameters with narrower PRRs: same architecture, ~5x less
// simulated reconfiguration time. Used by tests whose subject is not the
// Section V.B timing itself.
std::unique_ptr<VapresSystem> make_fast() {
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;  // 256-slice PRRs
  return std::make_unique<VapresSystem>(std::move(p));
}

TEST(System, PrototypeConstruction) {
  auto sys = make_prototype();
  EXPECT_EQ(sys->num_rsbs(), 1);
  Rsb& rsb = sys->rsb();
  EXPECT_EQ(rsb.num_prrs(), 2);
  EXPECT_EQ(rsb.num_ioms(), 1);
  EXPECT_EQ(rsb.fabric().num_boxes(), 3);
  EXPECT_EQ(rsb.prr(0).rect().slices(), 640);  // Section V.A
  EXPECT_EQ(sys->prr_floorplan().size(), 2u);
  // PRRs in distinct clock regions.
  EXPECT_NE(sys->prr_floorplan()[0].row / 16,
            sys->prr_floorplan()[1].row / 16);
}

TEST(System, SocketsMappedOnDcr) {
  auto sys = make_prototype();
  Rsb& rsb = sys->rsb();
  EXPECT_TRUE(sys->dcr().mapped(rsb.iom_socket_address(0)));
  EXPECT_TRUE(sys->dcr().mapped(rsb.prr_socket_address(0)));
  EXPECT_TRUE(sys->dcr().mapped(rsb.prr_socket_address(1)));
  // Each PRR maps a perf-counter register next to its socket
  // (docs/OBSERVABILITY.md): 3 sockets + 2 perf banks.
  EXPECT_TRUE(sys->dcr().mapped(rsb.prr_perf_address(0)));
  EXPECT_TRUE(sys->dcr().mapped(rsb.prr_perf_address(1)));
  EXPECT_EQ(sys->dcr().slave_count(), 5u);
}

TEST(System, ReconfigureLoadsModule) {
  auto sys = make_fast();
  EXPECT_FALSE(sys->rsb().prr(0).occupied());
  sys->reconfigure_now(0, 0, "passthrough");
  EXPECT_TRUE(sys->rsb().prr(0).occupied());
  EXPECT_EQ(sys->rsb().prr(0).loaded_module(), "passthrough");
  EXPECT_EQ(sys->rsb().prr(0).reconfiguration_count(), 1);
}

TEST(System, Array2IcapSimulatedTimeMatchesPaper) {
  // Section V.B: array2icap = 71.94 ms at 100 MHz for the 640-slice
  // prototype PRR — measured here with the xps_timer over the actual
  // simulated transfer, exactly as the paper measured it.
  auto sys = make_prototype();
  sys->preload_sdram("ma8", 0, 0);
  proc::XpsTimer timer(sys->system_clock());
  timer.start();
  const sim::Cycles charged =
      sys->reconfigure_now(0, 0, "ma8", ReconfigSource::kSdramArray);
  const sim::Cycles measured = timer.stop();
  EXPECT_NEAR(static_cast<double>(measured) / 100e6 * 1e3, 71.94, 0.8);
  EXPECT_EQ(measured, charged);
  EXPECT_EQ(sys->icap().completed_transfers(), 1);
}

TEST(System, Cf2IcapSimulatedTimeMatchesEstimate) {
  // The CF path at full prototype scale takes 104 M simulated cycles;
  // verify the path cycle-exactly at a narrower PRR (the paper-scale
  // seconds figure is covered by the calibration tests and the bench).
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 1;  // 64-slice PRR, 4,632-byte bitstream
  VapresSystem sys(std::move(p));
  sys.synthesize_to_cf("passthrough", 0, 0);
  proc::XpsTimer timer(sys.system_clock());
  timer.start();
  sys.reconfigure_now(0, 0, "passthrough", ReconfigSource::kCompactFlash);
  const auto est = ReconfigManager::estimate_cf2icap(4632);
  EXPECT_EQ(timer.stop(),
            static_cast<sim::Cycles>(std::llround(est.total_cycles())));
}

TEST(System, ReconfigChargesMicroblaze) {
  auto sys = make_fast();
  const auto busy_before = sys->mb().total_busy_cycles();
  const sim::Cycles charged = sys->reconfigure_now(0, 0, "passthrough");
  EXPECT_GE(sys->mb().total_busy_cycles() - busy_before, charged);
}

TEST(System, WrongPrrBitstreamRejected) {
  auto sys = make_prototype();
  sys->synthesize_to_cf("ma4", 0, 0);
  // Hand the PRR-0 bitstream to PRR 1's target via the manager: the
  // target name routes it to PRR 0, so this succeeds; mismatch is only
  // possible by corrupting the bitstream record.
  auto bs = sys->compact_flash().read(
      bitstream::bitstream_filename("ma4", sys->rsb().prr(0).name()));
  bs.target_prr = sys->rsb().prr(1).name();
  EXPECT_FALSE(bs.valid());
  EXPECT_THROW(sys->rsb().prr(1).apply_bitstream(bs, sys->library()),
               ModelError);
}

// End-to-end: IOM source -> passthrough in PRR0 -> IOM sink.
TEST(System, EndToEndStreaming) {
  auto sys = make_fast();
  sys->bring_up_all_sites();
  sys->reconfigure_now(0, 0, "passthrough");

  Rsb& rsb = sys->rsb();
  auto in = sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  auto out = sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  ASSERT_TRUE(in && out);

  std::vector<comm::Word> data;
  for (comm::Word w = 0; w < 100; ++w) data.push_back(w * 3);
  sys->rsb().iom(0).set_source_data(data);
  sys->run_system_cycles(500);

  EXPECT_EQ(sys->rsb().iom(0).received(), data);
  EXPECT_EQ(sys->rsb().iom(0).words_emitted(), 100u);
  EXPECT_EQ(sys->rsb().iom(0).source_stall_cycles(), 0u);
}

TEST(System, EndToEndThroughProcessingChain) {
  // IOM -> gain_x2 (PRR0) -> offset_100 (PRR1) -> IOM.
  auto sys = make_fast();
  sys->bring_up_all_sites();
  sys->reconfigure_now(0, 0, "gain_x2");
  sys->reconfigure_now(0, 1, "offset_100");

  Rsb& rsb = sys->rsb();
  ASSERT_TRUE(sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0)));
  ASSERT_TRUE(sys->connect(0, rsb.prr_producer(0), rsb.prr_consumer(1)));
  ASSERT_TRUE(sys->connect(0, rsb.prr_producer(1), rsb.iom_consumer(0)));

  std::vector<comm::Word> data{1, 2, 3, 4, 5};
  sys->rsb().iom(0).set_source_data(data);
  sys->run_system_cycles(300);

  EXPECT_EQ(sys->rsb().iom(0).received(),
            (std::vector<comm::Word>{102, 104, 106, 108, 110}));
}

TEST(System, LocalClockDomainThrottlesThroughput) {
  // The same module at 50 MHz processes half as many words per unit of
  // wall-clock as at 100 MHz (Section III.B.2).
  auto run_at = [](bool slow) {
    auto sys = make_fast();
    sys->bring_up_all_sites();
    sys->reconfigure_now(0, 0, "passthrough");
    if (slow) {
      sys->socket_set_bits(sys->rsb().prr_socket_address(0),
                           PrSocket::kClkSel, true);  // 50 MHz
    }
    Rsb& rsb = sys->rsb();
    sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
    sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
    int n = 0;
    sys->rsb().iom(0).set_source_generator(
        [&n]() -> std::optional<comm::Word> {
          return static_cast<comm::Word>(n++);
        });
    sys->run_system_cycles(2000);
    return sys->rsb().iom(0).received().size();
  };
  const auto fast = run_at(false);
  const auto slow = run_at(true);
  EXPECT_NEAR(static_cast<double>(fast) / static_cast<double>(slow), 2.0,
              0.1);
}

TEST(System, ClockGatedPrrStallsButLosesNothing) {
  auto sys = make_fast();
  sys->bring_up_all_sites();
  sys->reconfigure_now(0, 0, "passthrough");
  Rsb& rsb = sys->rsb();
  sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));

  std::vector<comm::Word> data;
  for (comm::Word w = 0; w < 50; ++w) data.push_back(w);
  sys->rsb().iom(0).set_source_data(data);
  // Gate the PRR clock: words pile up in the consumer interface FIFO.
  sys->socket_set_bits(rsb.prr_socket_address(0), PrSocket::kClkEn, false);
  sys->run_system_cycles(200);
  EXPECT_TRUE(sys->rsb().iom(0).received().empty());
  // Ungate: everything flows, in order, nothing lost.
  sys->socket_set_bits(rsb.prr_socket_address(0), PrSocket::kClkEn, true);
  sys->run_system_cycles(300);
  EXPECT_EQ(sys->rsb().iom(0).received(), data);
}

TEST(System, DisconnectQuiescesWithoutLoss) {
  auto sys = make_fast();
  sys->bring_up_all_sites();
  sys->reconfigure_now(0, 0, "passthrough");
  Rsb& rsb = sys->rsb();
  auto in = sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  auto out = sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  std::vector<comm::Word> data;
  for (comm::Word w = 0; w < 30; ++w) data.push_back(w);
  sys->rsb().iom(0).set_source_data(data);
  sys->run_system_cycles(10);
  sys->disconnect(0, *in);  // mid-stream teardown of the input channel
  sys->run_system_cycles(200);
  // Words already past the input channel still drained through.
  const auto& received = sys->rsb().iom(0).received();
  EXPECT_FALSE(received.empty());
  for (std::size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i], static_cast<comm::Word>(i));  // prefix, in order
  }
  sys->disconnect(0, *out);
  EXPECT_EQ(rsb.channels().active_count(), 0u);
}

TEST(System, IomGapStatistics) {
  auto sys = make_fast();
  sys->bring_up_all_sites();
  sys->reconfigure_now(0, 0, "passthrough");
  Rsb& rsb = sys->rsb();
  sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  sys->rsb().iom(0).set_source_data({1, 2, 3}, /*interval=*/10);
  sys->run_system_cycles(100);
  EXPECT_EQ(sys->rsb().iom(0).received().size(), 3u);
  EXPECT_GE(sys->rsb().iom(0).max_output_gap(), 9u);
  EXPECT_LE(sys->rsb().iom(0).max_output_gap(), 11u);
  sys->rsb().iom(0).reset_gap_stats();
  EXPECT_EQ(sys->rsb().iom(0).max_output_gap(), 0u);
}

TEST(System, StagingIsIdempotentAndCapacityChecked) {
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 1;  // small bitstream: timed staging is fast
  VapresSystem sys(std::move(p));
  const std::string key = sys.stage_to_sdram("passthrough", 0, 0);
  EXPECT_EQ(sys.stage_to_sdram("passthrough", 0, 0), key);  // idempotent
  EXPECT_TRUE(sys.sdram().contains(key));
  EXPECT_EQ(sys.sdram().read(key).size_bytes, 4632);
  // Untimed boot staging lands on the same key.
  EXPECT_EQ(sys.preload_sdram("passthrough", 0, 0), key);
}

TEST(System, ExplicitFloorplanHonored) {
  SystemParams params = SystemParams::prototype();
  params.prr_rects = {fabric::ClbRect{0, 0, 16, 10},
                      fabric::ClbRect{32, 0, 16, 10}};
  VapresSystem sys(std::move(params));
  EXPECT_EQ(sys.rsb().prr(1).rect().row, 32);
}

TEST(System, IllegalFloorplanRejected) {
  SystemParams params = SystemParams::prototype();
  // Same clock region for both PRRs.
  params.prr_rects = {fabric::ClbRect{0, 0, 16, 10},
                      fabric::ClbRect{0, 10, 16, 4}};
  EXPECT_THROW(VapresSystem{std::move(params)}, ModelError);
}

TEST(SystemParams, ValidationCatchesBadParameters) {
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].width_bits = 40;
  EXPECT_THROW(p.validate(), ModelError);
  p = SystemParams::prototype();
  p.rsbs[0].kr = 0;
  p.rsbs[0].kl = 0;
  EXPECT_THROW(p.validate(), ModelError);
  p = SystemParams::prototype();
  p.rsbs[0].prr_height_clbs = 64;
  EXPECT_THROW(p.validate(), ModelError);
  p = SystemParams::prototype();
  p.rsbs.clear();
  EXPECT_THROW(p.validate(), ModelError);
}

}  // namespace
}  // namespace vapres::core
