// Rate-analyzer tests: SDF rate propagation through KPN graphs and
// local-clock-domain assignment (extends Section III.B.2).
#include <gtest/gtest.h>

#include "flow/rate_analyzer.hpp"

namespace vapres::flow {
namespace {

const std::vector<double> kLadder{12.5, 25.0, 50.0, 100.0};

core::KpnAppSpec chain(std::initializer_list<const char*> modules) {
  core::KpnAppSpec app;
  app.name = "chain";
  int i = 0;
  std::string prev = "iom:0";
  for (const char* m : modules) {
    const std::string name = "n" + std::to_string(i++);
    app.nodes.push_back({name, m});
    app.edges.push_back({prev, name, 0, 0});
    prev = name;
  }
  app.edges.push_back({prev, "iom:0", 0, 0});
  return app;
}

TEST(Rational, ReducesAndMultiplies) {
  EXPECT_EQ(Rational::of(4, 8), Rational::of(1, 2));
  EXPECT_EQ(Rational::of(1, 2).times(2, 3), Rational::of(1, 3));
  EXPECT_DOUBLE_EQ(Rational::of(3, 4).value(), 0.75);
  EXPECT_THROW(Rational::of(1, 0), ModelError);
}

TEST(RateAnalyzer, UnityChain) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  RateAnalyzer analyzer(lib);
  const auto report = analyzer.analyze(chain({"gain_x2", "offset_100"}));
  EXPECT_EQ(report.nodes.at("n0").input_rate, Rational::of(1));
  EXPECT_EQ(report.nodes.at("n1").output_rate, Rational::of(1));
  EXPECT_EQ(report.sink_rates.at("iom:0"), Rational::of(1));
}

TEST(RateAnalyzer, DecimationReducesDownstreamRates) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  RateAnalyzer analyzer(lib);
  const auto report =
      analyzer.analyze(chain({"decim2", "decim4", "gain_x2"}));
  EXPECT_EQ(report.nodes.at("n0").output_rate, Rational::of(1, 2));
  EXPECT_EQ(report.nodes.at("n1").output_rate, Rational::of(1, 8));
  EXPECT_EQ(report.nodes.at("n2").input_rate, Rational::of(1, 8));
  EXPECT_EQ(report.sink_rates.at("iom:0"), Rational::of(1, 8));
  // The decimator's clock is set by its *input* side.
  EXPECT_EQ(report.nodes.at("n0").min_clock_factor, Rational::of(1));
  EXPECT_EQ(report.nodes.at("n2").min_clock_factor, Rational::of(1, 8));
}

TEST(RateAnalyzer, UpsamplingRaisesDownstreamRates) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  RateAnalyzer analyzer(lib);
  const auto report = analyzer.analyze(chain({"upsample2", "gain_x2"}));
  EXPECT_EQ(report.nodes.at("n0").min_clock_factor, Rational::of(2));
  EXPECT_EQ(report.nodes.at("n1").input_rate, Rational::of(2));
}

TEST(RateAnalyzer, ClockAssignmentPicksCheapestSufficient) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  RateAnalyzer analyzer(lib);
  const auto report =
      analyzer.analyze(chain({"decim2", "decim4", "gain_x2"}));
  // Source at 40 Mwords/s: n0 needs 40 MHz -> 50; n1 needs 20 -> 25;
  // n2 needs 5 -> 12.5.
  const auto clocks = report.assign_clocks(40.0, kLadder);
  EXPECT_DOUBLE_EQ(clocks.at("n0"), 50.0);
  EXPECT_DOUBLE_EQ(clocks.at("n1"), 25.0);
  EXPECT_DOUBLE_EQ(clocks.at("n2"), 12.5);
}

TEST(RateAnalyzer, ClockAssignmentFailsAboveLadder) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  RateAnalyzer analyzer(lib);
  const auto report = analyzer.analyze(chain({"upsample2"}));
  // 2x the 80 Mwords/s source = 160 MHz > 100 MHz ladder top.
  EXPECT_THROW(report.assign_clocks(80.0, kLadder), ModelError);
  EXPECT_NO_THROW(report.assign_clocks(50.0, kLadder));
}

TEST(RateAnalyzer, SplitJoinBalancedGraph) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  RateAnalyzer analyzer(lib);
  core::KpnAppSpec app;
  app.name = "diamond";
  app.nodes = {{"split", "splitter2"},
               {"a", "gain_x2"},
               {"b", "passthrough"},
               {"sum", "adder2"}};
  app.edges = {{"iom:0", "split", 0, 0}, {"split", "a", 0, 0},
               {"split", "b", 1, 0},     {"a", "sum", 0, 0},
               {"b", "sum", 0, 1},       {"sum", "iom:0", 0, 0}};
  const auto report = analyzer.analyze(app);
  EXPECT_EQ(report.nodes.at("sum").input_rate, Rational::of(1));
  EXPECT_EQ(report.sink_rates.at("iom:0"), Rational::of(1));
}

TEST(RateAnalyzer, UnbalancedJoinRejected) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  RateAnalyzer analyzer(lib);
  core::KpnAppSpec app;
  app.name = "bad_join";
  app.nodes = {{"split", "splitter2"},
               {"slow", "decim2"},
               {"fast", "passthrough"},
               {"sum", "adder2"}};
  app.edges = {{"iom:0", "split", 0, 0}, {"split", "slow", 0, 0},
               {"split", "fast", 1, 0},  {"slow", "sum", 0, 0},
               {"fast", "sum", 0, 1},    {"sum", "iom:0", 0, 0}};
  // The adder's two inputs arrive at 1/2 and 1 words per source word:
  // the fast side's FIFO would grow without bound.
  EXPECT_THROW(analyzer.analyze(app), ModelError);
}

TEST(RateAnalyzer, UnreachableNodeRejected) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  RateAnalyzer analyzer(lib);
  core::KpnAppSpec app;
  app.name = "orphan";
  app.nodes = {{"a", "passthrough"}, {"orphan", "passthrough"}};
  app.edges = {{"iom:0", "a", 0, 0}, {"a", "iom:0", 0, 0}};
  EXPECT_THROW(analyzer.analyze(app), ModelError);
}

TEST(RateAnalyzer, UnknownModuleRejected) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  RateAnalyzer analyzer(lib);
  core::KpnAppSpec app;
  app.name = "ghost";
  app.nodes = {{"a", "no_such_module"}};
  app.edges = {{"iom:0", "a", 0, 0}};
  EXPECT_THROW(analyzer.analyze(app), ModelError);
}

TEST(RateAnalyzer, RequiredMhzScalesWithSourceRate) {
  const auto lib = hwmodule::ModuleLibrary::standard();
  RateAnalyzer analyzer(lib);
  const auto report = analyzer.analyze(chain({"decim2"}));
  EXPECT_DOUBLE_EQ(report.required_mhz("n0", 10.0), 10.0);
  EXPECT_DOUBLE_EQ(report.required_mhz("n0", 80.0), 80.0);
  EXPECT_THROW(report.required_mhz("ghost", 1.0), ModelError);
}

}  // namespace
}  // namespace vapres::flow
