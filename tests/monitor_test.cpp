// Stream-monitoring framework tests (Figure 5, step 2).
#include <gtest/gtest.h>

#include <optional>

#include "core/monitor.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"

namespace vapres::core {
namespace {

using comm::Word;

// ------------------------------------------------------- ThresholdTrigger

TEST(ThresholdTrigger, FiresOncePerExcursion) {
  ThresholdTrigger trig(100, 50);
  EXPECT_FALSE(trig(80));
  EXPECT_TRUE(trig(120));   // crossing fires
  EXPECT_FALSE(trig(150));  // still high: no refire
  EXPECT_FALSE(trig(40));   // re-arms
  EXPECT_TRUE(trig(101));   // second excursion fires again
}

TEST(ThresholdTrigger, HysteresisBandSuppressesRearm) {
  ThresholdTrigger trig(100, 50);
  EXPECT_TRUE(trig(200));
  EXPECT_FALSE(trig(75));   // inside band: stays disarmed
  EXPECT_FALSE(trig(150));  // no refire
  EXPECT_FALSE(trig(50));   // at low: re-arms
  EXPECT_TRUE(trig(100));
}

TEST(ThresholdTrigger, PersistenceFiltersGlitches) {
  ThresholdTrigger trig(100, 50, /*persistence=*/3);
  EXPECT_FALSE(trig(150));
  EXPECT_FALSE(trig(150));
  EXPECT_FALSE(trig(20));   // glitch resets the run
  EXPECT_FALSE(trig(150));
  EXPECT_FALSE(trig(150));
  EXPECT_TRUE(trig(150));   // third consecutive
}

TEST(ThresholdTrigger, ValidatesBand) {
  EXPECT_THROW(ThresholdTrigger(50, 100), ModelError);
  EXPECT_THROW(ThresholdTrigger(100, 50, 0), ModelError);
}

// ----------------------------------------------------------- StreamMonitor

struct Rig {
  sim::Simulator sim;
  sim::ClockDomain* clk;
  comm::DcrBus dcr;
  std::unique_ptr<proc::Microblaze> mb;
  comm::FslLink rlink{"r", 64};

  Rig() {
    clk = &sim.create_domain("clk", 100.0);
    mb = std::make_unique<proc::Microblaze>("mb", *clk, dcr);
  }
  void run(sim::Cycles n) { sim.run_cycles(*clk, n); }
};

TEST(StreamMonitor, PollingFiresActionAndDeschedules) {
  Rig rig;
  bool acted = false;
  StreamMonitor monitor("mon", rig.rlink, ThresholdTrigger(700, 300),
                        [&acted] { acted = true; });
  monitor.start_polling(*rig.mb);
  rig.rlink.write(100);
  rig.rlink.write(500);
  rig.run(5);
  EXPECT_FALSE(acted);
  rig.rlink.write(900);
  rig.run(5);
  EXPECT_TRUE(acted);
  EXPECT_TRUE(monitor.fired());
  EXPECT_EQ(monitor.words_seen(), 3u);
  EXPECT_EQ(rig.mb->task_count(), 0u);  // one-shot: descheduled
}

TEST(StreamMonitor, IgnoresProtocolControlWords) {
  Rig rig;
  bool acted = false;
  StreamMonitor monitor("mon", rig.rlink,
                        [](Word) { return true; },  // fire on any word
                        [&acted] { acted = true; });
  monitor.start_polling(*rig.mb);
  rig.rlink.write(hwmodule::ctrl::kEosSentNote);
  rig.rlink.write(hwmodule::ctrl::kStateHeader);
  rig.run(5);
  EXPECT_FALSE(acted);
  EXPECT_EQ(monitor.words_seen(), 0u);
  rig.rlink.write(1);
  rig.run(5);
  EXPECT_TRUE(acted);
}

TEST(StreamMonitor, InterruptDrivenMode) {
  Rig rig;
  proc::InterruptController intc;
  bool acted = false;
  StreamMonitor monitor("mon", rig.rlink, ThresholdTrigger(10, 5),
                        [&acted] { acted = true; });
  const int irq = monitor.register_interrupt(intc);
  rig.mb->attach_interrupts(&intc,
                            [&monitor, irq](int which,
                                            proc::Microblaze& core) {
                              ASSERT_EQ(which, irq);
                              monitor.service(core);
                            });
  rig.run(10);
  EXPECT_EQ(rig.mb->interrupts_serviced(), 0u);  // no traffic, no work
  rig.rlink.write(50);
  rig.run(20);
  EXPECT_TRUE(acted);
  EXPECT_GE(rig.mb->interrupts_serviced(), 1u);
}

// End-to-end: monitor triggers the Figure 5 switch, as application code
// would wire it.
TEST(StreamMonitor, DrivesModuleSwitchEndToEnd) {
  SystemParams params = SystemParams::prototype();
  params.rsbs[0].prr_width_clbs = 3;  // ma4 (180) fits 192 slices
  VapresSystem sys(std::move(params));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "ma4");
  sys.preload_sdram("ma4", 0, 1);
  Rsb& rsb = sys.rsb();
  const auto up = *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  const auto down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));

  SwitchRequest req;
  req.src_prr = 0;
  req.dst_prr = 1;
  req.new_module_id = "ma4";
  req.upstream = up;
  req.downstream = down;
  ModuleSwitcher switcher(sys, req);

  StreamMonitor monitor("mon", rsb.prr(0).fsl_to_mb(),
                        ThresholdTrigger(500, 100),
                        [&switcher] { switcher.begin(); });
  monitor.start_polling(sys.mb());

  int n = 0;
  rsb.iom(0).set_source_generator(
      [&n]() -> std::optional<Word> {
        // Quiet, then loud: ma4's monitoring average crosses 500.
        return static_cast<Word>(n++ < 2000 ? 10 : 900);
      },
      4);
  ASSERT_TRUE(sys.sim().run_until([&] { return switcher.done(); },
                                  sim::kPsPerSecond * 60));
  EXPECT_TRUE(monitor.fired());
  EXPECT_EQ(rsb.prr(1).loaded_module(), "ma4");
  EXPECT_EQ(rsb.iom(0).eos_seen(), 1u);
}

}  // namespace
}  // namespace vapres::core
