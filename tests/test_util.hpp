// Shared test harnesses.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/module_interface.hpp"
#include "comm/switch_fabric.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "hwmodule/hw_module.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace vapres::test {

/// A standalone switch-fabric rig: one static clock domain, `n` boxes of
/// the given shape, and one producer + one consumer interface attached to
/// every box (channel 0). Used by comm-layer tests without the full
/// system.
struct FabricRig {
  sim::Simulator sim;
  sim::ClockDomain* domain = nullptr;
  std::unique_ptr<comm::SwitchFabric> fabric;
  std::vector<std::unique_ptr<comm::ProducerInterface>> producers;
  std::vector<std::unique_ptr<comm::ConsumerInterface>> consumers;

  explicit FabricRig(int boxes, comm::SwitchBoxShape shape = {},
                     int fifo_depth = comm::Fifo::kDefaultDepth,
                     double mhz = 100.0) {
    domain = &sim.create_domain("clk", mhz);
    fabric = std::make_unique<comm::SwitchFabric>(*domain, boxes, shape);
    for (int i = 0; i < boxes; ++i) {
      for (int ch = 0; ch < shape.ko; ++ch) {
        producers.push_back(std::make_unique<comm::ProducerInterface>(
            "p" + std::to_string(i) + "_" + std::to_string(ch), fifo_depth));
        domain->attach(producers.back().get());
        fabric->attach_producer(i, ch, producers.back().get());
      }
      for (int ch = 0; ch < shape.ki; ++ch) {
        consumers.push_back(std::make_unique<comm::ConsumerInterface>(
            "c" + std::to_string(i) + "_" + std::to_string(ch), fifo_depth));
        domain->attach(consumers.back().get());
        fabric->attach_consumer(i, ch, consumers.back().get());
      }
    }
    ko_ = shape.ko;
    ki_ = shape.ki;
  }

  ~FabricRig() {
    for (auto& p : producers) domain->detach(p.get());
    for (auto& c : consumers) domain->detach(c.get());
  }

  void run(sim::Cycles cycles) { sim.run_cycles(*domain, cycles); }

  comm::ProducerInterface& producer(int box, int ch = 0) {
    return *producers[static_cast<std::size_t>(box * ko_ + ch)];
  }
  comm::ConsumerInterface& consumer(int box, int ch = 0) {
    return *consumers[static_cast<std::size_t>(box * ki_ + ch)];
  }

  /// Drains everything currently in consumer `i`'s (channel 0) FIFO.
  std::vector<comm::Word> drain(int i) {
    std::vector<comm::Word> out;
    auto& fifo = consumer(i).fifo();
    while (!fifo.empty()) out.push_back(fifo.pop());
    return out;
  }

 private:
  int ko_ = 1;
  int ki_ = 1;
};

/// Full-system module-switch rig with fault injection armed: `module_a`
/// streaming in PRR 0 through IOM channels, `module_b` staged in SDRAM
/// (and, implicitly, on CompactFlash — the fallback source) for the
/// spare PRR 1. Injection is enabled with `seed` only *after* bring-up,
/// so the setup itself is fault-free and two rigs built with the same
/// seed replay identically.
struct FaultRig {
  std::unique_ptr<core::VapresSystem> sys;
  core::ChannelId upstream = 0;
  core::ChannelId downstream = 0;
  std::optional<sim::ScopedFaultInjection> faults;

  explicit FaultRig(std::uint64_t seed,
                    const std::string& module_a = "passthrough",
                    const std::string& module_b = "gain_x2") {
    core::SystemParams p = core::SystemParams::prototype();
    p.rsbs[0].prr_width_clbs = 4;  // small PRRs: tests stay fast
    sys = std::make_unique<core::VapresSystem>(std::move(p));
    sys->bring_up_all_sites();
    sys->reconfigure_now(0, 0, module_a);
    sys->preload_sdram(module_b, 0, 1);
    core::Rsb& rsb = sys->rsb();
    upstream = *sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
    downstream = *sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
    faults.emplace(seed);
  }

  /// Bare-system variant for scheduler tests: builds `params`, brings
  /// the sites up, and enables deterministic injection — but stages no
  /// modules and connects no channels (the scheduler under test does).
  FaultRig(std::uint64_t seed, core::SystemParams params) {
    sys = std::make_unique<core::VapresSystem>(std::move(params));
    sys->bring_up_all_sites();
    faults.emplace(seed);
  }

  /// Makes the `nth` upcoming ICAP transfer (counted from *now*, and
  /// `count - 1` after it) fail *permanently*: corruption armed with
  /// retries and the CF fallback disabled, so the ReconfigManager
  /// reports failure on the first corrupted attempt. Used to hit a
  /// defrag migration mid-flight.
  void arm_permanent_pr_failure(std::uint64_t nth = 0,
                                std::uint64_t count = 1) {
    sys->reconfig().set_retry_policy({.max_attempts = 1,
                                      .backoff_base_cycles = 256,
                                      .fallback_to_cf = false});
    const auto site = sim::FaultSite::kIcapBitstreamCorruption;
    injector().arm(site, injector().opportunities(site) + nth, count);
  }

  /// Restores the default (self-healing) retry policy.
  void disarm_pr_failures() {
    sys->reconfig().set_retry_policy(core::RetryPolicy{});
  }

  /// Poisons the SDRAM-array source of the next PR: corruption armed
  /// for the default policy's full per-source budget (3 attempts), so
  /// the ReconfigManager rescues the transfer from the pristine CF file
  /// (one source fallback) — after which the bitstream cache must
  /// invalidate the poisoned array and restage it.
  void arm_array_source_fallback(std::uint64_t nth = 0) {
    const auto site = sim::FaultSite::kIcapBitstreamCorruption;
    injector().arm(site, injector().opportunities(site) + nth, 3);
  }

  sim::FaultInjector& injector() { return sim::FaultInjector::instance(); }
  core::Iom& iom() { return sys->rsb().iom(0); }

  core::SwitchRequest request(const std::string& module_b) const {
    core::SwitchRequest req;
    req.src_prr = 0;
    req.dst_prr = 1;
    req.new_module_id = module_b;
    req.upstream = upstream;
    req.downstream = downstream;
    req.eos_iom = 0;
    return req;
  }

  /// Feeds an incrementing 0, 1, 2, ... stream into the IOM source, one
  /// word every `interval` cycles.
  void stream_counter(int interval = 4) {
    iom().set_source_generator(
        [n = 0]() mutable -> std::optional<comm::Word> {
          return static_cast<comm::Word>(n++);
        },
        interval);
  }

  /// Begins the switch and runs until it terminates — completed OR
  /// rolled back. Returns false only on simulated-time exhaustion.
  bool run_until_finished(core::ModuleSwitcher& sw) {
    sw.begin();
    return sys->sim().run_until([&] { return sw.finished(); },
                                sim::kPsPerSecond * 120);
  }
};

/// True iff `words` is exactly `start, start+1, ...` — the loss-free,
/// in-order property of a counter stream (through identity modules).
/// Sets `*bad_index` (if given) to the first offending position.
inline bool in_order_counter_stream(const std::vector<comm::Word>& words,
                                    comm::Word start = 0,
                                    std::size_t* bad_index = nullptr) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (words[i] != start + static_cast<comm::Word>(i)) {
      if (bad_index != nullptr) *bad_index = i;
      return false;
    }
  }
  return true;
}

/// In-memory ModulePorts for unit-testing behaviours without a wrapper.
class PortsStub final : public hwmodule::ModulePorts {
 public:
  explicit PortsStub(int inputs = 1, int outputs = 1)
      : in_(static_cast<std::size_t>(inputs)),
        out_(static_cast<std::size_t>(outputs)) {}

  std::vector<comm::Word>& input(int port = 0) {
    return in_[static_cast<std::size_t>(port)];
  }
  std::vector<comm::Word>& output(int port = 0) {
    return out_[static_cast<std::size_t>(port)];
  }
  std::vector<comm::Word>& fsl_out() { return fsl_out_; }
  std::vector<comm::Word>& fsl_in() { return fsl_in_; }
  void set_output_blocked(bool blocked) { output_blocked_ = blocked; }

  int num_inputs() const override { return static_cast<int>(in_.size()); }
  int num_outputs() const override { return static_cast<int>(out_.size()); }
  bool can_read(int port) const override {
    return !in_[static_cast<std::size_t>(port)].empty();
  }
  comm::Word read(int port) override {
    auto& v = in_[static_cast<std::size_t>(port)];
    const comm::Word w = v.front();
    v.erase(v.begin());
    return w;
  }
  bool can_write(int) const override { return !output_blocked_; }
  void write(int port, comm::Word w) override {
    out_[static_cast<std::size_t>(port)].push_back(w);
  }
  bool fsl_can_write() const override { return true; }
  void fsl_write(comm::Word w) override { fsl_out_.push_back(w); }
  std::optional<comm::Word> fsl_try_read() override {
    if (fsl_in_.empty()) return std::nullopt;
    const comm::Word w = fsl_in_.front();
    fsl_in_.erase(fsl_in_.begin());
    return w;
  }

 private:
  std::vector<std::vector<comm::Word>> in_;
  std::vector<std::vector<comm::Word>> out_;
  std::vector<comm::Word> fsl_out_;
  std::vector<comm::Word> fsl_in_;
  bool output_blocked_ = false;
};

/// Runs a behaviour over an input vector with unbounded output, one
/// firing attempt per cycle, until inputs are consumed and the pipeline
/// is empty (or `max_cycles` elapses).
inline std::vector<comm::Word> run_behavior(
    hwmodule::ModuleBehavior& behavior, std::vector<comm::Word> input,
    int max_cycles = 100000) {
  PortsStub ports(1, 2);
  ports.input(0) = std::move(input);
  for (int i = 0; i < max_cycles; ++i) {
    if (ports.input(0).empty() && behavior.pipeline_empty()) break;
    behavior.on_cycle(ports);
  }
  return ports.output(0);
}

}  // namespace vapres::test
