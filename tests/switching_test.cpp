// Module-switching tests (Figure 5 / Section III.B.3): protocol
// completion, state hand-off, stream continuity ("no stream processing
// interruption"), and the halt-and-reconfigure baseline for contrast.
#include <gtest/gtest.h>

#include <deque>

#include "baseline/naive_switch.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "fabric/frame.hpp"
#include "sim/trace.hpp"

namespace vapres::core {
namespace {

using comm::Word;

// A small-PRR system so reconfiguration takes ~3 ms of simulated time
// instead of the prototype's 72 ms (tests stay fast; the bench uses the
// full prototype). PRR: 16 x 4 CLBs = 256 slices.
SystemParams small_prr_params() {
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  return p;
}

struct SwitchRig {
  std::unique_ptr<VapresSystem> sys;
  ChannelId upstream = 0;
  ChannelId downstream = 0;

  explicit SwitchRig(const std::string& module_a,
                     const std::string& module_b,
                     SystemParams params = small_prr_params()) {
    sys = std::make_unique<VapresSystem>(std::move(params));
    sys->bring_up_all_sites();
    sys->reconfigure_now(0, 0, module_a);
    sys->preload_sdram(module_b, 0, 1);  // paper: staged at startup
    Rsb& rsb = sys->rsb();
    upstream = *sys->connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
    downstream = *sys->connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  }

  SwitchRequest request(const std::string& module_b) const {
    SwitchRequest req;
    req.src_prr = 0;
    req.dst_prr = 1;
    req.new_module_id = module_b;
    req.upstream = upstream;
    req.downstream = downstream;
    req.eos_iom = 0;
    return req;
  }

  Iom& iom() { return sys->rsb().iom(0); }

  bool run_switch(ModuleSwitcher& sw, sim::Cycles max_cycles = 50'000'000) {
    sw.begin();
    return sys->sim().run_until([&] { return sw.done(); },
                                max_cycles * 10000ULL);
  }
};

TEST(Switching, ProtocolCompletesAndReroutes) {
  SwitchRig rig("passthrough", "gain_x2");
  rig.iom().set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      /*interval=*/4);

  ModuleSwitcher sw(*rig.sys, rig.request("gain_x2"));
  ASSERT_TRUE(rig.run_switch(sw));

  Rsb& rsb = rig.sys->rsb();
  EXPECT_EQ(rsb.prr(1).loaded_module(), "gain_x2");
  // Old channels replaced by new ones.
  EXPECT_FALSE(rsb.channels().active(rig.upstream));
  EXPECT_FALSE(rsb.channels().active(rig.downstream));
  EXPECT_TRUE(rsb.channels().active(sw.new_upstream()));
  EXPECT_TRUE(rsb.channels().active(sw.new_downstream()));
  // New upstream feeds PRR1, new downstream comes from PRR1.
  EXPECT_EQ(rsb.channels().spec(sw.new_upstream()).consumer_box,
            rsb.params().box_of_prr(1));
  EXPECT_EQ(rsb.channels().spec(sw.new_downstream()).producer_box,
            rsb.params().box_of_prr(1));
  // The old module's site was shut down.
  const auto src_sock =
      rig.sys->dcr().read(rsb.prr_socket_address(0));
  EXPECT_EQ(src_sock & (PrSocket::kSmEn | PrSocket::kClkEn), 0u);
  // Exactly one EOS word passed the IOM and was filtered from the data.
  EXPECT_EQ(rig.iom().eos_seen(), 1u);
}

TEST(Switching, TimelineIsOrderedAndReconfigDominates) {
  SwitchRig rig("passthrough", "passthrough");
  rig.iom().set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      4);
  ModuleSwitcher sw(*rig.sys, rig.request("passthrough"));
  ASSERT_TRUE(rig.run_switch(sw));

  const auto& t = sw.timeline();
  EXPECT_LT(t.started, t.reconfig_done);
  EXPECT_LE(t.reconfig_done, t.input_rerouted);
  EXPECT_LE(t.input_rerouted, t.state_collected);
  EXPECT_LE(t.state_collected, t.module_initialized);
  EXPECT_LE(t.module_initialized, t.iom_eos_seen);
  EXPECT_LE(t.iom_eos_seen, t.completed);

  // PR dominates the protocol: the post-reconfig tail is tiny.
  const auto pr = t.reconfig_done - t.started;
  const auto tail = t.completed - t.reconfig_done;
  EXPECT_GT(pr, 100 * tail);

  // PR time matches the calibrated array2icap estimate for this PRR.
  const auto est = ReconfigManager::estimate_array2icap(
      fabric::partial_bitstream_bytes(rig.sys->rsb().prr(1).rect()));
  EXPECT_NEAR(static_cast<double>(pr), est.total_cycles(),
              est.total_cycles() * 0.01 + 1000);
}

TEST(Switching, NoStreamInterruption) {
  // THE headline claim: module replacement does not interrupt the output
  // stream. Input arrives every 4 cycles; the output gap during the whole
  // switch must stay within the same order of magnitude — millions of
  // cycles below the reconfiguration time.
  SwitchRig rig("passthrough", "gain_x2");
  rig.iom().set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      4);
  // Warm the stream, then reset gap statistics.
  rig.sys->run_system_cycles(200);
  rig.iom().reset_gap_stats();

  ModuleSwitcher sw(*rig.sys, rig.request("gain_x2"));
  ASSERT_TRUE(rig.run_switch(sw));
  rig.sys->run_system_cycles(500);

  const auto gap = rig.iom().max_output_gap();
  const auto reconfig_cycles =
      sw.timeline().reconfig_done - sw.timeline().started;
  EXPECT_LE(gap, 400u) << "stream interrupted";
  EXPECT_LT(static_cast<double>(gap),
            0.001 * static_cast<double>(reconfig_cycles));
  // The input never backed up into the external source either.
  EXPECT_EQ(rig.iom().source_stall_cycles(), 0u);
}

TEST(Switching, StateHandoffPreservesFilterContinuity) {
  // ma4 -> ma4 relocation (the fault-tolerance use case): the output
  // across the switch must equal one uninterrupted ma4 run.
  SwitchRig rig("ma4", "ma4");
  constexpr int kWords = 3000;
  rig.iom().set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        if (n >= kWords) return std::nullopt;
        return static_cast<Word>((n++ * 2654435761u) >> 16);
      },
      /*interval=*/1200);  // slow stream so it spans the whole switch

  ModuleSwitcher sw(*rig.sys, rig.request("ma4"));
  ASSERT_TRUE(rig.run_switch(sw));
  // Let the remaining words flow through the new module.
  ASSERT_TRUE(rig.sys->sim().run_until(
      [&] { return rig.iom().received().size() >= kWords; },
      sim::kPsPerSecond * 60));

  // Golden: one continuous ma4 over the same input.
  std::deque<Word> line(4, 0);
  std::uint64_t sum = 0;
  std::vector<Word> golden;
  for (int n = 0; n < kWords; ++n) {
    const Word x = static_cast<Word>((static_cast<unsigned>(n) *
                                      2654435761u) >> 16);
    sum -= line.front();
    line.pop_front();
    line.push_back(x);
    sum += x;
    golden.push_back(static_cast<Word>(sum >> 2));
  }
  EXPECT_EQ(rig.iom().received(), golden);
  // State really moved: the collected frame is the 4-word delay line.
  EXPECT_EQ(sw.collected_state().size(), 4u);
  // ma4's periodic monitoring words on the r-link were skipped, not
  // mistaken for the state frame.
  EXPECT_GE(sw.skipped_monitoring().size(), 1u);
}

TEST(Switching, IncompatibleStateShapesSurfaceLoudly) {
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 5;  // 320 slices: ma8 (300) fits
  SwitchRig rig("ma4", "ma8", std::move(p));
  rig.iom().set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      4);
  // ma4 emits a monitoring word every 256 samples; let several queue up.
  rig.sys->run_system_cycles(8000);
  ModuleSwitcher sw(*rig.sys, rig.request("ma8"));
  // ma8 cannot restore ma4's 4-word state: the wrapper throws on
  // restore, surfacing the designer error loudly.
  EXPECT_THROW(rig.run_switch(sw), ModelError);
}

TEST(Switching, CompatibleDifferentModulesSwapCleanly) {
  // decim2 -> decim4: same state shape (phase), different behaviour.
  SwitchRig rig("decim2", "decim4");
  rig.iom().set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      4);
  ModuleSwitcher sw(*rig.sys, rig.request("decim4"));
  ASSERT_TRUE(rig.run_switch(sw));
  rig.sys->run_system_cycles(4000);
  EXPECT_EQ(rig.sys->rsb().prr(1).loaded_module(), "decim4");
  ASSERT_EQ(sw.collected_state().size(), 1u);
  EXPECT_LT(sw.collected_state()[0], 2u);  // a valid decim2 phase
}

TEST(Switching, EmitsTraceRecordsForEveryMilestone) {
  std::vector<sim::TraceRecord> records;
  sim::Trace::instance().set_level(sim::TraceLevel::kInfo);
  sim::Trace::instance().set_sink(
      [&records](const sim::TraceRecord& r) { records.push_back(r); });

  SwitchRig rig("passthrough", "offset_100");
  rig.iom().set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      4);
  ModuleSwitcher sw(*rig.sys, rig.request("offset_100"));
  ASSERT_TRUE(rig.run_switch(sw));

  sim::Trace::instance().clear_sink();
  sim::Trace::instance().set_level(sim::TraceLevel::kOff);

  ASSERT_GE(records.size(), 6u);
  EXPECT_EQ(records.front().tag, "switcher");
  EXPECT_NE(records.front().message.find("step 3"), std::string::npos);
  EXPECT_NE(records.back().message.find("switch complete"),
            std::string::npos);
  // Timestamps are monotone simulation times.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].time_ps, records[i - 1].time_ps);
  }
}

TEST(Switching, RequestValidation) {
  SwitchRig rig("passthrough", "gain_x2");
  SwitchRequest req = rig.request("gain_x2");
  req.dst_prr = req.src_prr;
  EXPECT_THROW(ModuleSwitcher(*rig.sys, req), ModelError);
  req = rig.request("gain_x2");
  req.new_module_id = "no_such_module";
  EXPECT_THROW(ModuleSwitcher(*rig.sys, req), ModelError);
  req = rig.request("gain_x2");
  req.upstream = 9999;
  ModuleSwitcher sw(*rig.sys, req);
  EXPECT_THROW(sw.begin(), ModelError);
}

// ------------------------------------------------------- naive baseline

TEST(NaiveSwitching, HaltAndReconfigureGapsTheStream) {
  SwitchRig rig("passthrough", "gain_x2");
  rig.iom().set_source_generator(
      [n = 0]() mutable -> std::optional<Word> {
        return static_cast<Word>(n++);
      },
      4);
  rig.sys->run_system_cycles(200);
  rig.iom().reset_gap_stats();

  baseline::NaiveSwitchRequest req;
  req.prr = 0;
  req.new_module_id = "gain_x2";
  req.upstream = rig.upstream;
  req.downstream = rig.downstream;
  // In-place switch needs the bitstream for PRR 0.
  rig.sys->preload_sdram("gain_x2", 0, 0);

  baseline::NaiveSwitcher sw(*rig.sys, req);
  sw.begin();
  ASSERT_TRUE(rig.sys->sim().run_until([&] { return sw.done(); },
                                       sim::kPsPerSecond * 120));
  rig.sys->run_system_cycles(2000);

  const auto gap = rig.iom().max_output_gap();
  const auto reconfig =
      sw.timeline().reconfig_done - sw.timeline().halted;
  // The output gap covers (at least) the whole reconfiguration.
  EXPECT_GE(gap, reconfig);
  EXPECT_GT(gap, 100'000u);
  // And the halted input backed up into the external source.
  EXPECT_GT(rig.iom().source_stall_cycles(), 0u);
}

TEST(NaiveSwitching, AnalyticGapModel) {
  EXPECT_GE(baseline::NaiveSwitcher::predicted_gap_cycles(1e6), 1e6);
}

}  // namespace
}  // namespace vapres::core
