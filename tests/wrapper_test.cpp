// Module-wrapper tests: the drain / end-of-stream / state-transfer
// protocol of Figure 5 (steps 5-7), control-word interception, reset and
// slice-macro isolation.
#include <gtest/gtest.h>

#include "comm/fsl.hpp"
#include "comm/module_interface.hpp"
#include "hwmodule/modules.hpp"
#include "hwmodule/wrapper.hpp"
#include "sim/simulator.hpp"

namespace vapres::hwmodule {
namespace {

using comm::Word;

struct Rig {
  sim::Simulator sim;
  sim::ClockDomain* clk;
  comm::ConsumerInterface in{"in", 64};
  comm::ProducerInterface out{"out", 64};
  comm::FslLink r{"r", 64};  // module -> MB
  comm::FslLink t{"t", 64};  // MB -> module
  std::unique_ptr<ModuleWrapper> wrapper;

  Rig() {
    clk = &sim.create_domain("prr_clk", 100.0);
    wrapper = std::make_unique<ModuleWrapper>(
        "w", std::vector<comm::ConsumerInterface*>{&in},
        std::vector<comm::ProducerInterface*>{&out}, &r, &t);
    clk->attach(wrapper.get());
  }
  ~Rig() { clk->detach(wrapper.get()); }

  void run(sim::Cycles n) { sim.run_cycles(*clk, n); }
  void feed(std::initializer_list<Word> words) {
    for (Word w : words) in.fifo().push(w);
  }
  std::vector<Word> drain_out() {
    std::vector<Word> v;
    while (!out.fifo().empty()) v.push_back(out.fifo().pop());
    return v;
  }
};

TEST(Wrapper, RunsLoadedModule) {
  Rig rig;
  rig.wrapper->load(std::make_unique<Passthrough>());
  EXPECT_EQ(rig.wrapper->phase(), ModuleWrapper::Phase::kRunning);
  rig.feed({1, 2, 3});
  rig.run(5);
  EXPECT_EQ(rig.drain_out(), (std::vector<Word>{1, 2, 3}));
  EXPECT_EQ(rig.wrapper->words_processed(), 3u);
}

TEST(Wrapper, NoModuleNoActivity) {
  Rig rig;
  rig.feed({1});
  rig.run(5);
  EXPECT_TRUE(rig.out.fifo().empty());
  EXPECT_EQ(rig.in.fifo().size(), 1);
}

TEST(Wrapper, ResetHoldsModule) {
  Rig rig;
  rig.wrapper->load(std::make_unique<Passthrough>());
  rig.wrapper->set_reset(true);
  rig.feed({1});
  rig.run(5);
  EXPECT_TRUE(rig.out.fifo().empty());
  rig.wrapper->set_reset(false);
  rig.run(2);
  EXPECT_EQ(rig.drain_out(), (std::vector<Word>{1}));
}

TEST(Wrapper, IsolationBlocksEverything) {
  Rig rig;
  rig.wrapper->load(std::make_unique<Passthrough>());
  rig.wrapper->set_isolated(true);
  rig.feed({1});
  rig.t.write(ctrl::kCmdFlush);  // control must not be consumed either
  rig.run(5);
  EXPECT_TRUE(rig.out.fifo().empty());
  EXPECT_EQ(rig.t.occupancy(), 1);
  rig.wrapper->set_isolated(false);
  rig.run(3);
  EXPECT_EQ(rig.t.occupancy(), 0);  // flush consumed once visible
}

TEST(Wrapper, FlushDrainsThenEmitsEosAndState) {
  Rig rig;
  rig.wrapper->load(std::make_unique<Gain>("g", 2, 0));
  rig.feed({1, 2, 3});
  rig.t.write(ctrl::kCmdFlush);
  rig.run(20);

  EXPECT_EQ(rig.wrapper->phase(), ModuleWrapper::Phase::kDone);
  // Remaining data processed (step 5 precondition), then EOS appended.
  EXPECT_EQ(rig.drain_out(),
            (std::vector<Word>{2, 4, 6, comm::kEndOfStreamWord}));

  // r-link: EOS note, then [STATE_HEADER, count, multiplier].
  EXPECT_EQ(rig.r.read(), ctrl::kEosSentNote);
  EXPECT_EQ(rig.r.read(), ctrl::kStateHeader);
  EXPECT_EQ(rig.r.read(), 1u);
  EXPECT_EQ(rig.r.read(), 2u);
  EXPECT_FALSE(rig.r.can_read());
}

TEST(Wrapper, FlushWithEmptyStateModule) {
  Rig rig;
  rig.wrapper->load(std::make_unique<Passthrough>());
  rig.t.write(ctrl::kCmdFlush);
  rig.run(10);
  EXPECT_EQ(rig.drain_out(), (std::vector<Word>{comm::kEndOfStreamWord}));
  EXPECT_EQ(rig.r.read(), ctrl::kEosSentNote);
  EXPECT_EQ(rig.r.read(), ctrl::kStateHeader);
  EXPECT_EQ(rig.r.read(), 0u);
}

TEST(Wrapper, FlushWaitsForUpstreamDataAlreadyBuffered) {
  // Words already in the consumer FIFO when FLUSH arrives must all be
  // processed before the EOS word (Figure 5: "filter A continues
  // processing the remaining data words present in the consumer
  // interface FIFO").
  Rig rig;
  rig.wrapper->load(std::make_unique<Passthrough>());
  for (Word w = 0; w < 40; ++w) rig.in.fifo().push(w);
  rig.t.write(ctrl::kCmdFlush);
  rig.run(60);
  const auto out = rig.drain_out();
  ASSERT_EQ(out.size(), 41u);
  for (Word w = 0; w < 40; ++w) EXPECT_EQ(out[w], w);
  EXPECT_EQ(out.back(), comm::kEndOfStreamWord);
}

TEST(Wrapper, LoadStateGatesFiringUntilRestored) {
  Rig rig;
  rig.wrapper->load(std::make_unique<Gain>("g", 1, 0));
  // Queue data and the LOAD_STATE frame before the first cycle: the
  // module must not process any word with the pre-restore multiplier.
  rig.feed({10, 20});
  rig.t.write(ctrl::kCmdLoadState);
  rig.t.write(1);
  rig.t.write(5);  // new multiplier
  rig.run(10);
  EXPECT_EQ(rig.drain_out(), (std::vector<Word>{50, 100}));
}

TEST(Wrapper, NonControlFslWordsReachBehavior) {
  Rig rig;
  rig.wrapper->load(std::make_unique<FslBridgeIn>());
  rig.t.write(77);  // plain data word
  rig.run(3);
  EXPECT_EQ(rig.drain_out(), (std::vector<Word>{77}));
}

TEST(Wrapper, PrrResetRestartsProtocol) {
  Rig rig;
  rig.wrapper->load(std::make_unique<Passthrough>());
  rig.t.write(ctrl::kCmdFlush);
  rig.run(10);
  EXPECT_EQ(rig.wrapper->phase(), ModuleWrapper::Phase::kDone);
  rig.wrapper->reset();
  EXPECT_EQ(rig.wrapper->phase(), ModuleWrapper::Phase::kRunning);
  rig.drain_out();
  rig.feed({4});
  rig.run(3);
  EXPECT_EQ(rig.drain_out(), (std::vector<Word>{4}));
}

TEST(Wrapper, UnloadReturnsBehavior) {
  Rig rig;
  rig.wrapper->load(std::make_unique<Checksum>());
  rig.feed({1, 2});
  rig.run(5);
  auto behavior = rig.wrapper->unload();
  ASSERT_NE(behavior, nullptr);
  EXPECT_EQ(static_cast<Checksum*>(behavior.get())->sum(), 3u);
  EXPECT_FALSE(rig.wrapper->loaded());
}

TEST(Wrapper, FlushWithNoModuleThrows) {
  Rig rig;
  rig.t.write(ctrl::kCmdFlush);
  // No module: wrapper ignores cycles entirely, so the control word just
  // sits there — loading later then consumes it.
  rig.run(3);
  EXPECT_EQ(rig.t.occupancy(), 1);
}

}  // namespace
}  // namespace vapres::hwmodule
