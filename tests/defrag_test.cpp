// Online defragmentation: live relocation through the 9-step hitless
// switch frees a large PRR for an otherwise-rejected app, streams stay
// loss-free and in order, and a permanent PR failure mid-migration rolls
// back leaving the donor untouched (ctest label: sched).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "load/invariants.hpp"
#include "sched/scheduler.hpp"
#include "test_util.hpp"

namespace vapres::sched {
namespace {

/// The soak harness's leak/accounting sweeps, applied after defrag
/// scenarios: migrations and rollbacks must leave the resource ledger
/// exactly consistent with the set of running chains.
void expect_invariants(const ApplicationScheduler& sched) {
  load::InvariantReport r;
  load::check_resource_ledger(sched, r);
  load::check_accounting(sched, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

/// Two large PRRs (16x10 = 640 slices) followed by two small ones
/// (16x4 = 256): first-fit donors land in the large slots, so a later
/// 300-slice app finds only small slots free — fragmented, not full.
core::SystemParams frag_params() {
  core::SystemParams p;
  p.name = "fragsys";
  core::RsbParams& r = p.rsbs[0];
  r.num_prrs = 4;
  r.num_ioms = 3;
  r.ki = 1;
  r.ko = 1;
  r.kr = 3;
  r.kl = 3;
  p.prr_rects = {fabric::ClbRect{0, 0, 16, 10},
                 fabric::ClbRect{16, 0, 16, 10},
                 fabric::ClbRect{32, 0, 16, 4},
                 fabric::ClbRect{48, 0, 16, 4}};
  return p;
}

AppRequest make_app(const std::string& name, const std::string& module,
                    int interval = 4) {
  AppRequest req;
  req.name = name;
  req.modules = {module};
  req.priority = 1;
  req.source_interval_cycles = interval;
  return req;
}

/// Submits two first-fit passthrough donors (they occupy both large
/// PRRs) and lets them stream a while.
std::vector<int> launch_donors(ApplicationScheduler& sched,
                               core::VapresSystem& sys) {
  std::vector<int> donors;
  donors.push_back(sched.submit(make_app("donor0", "passthrough")));
  donors.push_back(sched.submit(make_app("donor1", "passthrough")));
  EXPECT_EQ(sched.run_admission(), 2);
  EXPECT_EQ(sched.app(donors[0]).prrs, (std::vector<int>{0}));
  EXPECT_EQ(sched.app(donors[1]).prrs, (std::vector<int>{1}));
  sys.run_system_cycles(800);
  return donors;
}

TEST(Defrag, RelocationAdmitsFragmentedWorkload) {
  core::VapresSystem sys(frag_params());
  sys.bring_up_all_sites();
  ApplicationScheduler::Options opt;
  opt.policy = PlacementPolicy::kFirstFit;
  ApplicationScheduler sched(sys, opt);
  const auto donors = launch_donors(sched, sys);

  // ma8 (300 slices) fits only a large PRR; both are occupied by
  // 20-slice donors that fit the free small slots -> defrag.
  const int big = sched.submit(make_app("big", "ma8"));
  EXPECT_EQ(sched.run_admission(), 1);
  EXPECT_EQ(sched.app(big).verdict, AdmissionVerdict::kAdmittedAfterDefrag);
  EXPECT_EQ(sched.app(big).prrs.size(), 1u);

  // Exactly one donor moved, into a small slot, and knows it.
  const int moved_total = sched.app(donors[0]).migrations +
                          sched.app(donors[1]).migrations;
  EXPECT_EQ(moved_total, 1);
  EXPECT_EQ(sched.accounting().defrag_migrations, 1);
  for (int d : donors) {
    ASSERT_TRUE(sched.app(d).running());
    if (sched.app(d).migrations == 1) {
      EXPECT_GE(sched.app(d).prrs[0], 2) << "donor moved to a small slot";
    }
  }

  // Everyone keeps streaming: donors stay exact counter streams across
  // the migration (hitless: loss-free and in order), ma8 produces.
  sys.run_system_cycles(6000);
  for (int d : donors) {
    const auto words = sched.received_words(d);
    EXPECT_GT(words.size(), 200u);
    std::size_t bad = 0;
    EXPECT_TRUE(test::in_order_counter_stream(words, 0, &bad))
        << "donor " << d << " stream broke at index " << bad;
  }
  EXPECT_GT(sched.received_words(big).size(), 100u);
  EXPECT_EQ(core::collect_stats(sys).total_discarded(), 0u);
  // 20 + 20 + 300 occupied slices over the 1792-slice fabric.
  EXPECT_NEAR(sched.fabric_utilization(), 340.0 / 1792.0, 1e-9);
  expect_invariants(sched);
}

TEST(Defrag, DisabledDefragRejectsTheSameWorkload) {
  core::VapresSystem sys(frag_params());
  sys.bring_up_all_sites();
  ApplicationScheduler::Options opt;
  opt.policy = PlacementPolicy::kFirstFit;
  opt.enable_defrag = false;
  ApplicationScheduler sched(sys, opt);
  launch_donors(sched, sys);

  const int big = sched.submit(make_app("big", "ma8"));
  EXPECT_EQ(sched.run_admission(), 0);
  EXPECT_EQ(sched.app(big).verdict, AdmissionVerdict::kRejectedFragmented);
  EXPECT_NE(sched.app(big).reject_reason.find("occupied or too-small"),
            std::string::npos);
}

TEST(Defrag, RelocationReusesOneMasterPerFootprintClass) {
  core::VapresSystem sys(frag_params());
  sys.bring_up_all_sites();
  ApplicationScheduler::Options opt;
  opt.policy = PlacementPolicy::kFirstFit;
  ApplicationScheduler sched(sys, opt);
  const auto donors = launch_donors(sched, sys);
  (void)donors;
  sched.submit(make_app("big", "ma8"));
  EXPECT_EQ(sched.run_admission(), 1);
  // passthrough needed masters for the large (launch) and small
  // (migration target) classes; ma8 one for the large class.
  const fabric::ClbRect large{0, 0, 16, 10};
  const fabric::ClbRect small_rect{32, 0, 16, 4};
  EXPECT_TRUE(sched.store().has_master("passthrough", large));
  EXPECT_TRUE(sched.store().has_master("passthrough", small_rect));
  EXPECT_TRUE(sched.store().has_master("ma8", large));
  EXPECT_EQ(sched.store().master_count(), 3u);
}

// Property: over seeds and stream rates, defrag migrations are hitless
// for every app in flight — deterministic fault machinery enabled but
// nothing armed.
class DefragHitless : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DefragHitless, MigrationKeepsAllStreamsInOrder) {
  const std::uint64_t seed = GetParam();
  test::FaultRig rig(seed, frag_params());
  ApplicationScheduler::Options opt;
  opt.policy = PlacementPolicy::kFirstFit;
  ApplicationScheduler sched(*rig.sys, opt);

  const int interval = 2 + static_cast<int>(seed % 5);
  std::vector<int> donors;
  donors.push_back(
      sched.submit(make_app("donor0", "passthrough", interval)));
  donors.push_back(
      sched.submit(make_app("donor1", "passthrough", interval)));
  ASSERT_EQ(sched.run_admission(), 2);
  rig.sys->run_system_cycles(500 + 100 * static_cast<int>(seed % 7));

  const int big = sched.submit(make_app("big", "ma8", interval));
  ASSERT_EQ(sched.run_admission(), 1);
  EXPECT_EQ(sched.app(big).verdict,
            AdmissionVerdict::kAdmittedAfterDefrag);

  rig.sys->run_system_cycles(4000);
  for (int d : donors) {
    const auto words = sched.received_words(d);
    EXPECT_GT(words.size(), 100u);
    std::size_t bad = 0;
    EXPECT_TRUE(test::in_order_counter_stream(words, 0, &bad))
        << "seed " << seed << ": donor " << d << " broke at " << bad;
  }
  EXPECT_EQ(core::collect_stats(*rig.sys).total_discarded(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefragHitless,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Defrag, PermanentPrFailureMidMigrationRollsBack) {
  test::FaultRig rig(0xD3F4ULL, frag_params());
  ApplicationScheduler::Options opt;
  opt.policy = PlacementPolicy::kFirstFit;
  ApplicationScheduler sched(*rig.sys, opt);
  const auto donors = launch_donors(sched, *rig.sys);

  // The next ICAP transfer is the migration's PR of the small spare:
  // corrupt it with retries and CF fallback disabled -> permanent.
  rig.arm_permanent_pr_failure();
  const int big = sched.submit(make_app("big", "ma8"));
  EXPECT_EQ(sched.run_admission(), 0);
  EXPECT_EQ(sched.app(big).verdict, AdmissionVerdict::kRejectedFragmented);
  EXPECT_NE(sched.app(big).reject_reason.find("rolled back"),
            std::string::npos);

  // The 9-step switch aborted at step 3: donors still stream from their
  // original large PRRs, nothing was rerouted, nothing was dropped.
  EXPECT_EQ(sched.accounting().migration_rollbacks, 1);
  EXPECT_EQ(rig.injector().recoveries(sim::RecoveryEvent::kSwitchRollback),
            1u);
  EXPECT_EQ(core::collect_stats(*rig.sys).robustness.switch_rollbacks, 1u);
  for (std::size_t i = 0; i < donors.size(); ++i) {
    const AppRecord& d = sched.app(donors[i]);
    ASSERT_TRUE(d.running());
    EXPECT_EQ(d.migrations, 0);
    EXPECT_EQ(d.prrs, (std::vector<int>{static_cast<int>(i)}));
  }
  rig.sys->run_system_cycles(3000);
  for (int d : donors) {
    const auto words = sched.received_words(d);
    EXPECT_GT(words.size(), 100u);
    std::size_t bad = 0;
    EXPECT_TRUE(test::in_order_counter_stream(words, 0, &bad))
        << "donor " << d << " broke at " << bad;
  }
  EXPECT_EQ(core::collect_stats(*rig.sys).total_discarded(), 0u);

  // With the fault disarmed, resubmission defragments and admits.
  rig.disarm_pr_failures();
  const int retry = sched.submit(make_app("big_retry", "ma8"));
  EXPECT_EQ(sched.run_admission(), 1);
  EXPECT_EQ(sched.app(retry).verdict,
            AdmissionVerdict::kAdmittedAfterDefrag);
  rig.sys->run_system_cycles(3000);
  EXPECT_GT(sched.received_words(retry).size(), 50u);
  expect_invariants(sched);
}

}  // namespace
}  // namespace vapres::sched
