// System fuzzer: long random sequences of control-plane operations
// (connect/disconnect, reconfiguration of idle PRRs, clock gating and
// retuning, source bursts) against a streaming system. Invariants: the
// model never drops a word, never throws on a legal operation sequence,
// and simulated time keeps advancing. A second sweep repeats the churn
// with low-probability recoverable ICAP faults injected: the self-
// healing reconfiguration path must preserve the same invariants.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "core/stats.hpp"
#include "core/system.hpp"
#include "sim/fault.hpp"
#include "sim/random.hpp"

namespace vapres::core {
namespace {

using comm::Word;

void control_plane_churn(int seed) {
  sim::SplitMix64 rng(static_cast<std::uint64_t>(seed) * 48271);

  SystemParams params = SystemParams::prototype();
  params.device = fabric::DeviceGeometry::xc4vlx60();
  params.rsbs[0].num_prrs = 4;
  params.rsbs[0].num_ioms = 1;
  params.rsbs[0].prr_width_clbs = 1;  // 64-slice PRRs: ~9 ms PR
  VapresSystem sys(std::move(params));
  sys.bring_up_all_sites();
  Rsb& rsb = sys.rsb();

  // Modules small enough for the 64-slice fuzz PRRs.
  const std::vector<std::string> modules{"passthrough", "offset_100",
                                         "decim2"};
  // Pre-stage everything so mid-fuzz reconfigurations are fast.
  for (int p = 0; p < 4; ++p) {
    for (const auto& m : modules) sys.preload_sdram(m, 0, p);
    sys.reconfigure_now(0, p, modules[rng.next_below(modules.size())]);
  }

  struct Channel {
    ChannelId id;
    int producer_box;
    int consumer_box;
  };
  std::vector<Channel> channels;
  std::set<int> busy_producers;  // box indices with an active channel
  std::set<int> busy_consumers;

  // Random site: the IOM (30 %) or one of the four PRRs.
  const auto random_box = [&] {
    return rng.chance(0.3)
               ? rsb.params().box_of_iom(0)
               : rsb.params().box_of_prr(
                     static_cast<int>(rng.next_below(4)));
  };

  int source_bursts = 0;
  for (int step = 0; step < 150; ++step) {
    switch (rng.next_below(6)) {
      case 0: {  // connect random producer -> consumer
        const int pb = random_box();
        const int cb = random_box();
        if (pb == cb || busy_producers.count(pb) > 0 ||
            busy_consumers.count(cb) > 0) {
          break;
        }
        auto id = sys.connect(0, ChannelEndpoint{pb, 0},
                              ChannelEndpoint{cb, 0});
        if (id) {
          channels.push_back({*id, pb, cb});
          busy_producers.insert(pb);
          busy_consumers.insert(cb);
        }
        break;
      }
      case 1: {  // disconnect a random channel
        if (channels.empty()) break;
        const std::size_t i = rng.next_below(channels.size());
        sys.disconnect(0, channels[i].id);
        busy_producers.erase(channels[i].producer_box);
        busy_consumers.erase(channels[i].consumer_box);
        channels.erase(channels.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 2: {  // reconfigure an idle PRR (occasionally: PR dominates
                 // simulated time, and the point here is interleaving)
        if (!rng.chance(0.15)) break;
        const int p = static_cast<int>(rng.next_below(4));
        const int box = rsb.params().box_of_prr(p);
        if (busy_producers.count(box) > 0 || busy_consumers.count(box) > 0) {
          break;
        }
        sys.reconfigure_now(0, p,
                            modules[rng.next_below(modules.size())]);
        break;
      }
      case 3: {  // toggle a PRR's clock select (LCD retune)
        const int p = static_cast<int>(rng.next_below(4));
        sys.socket_set_bits(rsb.prr_socket_address(p), PrSocket::kClkSel,
                            rng.chance(0.5));
        break;
      }
      case 4: {  // burst of source data (only if the IOM feeds someone)
        if (busy_producers.count(rsb.params().box_of_iom(0)) == 0) break;
        if (rsb.iom(0).source_active()) break;
        const int burst = 10 + static_cast<int>(rng.next_below(100));
        std::vector<Word> data;
        for (int i = 0; i < burst; ++i) {
          data.push_back(static_cast<Word>(rng.next()));
        }
        rsb.iom(0).set_source_data(std::move(data),
                                   1 + static_cast<int>(rng.next_below(4)));
        ++source_bursts;
        break;
      }
      default:
        break;
    }
    sys.run_system_cycles(1 + rng.next_below(120));
  }
  sys.run_system_cycles(5000);

  const auto stats = collect_stats(sys);
  EXPECT_EQ(stats.total_discarded(), 0u) << stats.to_string();
  EXPECT_GT(stats.system_cycles, 0u);
  EXPECT_EQ(stats.active_channels, channels.size());
  // The fuzz actually exercised the system.
  EXPECT_GT(stats.dcr_accesses, 20u);
}

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, ControlPlaneChurnNeverDropsData) {
  control_plane_churn(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(1, 9));

class FaultyFuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaultyFuzzSweep, RecoverableIcapFaultsPreserveInvariants) {
  // Same churn, but every ICAP transfer has a small chance of corruption
  // or timeout. These are recoverable faults — the default retry policy
  // (3 attempts per source, CF fallback) absorbs them — so the no-drop /
  // no-throw invariants must hold unchanged; only simulated time grows.
  sim::ScopedFaultInjection faults(
      static_cast<std::uint64_t>(GetParam()) * 0x9E3779B97F4A7C15ULL);
  faults->set_probability(sim::FaultSite::kIcapBitstreamCorruption, 0.05);
  faults->set_probability(sim::FaultSite::kIcapTransferTimeout, 0.05);
  control_plane_churn(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultyFuzzSweep, ::testing::Range(1, 5));

}  // namespace
}  // namespace vapres::core
