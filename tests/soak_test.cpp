// Fast soak smoke: the sustained-load harness (src/load/soak.*) at
// ~10^3 lifetimes — the tier-1 slice of what bench_soak runs at
// 10^4..10^6 — plus the fleet soak (src/load/fleet_soak.*) over a
// 2-fabric ControlPlane with migration-churn and agent-crash-churn
// phases. ctest label: soak.
#include <gtest/gtest.h>

#include "load/fleet_soak.hpp"
#include "load/soak.hpp"

namespace vapres {
namespace {

/// Trims the standard scenario's fault-storm phase: armed injection
/// runs the kernel exhaustively, and two storm launches are enough for
/// a smoke run that must stay in CI-seconds.
load::ScenarioSpec trimmed(std::uint64_t seed, std::uint64_t lifetimes,
                           std::uint64_t storm_submissions) {
  load::ScenarioSpec spec = load::ScenarioSpec::standard(seed, lifetimes);
  for (auto& ph : spec.phases) {
    if (ph.icap_fault_probability > 0.0) ph.submissions = storm_submissions;
  }
  return spec;
}

TEST(Soak, ThousandLifetimesHoldEveryInvariant) {
  load::SoakOptions opt;
  opt.seed = 0x50AC;
  opt.lifetimes = 1'000;
  opt.scenario = trimmed(opt.seed, opt.lifetimes, 2);

  const load::SoakResult res = load::run_soak(opt);
  EXPECT_TRUE(res.invariants.ok()) << res.invariants.to_string();
  EXPECT_GT(res.invariants.checks_run, 1'000u);

  // Every lifetime completes: submit -> verdict -> (stream ->) teardown.
  EXPECT_EQ(res.submitted, res.lifetimes_completed);
  EXPECT_EQ(res.submitted, res.admitted + res.rejected);

  // The standard mix must exercise both admission outcomes and the
  // contention machinery, or the soak is not actually soaking.
  EXPECT_GT(res.admitted, 0u);
  EXPECT_GT(res.rejected, 0u);
  EXPECT_GT(res.preemptions, 0u);
  EXPECT_GT(res.churn_stops, 0u);

  EXPECT_GT(res.final_cycle, 0u);
  EXPECT_GT(res.p99_submit_to_launch, 0u);
  EXPECT_GE(res.p99_submit_to_launch, res.p50_submit_to_launch);
}

TEST(Soak, DigestIsDeterministicPerSeed) {
  load::SoakOptions opt;
  opt.seed = 77;
  opt.lifetimes = 150;
  opt.scenario = trimmed(opt.seed, opt.lifetimes, 1);

  const load::SoakResult a = load::run_soak(opt);
  const load::SoakResult b = load::run_soak(opt);
  EXPECT_TRUE(a.invariants.ok()) << a.invariants.to_string();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.final_cycle, b.final_cycle);
  EXPECT_EQ(a.admitted, b.admitted);

  load::SoakOptions other = opt;
  other.seed = 78;
  other.scenario = trimmed(other.seed, other.lifetimes, 1);
  const load::SoakResult c = load::run_soak(other);
  EXPECT_NE(a.digest, c.digest);
}

TEST(FleetSoak, ThousandLifetimesOnTwoFabricsHoldEveryInvariant) {
  load::FleetSoakOptions opt;
  opt.seed = 0xF1EE7;
  opt.lifetimes = 1'000;
  opt.num_tenants = 3;

  const load::FleetSoakResult res = load::run_fleet_soak(opt);
  EXPECT_TRUE(res.invariants.ok()) << res.invariants.to_string();
  EXPECT_GT(res.invariants.checks_run, 1'000u);

  EXPECT_EQ(res.submitted, res.lifetimes_completed);
  EXPECT_EQ(res.submitted,
            res.admitted + res.rejected + res.quota_rejected);
  EXPECT_GT(res.admitted, 0u);

  // The migration-churn phase must actually move apps across fabrics,
  // and both fabrics must carry load.
  EXPECT_GT(res.migrations_attempted, 0u);
  EXPECT_GT(res.migrations_moved, 0u);
  EXPECT_EQ(res.migrations_lost, 0u);
  ASSERT_EQ(res.fabric_mean_utilization.size(), 2u);
  EXPECT_GT(res.fabric_mean_utilization[0], 0.0);
  EXPECT_GT(res.fabric_mean_utilization[1], 0.0);

  EXPECT_GT(res.final_cycle, 0u);
  EXPECT_GE(res.p99_submit_to_launch, res.p50_submit_to_launch);
}

TEST(FleetSoak, DigestIsDeterministicPerSeed) {
  load::FleetSoakOptions opt;
  opt.seed = 99;
  opt.lifetimes = 200;
  opt.num_tenants = 2;

  const load::FleetSoakResult a = load::run_fleet_soak(opt);
  const load::FleetSoakResult b = load::run_fleet_soak(opt);
  EXPECT_TRUE(a.invariants.ok()) << a.invariants.to_string();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.final_cycle, b.final_cycle);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.migrations_moved, b.migrations_moved);

  load::FleetSoakOptions other = opt;
  other.seed = 100;
  const load::FleetSoakResult c = load::run_fleet_soak(other);
  EXPECT_NE(a.digest, c.digest);
}

TEST(FleetSoak, CrashChurnLosesNothingAndReplaysClean) {
  load::FleetSoakOptions opt;
  opt.seed = 0xC4A5;
  opt.lifetimes = 300;
  opt.num_tenants = 3;
  opt.crash_churn_every = 10;

  const load::FleetSoakResult res = load::run_fleet_soak(opt);
  EXPECT_TRUE(res.invariants.ok()) << res.invariants.to_string();
  EXPECT_GT(res.agent_kills, 0u);
  EXPECT_GT(res.replay_checks, 0u);
  EXPECT_EQ(res.reconcile_violations, 0u);
  EXPECT_EQ(res.migrations_lost, 0u);
  EXPECT_EQ(res.submitted, res.lifetimes_completed);

  // Crash churn is itself deterministic per seed.
  const load::FleetSoakResult again = load::run_fleet_soak(opt);
  EXPECT_EQ(res.digest, again.digest);

  // Restart recovery must not change routing decisions: the same seed
  // without churn admits exactly the same population.
  load::FleetSoakOptions calm = opt;
  calm.crash_churn_every = 0;
  const load::FleetSoakResult base = load::run_fleet_soak(calm);
  EXPECT_EQ(res.admitted, base.admitted);
  EXPECT_EQ(res.rejected, base.rejected);
}

}  // namespace
}  // namespace vapres
