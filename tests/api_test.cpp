// Table-2 API tests: paper-named functions with paper return conventions.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "core/system.hpp"

namespace vapres::core::api {
namespace {

SystemParams small_params() {
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 1;  // tiny bitstreams: timed calls are fast
  return p;
}

TEST(Api, ResolvePrrGlobalNumbering) {
  SystemParams p = small_params();
  RsbParams second = p.rsbs[0];
  second.num_prrs = 3;
  p.rsbs.push_back(second);
  VapresSystem sys(std::move(p));
  EXPECT_EQ(resolve_prr(sys, 0), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(resolve_prr(sys, 1), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(resolve_prr(sys, 2), (std::pair<int, int>{1, 0}));
  EXPECT_EQ(resolve_prr(sys, 4), (std::pair<int, int>{1, 2}));
  EXPECT_THROW(resolve_prr(sys, 5), ModelError);
}

TEST(Api, Cf2IcapSuccessAndFailure) {
  VapresSystem sys(small_params());
  const std::string file = sys.synthesize_to_cf("passthrough", 0, 0);
  EXPECT_EQ(vapres_cf2icap(sys, "missing.bit"), 0);
  EXPECT_EQ(vapres_cf2icap(sys, file), 1);
  EXPECT_EQ(sys.rsb().prr(0).loaded_module(), "passthrough");
}

TEST(Api, Cf2ArrayThenArray2Icap) {
  VapresSystem sys(small_params());
  const std::string file = sys.synthesize_to_cf("passthrough", 0, 1);
  int size = 0;
  EXPECT_EQ(vapres_cf2array(sys, file, "pt_arr", &size), 1);
  EXPECT_EQ(size, 4632);
  EXPECT_EQ(vapres_array2icap(sys, "pt_arr"), 1);
  EXPECT_EQ(sys.rsb().prr(1).loaded_module(), "passthrough");
  EXPECT_EQ(vapres_array2icap(sys, "missing"), 0);
}

TEST(Api, ModuleClockAndReset) {
  VapresSystem sys(small_params());
  sys.bring_up_all_sites();
  EXPECT_EQ(vapres_module_clock(sys, 0, false), 1);
  EXPECT_FALSE(sys.rsb().prr(0).clock_domain().enabled());
  EXPECT_EQ(vapres_module_clock(sys, 0, true), 1);
  EXPECT_TRUE(sys.rsb().prr(0).clock_domain().enabled());

  EXPECT_EQ(vapres_module_reset(sys, 1, true), 1);
  EXPECT_TRUE(sys.rsb().prr(1).wrapper().in_reset());
  EXPECT_EQ(vapres_module_reset(sys, 1, false), 1);
  EXPECT_FALSE(sys.rsb().prr(1).wrapper().in_reset());
}

TEST(Api, ModuleReadWriteOverFsl) {
  VapresSystem sys(small_params());
  EXPECT_EQ(vapres_module_write(sys, 0, 123), 1);
  EXPECT_EQ(sys.rsb().prr(0).fsl_from_mb().read(), 123u);

  std::uint32_t value = 0;
  EXPECT_EQ(vapres_module_read(sys, 0, &value), 0);  // empty
  sys.rsb().prr(0).fsl_to_mb().write(9);
  EXPECT_EQ(vapres_module_read(sys, 0, &value), 1);
  EXPECT_EQ(value, 9u);
}

TEST(Api, EstablishChannelPaperSemantics) {
  // Table 2: returns 1 and updates current_state on success, 0 otherwise.
  SystemParams p = small_params();
  p.rsbs[0].num_prrs = 3;
  p.rsbs[0].kr = 1;
  p.rsbs[0].kl = 1;
  VapresSystem sys(std::move(p));
  CommState* state = &sys.rsb().channels();

  EXPECT_EQ(vapres_establish_channel(sys, state, 0, 2), 1);
  EXPECT_EQ(state->active_count(), 1u);
  // Producer 0 already used.
  EXPECT_EQ(vapres_establish_channel(sys, state, 0, 1), 0);
  // Lane saturated between PRR1 and PRR2 (kr = 1).
  EXPECT_EQ(vapres_establish_channel(sys, state, 1, 2), 0);
  // Leftward direction still free.
  EXPECT_EQ(vapres_establish_channel(sys, state, 2, 0), 1);
  // Out-of-range PRR number.
  EXPECT_EQ(vapres_establish_channel(sys, state, 7, 0), 0);
}

TEST(Api, EstablishChannelRejectsForeignState) {
  VapresSystem sys(small_params());
  VapresSystem other(small_params());
  EXPECT_THROW(
      vapres_establish_channel(sys, &other.rsb().channels(), 0, 1),
      ModelError);
  EXPECT_THROW(vapres_establish_channel(sys, nullptr, 0, 1), ModelError);
}

}  // namespace
}  // namespace vapres::core::api
