// Baseline-architecture tests: shared time-multiplexed bus (Sedcole) and
// processor-routed communication (Ullmann) — the comparison points of
// Section II and bench_comm_throughput.
#include <gtest/gtest.h>

#include "baseline/cpu_routed.hpp"
#include "baseline/shared_bus.hpp"
#include "comm/fifo.hpp"
#include "proc/microblaze.hpp"
#include "sim/simulator.hpp"

namespace vapres::baseline {
namespace {

using comm::Word;

TEST(SharedBus, SingleChannelMovesOneWordPerBusCycle) {
  sim::Simulator sim;
  auto& bus_clk = sim.create_domain("bus", SharedBus::kDefaultBusClockMhz);
  SharedBus bus("bus", bus_clk);
  comm::Fifo src("src", 64);
  comm::Fifo dst("dst", 64);
  bus.add_channel(&src, &dst);
  for (Word w = 0; w < 10; ++w) src.push(w);
  sim.run_cycles(bus_clk, 10);
  EXPECT_EQ(dst.size(), 10);
  EXPECT_EQ(dst.pop(), 0u);
  EXPECT_EQ(bus.total_words(), 10u);
}

TEST(SharedBus, TdmDividesThroughputAmongChannels) {
  sim::Simulator sim;
  auto& bus_clk = sim.create_domain("bus", 50.0);
  SharedBus bus("bus", bus_clk);
  constexpr int kChannels = 4;
  std::vector<std::unique_ptr<comm::Fifo>> srcs;
  std::vector<std::unique_ptr<comm::Fifo>> dsts;
  for (int c = 0; c < kChannels; ++c) {
    srcs.push_back(std::make_unique<comm::Fifo>("s", 2048));
    dsts.push_back(std::make_unique<comm::Fifo>("d", 2048));
    for (Word w = 0; w < 1000; ++w) srcs.back()->push(w);
    bus.add_channel(srcs.back().get(), dsts.back().get());
  }
  sim.run_cycles(bus_clk, 400);
  for (int c = 0; c < kChannels; ++c) {
    EXPECT_EQ(bus.words_transferred(c), 100u);  // 400 / 4 slots each
  }
}

TEST(SharedBus, RemovedChannelSlotIsReclaimed) {
  sim::Simulator sim;
  auto& bus_clk = sim.create_domain("bus", 50.0);
  SharedBus bus("bus", bus_clk);
  comm::Fifo s0("s0", 64), d0("d0", 64), s1("s1", 64), d1("d1", 64);
  const int slot0 = bus.add_channel(&s0, &d0);
  bus.add_channel(&s1, &d1);
  bus.remove_channel(slot0);
  EXPECT_EQ(bus.active_channels(), 1);
  for (Word w = 0; w < 20; ++w) s1.push(w);
  sim.run_cycles(bus_clk, 20);
  // The dead slot's turns are skipped, not wasted.
  EXPECT_EQ(d1.size(), 20);
}

TEST(SharedBus, BlockedChannelWastesItsSlot) {
  sim::Simulator sim;
  auto& bus_clk = sim.create_domain("bus", 50.0);
  SharedBus bus("bus", bus_clk);
  comm::Fifo s0("s0", 64), d0("d0", 64), s1("s1", 64), d1("d1", 64);
  bus.add_channel(&s0, &d0);  // s0 stays empty: slot idles
  bus.add_channel(&s1, &d1);
  for (Word w = 0; w < 20; ++w) s1.push(w);
  sim.run_cycles(bus_clk, 20);
  EXPECT_EQ(d1.size(), 10);  // half the cycles went to the idle slot
}

TEST(CpuRouted, RoutesWordsAtSoftwareCost) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  comm::DcrBus dcr;
  proc::Microblaze mb("mb", clk, dcr);
  comm::FslLink from("from", 512);
  comm::FslLink to("to", 512);
  CpuRoutedLink link("link", from, to, /*cycles_per_word=*/6);
  mb.add_task(&link);
  for (Word w = 0; w < 50; ++w) from.write(w);
  sim.run_cycles(clk, 50 * 7 + 10);
  EXPECT_EQ(link.words_routed(), 50u);
  EXPECT_EQ(to.read(), 0u);
}

TEST(CpuRouted, SharedProcessorDividesThroughput) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  comm::DcrBus dcr;
  proc::Microblaze mb("mb", clk, dcr);
  comm::FslLink f1("f1", 4096), t1("t1", 4096);
  comm::FslLink f2("f2", 4096), t2("t2", 4096);
  CpuRoutedLink l1("l1", f1, t1);
  CpuRoutedLink l2("l2", f2, t2);
  mb.add_task(&l1);
  mb.add_task(&l2);
  for (Word w = 0; w < 2000; ++w) {
    f1.write(w);
    f2.write(w);
  }
  sim.run_cycles(clk, 1400);
  // ~1400 cycles / (7 cycles/word) / 2 links = ~100 words each.
  EXPECT_NEAR(static_cast<double>(l1.words_routed()), 100.0, 5.0);
  EXPECT_NEAR(static_cast<double>(l2.words_routed()), 100.0, 5.0);
}

TEST(CpuRouted, IdleLinkCostsNothing) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  comm::DcrBus dcr;
  proc::Microblaze mb("mb", clk, dcr);
  comm::FslLink from("from", 16);
  comm::FslLink to("to", 16);
  CpuRoutedLink link("link", from, to);
  mb.add_task(&link);
  sim.run_cycles(clk, 100);
  EXPECT_EQ(link.words_routed(), 0u);
  EXPECT_EQ(mb.total_busy_cycles(), 0u);
}

}  // namespace
}  // namespace vapres::baseline
