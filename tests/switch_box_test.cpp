// Switch-box unit tests: port indexing, mux selects, one-register-per-box
// pipeline latency, and module-interface behaviour (Figure 2/3 details).
#include <gtest/gtest.h>

#include "comm/module_interface.hpp"
#include "comm/switch_box.hpp"
#include "sim/simulator.hpp"

namespace vapres::comm {
namespace {

TEST(SwitchBoxShape, PortCounts) {
  const SwitchBoxShape s{2, 2, 1, 1};
  EXPECT_EQ(s.num_inputs(), 5);   // kr + kl + ko
  EXPECT_EQ(s.num_outputs(), 5);  // kr + kl + ki
}

TEST(SwitchBox, PortIndexLayout) {
  SwitchBox box("sw", SwitchBoxShape{2, 2, 1, 1});
  EXPECT_EQ(box.input_right_lane(0), 0);
  EXPECT_EQ(box.input_right_lane(1), 1);
  EXPECT_EQ(box.input_left_lane(0), 2);
  EXPECT_EQ(box.input_producer(0), 4);
  EXPECT_EQ(box.output_right_lane(1), 1);
  EXPECT_EQ(box.output_left_lane(1), 3);
  EXPECT_EQ(box.output_consumer(0), 4);
  EXPECT_THROW(box.input_right_lane(2), ModelError);
  EXPECT_THROW(box.output_consumer(1), ModelError);
}

TEST(SwitchBox, ParkedOutputsDriveIdle) {
  SwitchBox box("sw", SwitchBoxShape{1, 1, 1, 1});
  box.eval();
  box.commit();
  EXPECT_EQ(*box.output_signal(0), kIdleFlit);
}

TEST(SwitchBox, OneCycleLatencyPerBox) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  SwitchBox box("sw", SwitchBoxShape{1, 1, 1, 1});
  clk.attach(&box);

  Flit source{};
  box.connect_input(box.input_producer(0), &source);
  box.select(box.output_right_lane(0), box.input_producer(0));

  source = Flit{42, true};
  sim.run_cycles(clk, 1);
  // After one edge the input register holds the flit and the output mux
  // shows it.
  EXPECT_EQ(*box.output_signal(box.output_right_lane(0)), (Flit{42, true}));

  source = Flit{43, true};
  sim.run_cycles(clk, 1);
  EXPECT_EQ(*box.output_signal(box.output_right_lane(0)), (Flit{43, true}));
  clk.detach(&box);
}

TEST(SwitchBox, SelectChangesRouteNextCycle) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  SwitchBox box("sw", SwitchBoxShape{2, 0, 1, 1});
  clk.attach(&box);

  Flit lane0{1, true};
  Flit lane1{2, true};
  box.connect_input(box.input_right_lane(0), &lane0);
  box.connect_input(box.input_right_lane(1), &lane1);
  box.select(box.output_consumer(0), box.input_right_lane(0));
  sim.run_cycles(clk, 1);
  EXPECT_EQ(box.output_signal(box.output_consumer(0))->data, 1u);

  box.select(box.output_consumer(0), box.input_right_lane(1));
  sim.run_cycles(clk, 1);
  EXPECT_EQ(box.output_signal(box.output_consumer(0))->data, 2u);
  clk.detach(&box);
}

TEST(SwitchBox, RejectsBadSelect) {
  SwitchBox box("sw", SwitchBoxShape{1, 1, 1, 1});
  EXPECT_THROW(box.select(0, 99), ModelError);
  EXPECT_THROW(box.select(99, 0), ModelError);
  EXPECT_NO_THROW(box.select(0, -1));
}

// ----------------------------------------------------- ProducerInterface

TEST(ProducerInterface, DrainsOnlyWhenEnabled) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  ProducerInterface p("p", 8);
  clk.attach(&p);
  p.fifo().push(7);
  sim.run_cycles(clk, 3);
  EXPECT_EQ(p.fifo().size(), 1);  // FIFO_ren off: nothing drained
  EXPECT_FALSE(p.output_signal()->valid);

  p.set_read_enable(true);
  sim.run_cycles(clk, 1);
  EXPECT_TRUE(p.fifo().empty());
  EXPECT_EQ(*p.output_signal(), (Flit{7, true}));  // bit-extended valid

  sim.run_cycles(clk, 1);
  EXPECT_FALSE(p.output_signal()->valid);  // FIFO empty -> idle
  EXPECT_EQ(p.words_sent(), 1u);
  clk.detach(&p);
}

TEST(ProducerInterface, FeedbackFullBlocksDraining) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  ProducerInterface p("p", 8);
  clk.attach(&p);
  bool full = true;
  p.set_feedback_full_source(&full);
  p.set_read_enable(true);
  p.fifo().push(1);
  sim.run_cycles(clk, 5);
  EXPECT_EQ(p.fifo().size(), 1);  // held back by the feedback signal
  full = false;
  sim.run_cycles(clk, 1);
  EXPECT_TRUE(p.fifo().empty());
  clk.detach(&p);
}

TEST(ProducerInterface, ResetClearsOutput) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  ProducerInterface p("p", 8);
  clk.attach(&p);
  p.set_read_enable(true);
  p.fifo().push(5);
  sim.run_cycles(clk, 1);
  EXPECT_TRUE(p.output_signal()->valid);
  p.reset();
  EXPECT_FALSE(p.output_signal()->valid);
  clk.detach(&p);
}

// ----------------------------------------------------- ConsumerInterface

TEST(ConsumerInterface, AcceptsOnlyValidFlitsWhenEnabled) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  ConsumerInterface c("c", 8);
  clk.attach(&c);
  Flit input{};
  c.set_input_signal(&input);

  input = Flit{1, true};
  sim.run_cycles(clk, 1);
  EXPECT_TRUE(c.fifo().empty());  // FIFO_wen off: word ignored

  c.set_write_enable(true);
  input = Flit{2, true};
  sim.run_cycles(clk, 1);
  input = Flit{0, false};  // idle flits never written
  sim.run_cycles(clk, 3);
  EXPECT_EQ(c.fifo().size(), 1);
  EXPECT_EQ(c.fifo().pop(), 2u);
  EXPECT_EQ(c.words_received(), 1u);
  clk.detach(&c);
}

TEST(ConsumerInterface, DiscardsOnOverflowAndCounts) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  ConsumerInterface c("c", 2);
  clk.attach(&c);
  c.set_write_enable(true);
  Flit input{9, true};
  c.set_input_signal(&input);
  sim.run_cycles(clk, 5);  // 2 accepted, 3 discarded
  EXPECT_EQ(c.fifo().size(), 2);
  EXPECT_EQ(c.words_discarded(), 3u);
  clk.detach(&c);
}

TEST(ConsumerInterface, FeedbackAssertsAtPipelineDepthThreshold) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  ConsumerInterface c("c", 16);
  clk.attach(&c);
  c.set_write_enable(true);
  c.configure_backpressure(/*hops=*/3, BackpressurePolicy::kPipelineDepth);
  Flit input{1, true};
  c.set_input_signal(&input);
  // Threshold: remaining <= 2*3 + 2 = 8, i.e. occupancy >= 8.
  sim.run_cycles(clk, 7);
  EXPECT_FALSE(*c.full_feedback_signal());
  sim.run_cycles(clk, 2);  // occupancy 9 -> evaluated at 8
  EXPECT_TRUE(*c.full_feedback_signal());
  clk.detach(&c);
}

TEST(ConsumerInterface, LiteralPaperPolicyAssertsAlmostAlways) {
  // remaining <= 2*(N - d) with N = 64, d = 2 asserts from occupancy
  // >= N - 2*(N-d) = -60, i.e. immediately — demonstrating why the
  // printed formula cannot be meant literally (see DESIGN.md).
  ConsumerInterface c("c", 64);
  c.configure_backpressure(2, BackpressurePolicy::kLiteralPaper);
  c.eval();
  c.commit();
  EXPECT_TRUE(*c.full_feedback_signal());  // asserted on an empty FIFO
}

}  // namespace
}  // namespace vapres::comm
