// Bitstream-management subsystem (src/bitman/): LRU residency cache in
// front of CompactFlash, pin-during-transfer semantics, the pipelined
// CF->ICAP cold-miss path, the async prefetch engine (hints, dedup,
// cancellation on app teardown), and the fault-integration contract — a
// CF source fallback means the SDRAM array was poisoned, so the cache
// invalidates it and restages from the pristine file.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bitman/cache.hpp"
#include "bitman/prefetch.hpp"
#include "bitstream/bitgen.hpp"
#include "bitstream/bitstream.hpp"
#include "bitstream/calibration.hpp"
#include "core/reconfig.hpp"
#include "core/stats.hpp"
#include "core/system.hpp"
#include "sched/scheduler.hpp"
#include "sim/fault.hpp"
#include "test_util.hpp"

namespace vapres {
namespace {

using bitman::BitmanStats;
using bitman::BitstreamManager;
using bitman::PrefetchEngine;
using core::ReconfigSource;

// Every rig here uses narrow 16x4-CLB PRRs so the simulated transfers
// stay short; the matching array size feeds SDRAM capacity budgets.
std::int64_t array_bytes() {
  static const std::int64_t n =
      bitstream::PartialBitstream::create("probe", "p",
                                          fabric::ClbRect{0, 0, 16, 4})
          .size_bytes;
  return n;
}

/// A prototype system whose SDRAM holds exactly `arrays` partial
/// bitstreams (plus negligible slack), brought up and ready.
std::unique_ptr<core::VapresSystem> make_system(int arrays) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  p.sdram_bytes = arrays * array_bytes() + 100;
  auto sys = std::make_unique<core::VapresSystem>(std::move(p));
  sys->bring_up_all_sites();
  return sys;
}

// ----------------------------------------------------------- warm hits

TEST(BitmanCache, WarmHitRunsTheArrayPath) {
  auto sys = make_system(2);
  const std::string key = sys->preload_sdram("gain_x2", 0, 0);
  ASSERT_TRUE(sys->bitman().resident(key));
  ASSERT_EQ(sys->sdram().read(key).size_bytes, array_bytes());

  const sim::Cycles charged = sys->reconfigure_now(0, 0, "gain_x2");
  EXPECT_EQ(sys->rsb().prr(0).loaded_module(), "gain_x2");

  // A hit is charged exactly the pre-cache vapres_array2icap cost: the
  // cache bookkeeping (pin, LRU touch) is free, as for real SDRAM.
  const auto est = core::ReconfigManager::estimate_array2icap(array_bytes());
  EXPECT_NEAR(static_cast<double>(charged), est.total_cycles(), 2.0);

  const BitmanStats& st = sys->bitman().stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_FALSE(sys->bitman().pinned(key));  // pin dropped at completion
}

TEST(BitmanCache, InstallUsesValidCfFilenames) {
  auto sys = make_system(2);
  const auto bs = sys->compact_flash().read(
      sys->synthesize_to_cf("passthrough", 0, 0));
  const std::string filename = sys->bitman().install(bs);
  EXPECT_TRUE(bitstream::CompactFlash::valid_filename(filename)) << filename;
  EXPECT_TRUE(sys->bitman().installed("passthrough",
                                      sys->rsb().prr(0).name()));
}

// ------------------------------------------------------------ eviction

TEST(BitmanCache, EvictsLeastRecentlyUsedUnderPressure) {
  auto sys = make_system(2);
  const std::string a = sys->preload_sdram("passthrough", 0, 0);
  const std::string b = sys->preload_sdram("gain_x2", 0, 1);
  // Touch `a` (a warm demand hit) so `b` becomes the LRU entry.
  sys->reconfigure_now(0, 0, "passthrough");

  const std::string c = sys->preload_sdram("offset_100", 0, 0);
  EXPECT_TRUE(sys->bitman().resident(a));
  EXPECT_FALSE(sys->bitman().resident(b));  // LRU victim
  EXPECT_TRUE(sys->bitman().resident(c));
  EXPECT_EQ(sys->bitman().resident_count(), 2);

  const BitmanStats& st = sys->bitman().stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.evicted_bytes, array_bytes());
}

TEST(BitmanCache, PinnedEntrySurvivesEvictionPressure) {
  auto sys = make_system(1);
  const std::string key = sys->preload_sdram("gain_x2", 0, 0);

  // Open the demand reconfiguration but do not run it to completion:
  // the entry stays pinned while the transfer is in flight.
  bool done = false;
  sys->bitman().reconfigure(
      "gain_x2", sys->rsb().prr(0).name(),
      [&done](const core::ReconfigOutcome&) { done = true; });
  ASSERT_TRUE(sys->bitman().pinned(key));

  // With the only resident array pinned, staging pressure must fail
  // loudly instead of yanking the bitstream out from under the ICAP.
  const auto bs = sys->compact_flash().read(
      sys->synthesize_to_cf("passthrough", 0, 1));
  EXPECT_THROW(sys->bitman().preload(bs), ModelError);
  EXPECT_TRUE(sys->bitman().resident(key));
  // invalidate() likewise refuses pinned entries.
  EXPECT_FALSE(sys->bitman().invalidate(key));

  // Once the transfer lands the pin drops and eviction proceeds.
  ASSERT_TRUE(sys->sim().run_until([&done] { return done; },
                                   sim::kPsPerSecond * 60));
  EXPECT_EQ(sys->rsb().prr(0).loaded_module(), "gain_x2");
  EXPECT_FALSE(sys->bitman().pinned(key));
  EXPECT_NO_THROW(sys->bitman().preload(bs));
  EXPECT_FALSE(sys->bitman().resident(key));
  EXPECT_EQ(sys->bitman().stats().evictions, 1u);
}

// ---------------------------------------------------------- cold misses

TEST(BitmanCache, ColdMissStreamsFromCfThenRestages) {
  auto sys = make_system(2);
  sys->synthesize_to_cf("gain_x2", 0, 0);
  const std::string key =
      BitstreamManager::key_for("gain_x2", sys->rsb().prr(0).name());
  ASSERT_FALSE(sys->bitman().resident(key));

  sys->reconfigure_now(0, 0, "gain_x2", ReconfigSource::kManaged);
  EXPECT_EQ(sys->rsb().prr(0).loaded_module(), "gain_x2");

  const BitmanStats& st = sys->bitman().stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.streamed_misses, 1u);
  EXPECT_EQ(st.hits, 0u);

  // stage_on_miss queued a background restage; the prefetcher lands it
  // in otherwise-idle time, and the repeat request is warm.
  ASSERT_TRUE(sys->sim().run_until(
      [&] { return sys->bitman().resident(key); }, sim::kPsPerSecond * 5));
  sys->reconfigure_now(0, 0, "gain_x2", ReconfigSource::kManaged);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
}

TEST(BitmanCache, StreamedEstimateOverlapsCfReadWithIcapWrites) {
  // Double-buffered chunking hides every ICAP write under the (much
  // slower) CF read of the next chunk; only the final chunk's write and
  // the per-chunk dispatch overhead stay exposed.
  const std::int64_t bytes = 37104;  // prototype 16x10 bitstream
  const auto classic = core::ReconfigManager::estimate_cf2icap(bytes);
  const auto streamed = core::ReconfigManager::estimate_cf2icap_streamed(
      bytes, bitstream::Calibration::kStreamChunkBytes);
  EXPECT_LT(streamed.total_cycles(), classic.total_cycles());
  EXPECT_LT(streamed.icap_cycles, classic.icap_cycles);
  // The CF read itself is irreducible: streaming cannot beat it.
  EXPECT_GT(streamed.total_cycles(), classic.storage_cycles);
}

// ----------------------------------------------------------- prediction

TEST(BitmanCache, PredictorLearnsPerPrrTransitions) {
  auto sys = make_system(3);
  sys->preload_sdram("passthrough", 0, 0);
  sys->preload_sdram("gain_x2", 0, 0);
  const std::string prr = sys->rsb().prr(0).name();

  sys->reconfigure_now(0, 0, "passthrough");
  sys->reconfigure_now(0, 0, "gain_x2");
  sys->reconfigure_now(0, 0, "passthrough");

  EXPECT_EQ(sys->bitman().predicted_next(prr, "passthrough"), "gain_x2");
  EXPECT_EQ(sys->bitman().predicted_next(prr, "gain_x2"), "passthrough");
  EXPECT_EQ(sys->bitman().predicted_next(prr, "offset_100"), "");
  EXPECT_EQ(sys->bitman().predicted_next("no.such.prr", "passthrough"), "");
}

TEST(BitmanCache, PredictedNextModuleIsPrefetched) {
  auto sys = make_system(3);
  sys->preload_sdram("passthrough", 0, 0);
  const std::string b = sys->preload_sdram("gain_x2", 0, 0);

  // Teach the predictor the passthrough <-> gain_x2 alternation.
  sys->reconfigure_now(0, 0, "passthrough");
  sys->reconfigure_now(0, 0, "gain_x2");
  sys->reconfigure_now(0, 0, "passthrough");

  // Drop gain_x2 so the predictor's hint has work to do; reloading
  // passthrough hints gain_x2@prr0 to the prefetch engine.
  ASSERT_TRUE(sys->bitman().invalidate(b));
  sys->reconfigure_now(0, 0, "passthrough");
  ASSERT_TRUE(sys->sim().run_until(
      [&] { return sys->bitman().resident(b); }, sim::kPsPerSecond * 5));

  const BitmanStats& st = sys->bitman().stats();
  EXPECT_GE(st.prefetch_issued, 1u);
  EXPECT_GE(st.prefetch_completed, 1u);

  // The prefetched array serves the next demand request warm.
  sys->reconfigure_now(0, 0, "gain_x2", ReconfigSource::kManaged);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_GE(st.prefetch_useful, 1u);
}

// ------------------------------------------------------ prefetch engine

TEST(BitmanPrefetch, HintsDedupAndDropStalePairs) {
  auto sys = make_system(4);
  const std::string prr0 = sys->rsb().prr(0).name();
  const std::string prr1 = sys->rsb().prr(1).name();
  sys->synthesize_to_cf("gain_x2", 0, 0);
  sys->synthesize_to_cf("passthrough", 0, 1);
  PrefetchEngine& pf = sys->prefetch();

  pf.hint("gain_x2", prr0, /*tag=*/7);
  pf.hint("gain_x2", prr0, 7);    // duplicate pair: dropped
  pf.hint("passthrough", prr1, 7);
  pf.hint("no_such_module", prr0, 7);  // not installed: dropped
  EXPECT_EQ(pf.pending(), 2);

  // Already-resident pairs are stale on arrival.
  sys->preload_sdram("offset_100", 0, 0);
  pf.hint("offset_100", prr0, 7);
  EXPECT_EQ(pf.pending(), 2);
}

TEST(BitmanPrefetch, CancelDropsOnlyTheGivenTag) {
  auto sys = make_system(4);
  const std::string prr0 = sys->rsb().prr(0).name();
  const std::string prr1 = sys->rsb().prr(1).name();
  sys->synthesize_to_cf("gain_x2", 0, 0);
  sys->synthesize_to_cf("passthrough", 0, 1);
  sys->synthesize_to_cf("offset_100", 0, 0);
  PrefetchEngine& pf = sys->prefetch();

  pf.hint("gain_x2", prr0, /*tag=*/7);
  pf.hint("passthrough", prr1, 7);
  pf.hint("offset_100", prr0);  // kNoTag: never group-cancelled
  EXPECT_EQ(pf.pending(), 3);

  EXPECT_EQ(pf.cancel(9), 0);  // no such tag
  EXPECT_EQ(pf.cancel(7), 2);
  EXPECT_EQ(pf.cancel(PrefetchEngine::kNoTag), 0);
  EXPECT_EQ(pf.pending(), 1);
  EXPECT_EQ(sys->bitman().stats().prefetch_cancelled, 2u);
}

TEST(BitmanPrefetch, InFlightStagingSurvivesCancellation) {
  auto sys = make_system(2);
  const std::string prr0 = sys->rsb().prr(0).name();
  const std::string prr1 = sys->rsb().prr(1).name();
  sys->synthesize_to_cf("gain_x2", 0, 0);
  sys->synthesize_to_cf("passthrough", 0, 1);
  const std::string a = BitstreamManager::key_for("gain_x2", prr0);
  const std::string b = BitstreamManager::key_for("passthrough", prr1);
  PrefetchEngine& pf = sys->prefetch();

  pf.hint("gain_x2", prr0, /*tag=*/3);
  sys->run_system_cycles(10000);  // engine pops the hint, opens staging
  ASSERT_TRUE(pf.staging());
  pf.hint("passthrough", prr1, 3);

  // Cancelling the tag drops the queued hint but leaves the transfer
  // already on the wire to complete (the array is useful either way).
  EXPECT_EQ(pf.cancel(3), 1);
  ASSERT_TRUE(sys->sim().run_until(
      [&] { return sys->bitman().resident(a); }, sim::kPsPerSecond * 5));
  EXPECT_FALSE(sys->bitman().resident(b));

  const BitmanStats& st = sys->bitman().stats();
  EXPECT_EQ(st.prefetch_issued, 1u);
  EXPECT_EQ(st.prefetch_completed, 1u);
  EXPECT_EQ(st.prefetch_cancelled, 1u);
}

TEST(BitmanPrefetch, SchedulerTeardownCancelsItsQueuedHints) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;
  core::VapresSystem sys(std::move(p));
  sys.bring_up_all_sites();
  sched::ApplicationScheduler::Options opt;
  opt.source = ReconfigSource::kManaged;
  sched::ApplicationScheduler sched(sys, opt);

  sched::AppRequest req;
  req.name = "cam";
  req.modules = {"passthrough", "gain_x2"};
  req.source_interval_cycles = 4;
  req.source_words = 32;
  const int id = sched.submit(req);
  // Submission hinted the planned (module, PRR) pairs for this app.
  EXPECT_EQ(sys.prefetch().pending(), 2);

  ASSERT_EQ(sched.run_admission(), 1);
  sched.stop(id);

  // Teardown cancelled everything still queued under the app's tag
  // (preemption takes the same path); a staging the engine had already
  // opened is allowed to finish. Nothing of the app's remains queued.
  EXPECT_EQ(sys.prefetch().pending(), 0);
  const BitmanStats& st = sys.bitman().stats();
  EXPECT_EQ(st.prefetch_issued + st.prefetch_cancelled, 2u);
}

// ----------------------------------------------------- fault integration

TEST(BitmanFault, CfFallbackInvalidatesAndRestagesPoisonedArray) {
  test::FaultRig rig(0xB17CAC4Eu);
  const std::string key =
      BitstreamManager::key_for("gain_x2", rig.sys->rsb().prr(1).name());
  ASSERT_TRUE(rig.sys->bitman().resident(key));
  const BitmanStats before = rig.sys->bitman().stats();

  // Corrupt every SDRAM-sourced attempt of the next PR: the retry
  // machinery exhausts the array source and rescues the transfer from
  // the pristine CF file.
  rig.arm_array_source_fallback();
  rig.sys->reconfigure_now(0, 1, "gain_x2");
  EXPECT_EQ(rig.sys->rsb().prr(1).loaded_module(), "gain_x2");
  EXPECT_EQ(rig.sys->reconfig().fallbacks(), 1);

  // The fallback is the cache's poison signal: the array was dropped
  // and queued for restage from CompactFlash.
  const BitmanStats& st = rig.sys->bitman().stats();
  EXPECT_EQ(st.invalidations, before.invalidations + 1);
  ASSERT_TRUE(rig.sys->sim().run_until(
      [&] { return rig.sys->bitman().resident(key); },
      sim::kPsPerSecond * 5));
  EXPECT_EQ(st.staged, before.staged + 1);

  // The restaged copy serves the next demand request warm, fault-free.
  rig.sys->reconfigure_now(0, 1, "gain_x2");
  EXPECT_EQ(st.hits, before.hits + 2);
  EXPECT_GE(st.prefetch_useful, 1u);
  EXPECT_EQ(rig.sys->reconfig().fallbacks(), 1);  // no new faults

  // Counters surface through the system-wide stats report.
  const auto sysstats = core::collect_stats(*rig.sys);
  EXPECT_EQ(sysstats.bitcache.invalidations, st.invalidations);
  EXPECT_NE(sysstats.to_string().find("bitstream cache"), std::string::npos);
}

}  // namespace
}  // namespace vapres
