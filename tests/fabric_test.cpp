// Fabric-model tests: device geometry, clock regions, PRR legality,
// clocking primitives, configuration frames, ICAP port.
#include <gtest/gtest.h>

#include "fabric/clock_region.hpp"
#include "fabric/clocking.hpp"
#include "fabric/device.hpp"
#include "fabric/frame.hpp"
#include "fabric/icap.hpp"
#include "sim/simulator.hpp"

namespace vapres::fabric {
namespace {

// ------------------------------------------------------------------- Device

TEST(Device, Xc4vlx25Geometry) {
  const auto dev = DeviceGeometry::xc4vlx25();
  EXPECT_EQ(dev.clb_rows(), 96);
  EXPECT_EQ(dev.clb_cols(), 28);
  EXPECT_EQ(dev.total_slices(), 10752);  // paper: VLX25 slice budget
  EXPECT_EQ(dev.clock_region_rows(), 6);
  EXPECT_EQ(dev.clock_region_count(), 12);
  EXPECT_EQ(dev.clock_region_width_clbs(), 14);
}

TEST(Device, Xc4vlx60Geometry) {
  const auto dev = DeviceGeometry::xc4vlx60();
  EXPECT_EQ(dev.total_slices(), 26624);
}

TEST(Device, RejectsUnalignedRows) {
  EXPECT_THROW(DeviceGeometry("bad", 20, 28, 0, 0), ModelError);
  EXPECT_THROW(DeviceGeometry("bad", 96, 27, 0, 0), ModelError);
}

// ------------------------------------------------------------- ClockRegions

TEST(ClockRegion, RegionsSpannedSingle) {
  const auto dev = DeviceGeometry::xc4vlx25();
  const ClbRect rect{0, 0, 16, 10};  // prototype PRR
  const auto regions = regions_spanned(rect, dev);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], (ClockRegionId{0, 0}));
}

TEST(ClockRegion, RegionsSpannedMultipleRows) {
  const auto dev = DeviceGeometry::xc4vlx25();
  const ClbRect rect{8, 0, 32, 10};  // straddles regions 0..2
  const auto regions = regions_spanned(rect, dev);
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(vertical_region_span(rect), 3);
}

TEST(ClockRegion, RegionsSpannedCrossesCentre) {
  const auto dev = DeviceGeometry::xc4vlx25();
  const ClbRect rect{0, 10, 16, 10};  // cols 10..19 cross col 14
  EXPECT_FALSE(within_one_half(rect, dev));
  EXPECT_EQ(regions_spanned(rect, dev).size(), 2u);
}

TEST(ClockRegion, PrototypePrrIsLegal) {
  const auto dev = DeviceGeometry::xc4vlx25();
  EXPECT_TRUE(prr_legality_violation(ClbRect{0, 0, 16, 10}, dev).empty());
  EXPECT_EQ(ClbRect({0, 0, 16, 10}).slices(), 640);  // paper Section V.A
}

TEST(ClockRegion, RejectsTooTallPrr) {
  const auto dev = DeviceGeometry::xc4vlx25();
  // 4 regions (> 3x16 = 48 CLBs BUFR reach).
  EXPECT_FALSE(prr_legality_violation(ClbRect{0, 0, 64, 10}, dev).empty());
}

TEST(ClockRegion, RejectsCentreStraddle) {
  const auto dev = DeviceGeometry::xc4vlx25();
  EXPECT_FALSE(prr_legality_violation(ClbRect{0, 10, 16, 10}, dev).empty());
}

TEST(ClockRegion, RejectsOutsideDevice) {
  const auto dev = DeviceGeometry::xc4vlx25();
  EXPECT_FALSE(prr_legality_violation(ClbRect{90, 0, 16, 10}, dev).empty());
}

TEST(ClockRegion, ThreeRegionPrrIsLegal) {
  const auto dev = DeviceGeometry::xc4vlx25();
  EXPECT_TRUE(prr_legality_violation(ClbRect{0, 0, 48, 14}, dev).empty());
}

TEST(ClockRegion, Overlap) {
  EXPECT_TRUE(ClbRect({0, 0, 16, 10}).overlaps(ClbRect{8, 4, 16, 10}));
  EXPECT_FALSE(ClbRect({0, 0, 16, 10}).overlaps(ClbRect{16, 0, 16, 10}));
  EXPECT_FALSE(ClbRect({0, 0, 16, 10}).overlaps(ClbRect{0, 10, 16, 10}));
}

// ----------------------------------------------------------------- Clocking

TEST(Clocking, DcmOutputs) {
  const Dcm dcm(100.0, 2.0, 4, 8);
  EXPECT_DOUBLE_EQ(dcm.clk0_mhz(), 100.0);
  EXPECT_DOUBLE_EQ(dcm.clk2x_mhz(), 200.0);
  EXPECT_DOUBLE_EQ(dcm.clkdv_mhz(), 50.0);
  EXPECT_DOUBLE_EQ(dcm.clkfx_mhz(), 50.0);
}

TEST(Clocking, DcmRejectsBadRatios) {
  EXPECT_THROW(Dcm(100.0, 1.0, 4, 8), ModelError);
  EXPECT_THROW(Dcm(100.0, 2.0, 1, 8), ModelError);
}

TEST(Clocking, PmcdPhaseMatchedDividers) {
  const Pmcd pmcd(100.0);
  const auto outs = pmcd.outputs_mhz();
  EXPECT_DOUBLE_EQ(outs[0], 100.0);
  EXPECT_DOUBLE_EQ(outs[1], 50.0);
  EXPECT_DOUBLE_EQ(outs[2], 25.0);
  EXPECT_DOUBLE_EQ(outs[3], 12.5);
}

TEST(Clocking, BufgmuxSelects) {
  Bufgmux mux(100.0, 50.0);
  EXPECT_DOUBLE_EQ(mux.output_mhz(), 100.0);
  mux.select(1);
  EXPECT_DOUBLE_EQ(mux.output_mhz(), 50.0);
  EXPECT_THROW(mux.select(2), ModelError);
}

TEST(Clocking, BufrReach) {
  const auto dev = DeviceGeometry::xc4vlx25();
  const Bufr bufr("b", ClockRegionId{1, 0});
  // Own region and the adjacent ones.
  EXPECT_TRUE(bufr.can_drive(ClbRect{0, 0, 48, 10}, dev));   // regions 0-2
  EXPECT_FALSE(bufr.can_drive(ClbRect{48, 0, 16, 10}, dev)); // region 3
  EXPECT_FALSE(bufr.can_drive(ClbRect{16, 14, 16, 10}, dev)); // other half
}

TEST(Clocking, PrrClockTreeRetunesDomain) {
  sim::Simulator sim;
  auto& domain = sim.create_domain("prr", 100.0);
  PrrClockTree tree(Bufr("b", ClockRegionId{0, 0}), Bufgmux(100.0, 50.0),
                    domain);
  EXPECT_DOUBLE_EQ(domain.frequency_mhz(), 100.0);
  tree.select(1);
  EXPECT_DOUBLE_EQ(domain.frequency_mhz(), 50.0);
  tree.set_enabled(false);
  EXPECT_FALSE(domain.enabled());
  tree.set_enabled(true);
  EXPECT_TRUE(domain.enabled());
  tree.set_mux_input(1, 25.0);
  EXPECT_DOUBLE_EQ(domain.frequency_mhz(), 25.0);
}

// ------------------------------------------------------------------- Frames

TEST(Frames, PrototypePrrBitstreamSize) {
  // 10 CLB columns x 1 region x 22 frames = 220 frames = 36,080 bytes
  // + 1 KiB header = 37,104 bytes.
  const ClbRect rect{0, 0, 16, 10};
  EXPECT_EQ(frames_for_rect(rect), 220);
  EXPECT_EQ(partial_bitstream_bytes(rect), 220 * 164 + 1024);
}

TEST(Frames, SizeScalesWithRegions) {
  EXPECT_EQ(frames_for_rect(ClbRect{0, 0, 32, 10}),
            2 * frames_for_rect(ClbRect{0, 0, 16, 10}));
  EXPECT_EQ(frames_for_rect(ClbRect{0, 0, 16, 5}),
            frames_for_rect(ClbRect{0, 0, 16, 10}) / 2);
}

TEST(Frames, PartialRegionPaysFullRegion) {
  // 8 CLBs tall still spans one full clock region of frames.
  EXPECT_EQ(frames_for_rect(ClbRect{0, 0, 8, 10}),
            frames_for_rect(ClbRect{0, 0, 16, 10}));
  // Misaligned 16-tall spans two regions.
  EXPECT_EQ(frames_for_rect(ClbRect{8, 0, 16, 10}),
            2 * frames_for_rect(ClbRect{0, 0, 16, 10}));
}

// --------------------------------------------------------------------- ICAP

TEST(Icap, TransferLifecycle) {
  IcapPort icap(100.0);
  EXPECT_FALSE(icap.busy());
  icap.begin_transfer(1000);
  EXPECT_TRUE(icap.busy());
  EXPECT_THROW(icap.begin_transfer(10), ModelError);
  icap.end_transfer();
  EXPECT_FALSE(icap.busy());
  EXPECT_EQ(icap.total_bytes_configured(), 1000);
  EXPECT_EQ(icap.completed_transfers(), 1);
}

TEST(Icap, PhysicalFloor) {
  IcapPort icap(100.0);
  // 400 bytes = 100 words at 10 ns each = 1 us.
  EXPECT_EQ(icap.min_transfer_time_ps(400), 1'000'000u);
}

}  // namespace
}  // namespace vapres::fabric
