// Seeded workload generator (src/load/scenario.*): determinism, arrival
// statistics, class-mix fidelity, and fault-storm arming. ctest label:
// load.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "load/scenario.hpp"
#include "load/soak.hpp"
#include "sim/check.hpp"
#include "sim/fault.hpp"

namespace vapres {
namespace {

/// Serializes every field of every event, so equality is byte-for-byte
/// over the whole stream, not just spot fields.
std::string drain_to_string(load::ScenarioGenerator& gen) {
  std::ostringstream out;
  while (auto ev = gen.next()) {
    out << ev->sequence << '|' << ev->at_cycle << '|' << ev->class_index
        << '|' << ev->phase_index << '|' << ev->storm << '|'
        << ev->churn_stop << '|' << ev->hold_cycles << '|'
        << ev->request.name << '|' << ev->request.priority << '|'
        << ev->request.source_interval_cycles << '|'
        << ev->request.source_words << '|';
    for (const std::string& m : ev->request.modules) out << m << ',';
    out << '\n';
  }
  return out.str();
}

TEST(ScenarioGenerator, SameSeedIsByteForByteDeterministic) {
  const load::ScenarioSpec spec = load::ScenarioSpec::standard(42, 2'000);
  load::ScenarioGenerator a(spec);
  load::ScenarioGenerator b(spec);
  const std::string sa = drain_to_string(a);
  EXPECT_EQ(sa, drain_to_string(b));
  EXPECT_FALSE(sa.empty());

  load::ScenarioGenerator c(load::ScenarioSpec::standard(43, 2'000));
  EXPECT_NE(sa, drain_to_string(c));
}

TEST(ScenarioGenerator, EmitsExactlyTheSpecifiedSubmissions) {
  const load::ScenarioSpec spec = load::ScenarioSpec::standard(7, 1'234);
  EXPECT_EQ(spec.total_submissions(), 1'234u);
  load::ScenarioGenerator gen(spec);
  std::uint64_t n = 0;
  std::uint64_t last_at = 0;
  std::size_t last_phase = 0;
  while (auto ev = gen.next()) {
    EXPECT_EQ(ev->sequence, n);
    EXPECT_GE(ev->at_cycle, last_at) << "arrival time went backwards";
    EXPECT_GE(ev->phase_index, last_phase) << "phase index went backwards";
    last_at = ev->at_cycle;
    last_phase = ev->phase_index;
    ++n;
  }
  EXPECT_EQ(n, 1'234u);
  EXPECT_EQ(gen.current_phase(), nullptr);
}

TEST(ScenarioGenerator, PoissonArrivalRateWithinTolerance) {
  load::ScenarioSpec spec;
  spec.seed = 99;
  spec.classes = load::standard_classes();
  load::Phase ph;
  ph.name = "steady";
  ph.arrivals = load::Arrivals::kPoisson;
  ph.mean_interarrival_cycles = 5'000.0;
  ph.submissions = 20'000;
  spec.phases = {ph};

  load::ScenarioGenerator gen(spec);
  std::uint64_t last = 0;
  double sum = 0.0;
  std::uint64_t n = 0;
  while (auto ev = gen.next()) {
    sum += static_cast<double>(ev->at_cycle - last);
    last = ev->at_cycle;
    ++n;
  }
  ASSERT_EQ(n, 20'000u);
  const double mean = sum / static_cast<double>(n);
  // Std error of an exponential mean at n=20000 is mean/sqrt(n) ~ 0.7%;
  // 3% tolerance is ~4 sigma on a fixed seed.
  EXPECT_NEAR(mean, 5'000.0, 150.0);
}

TEST(ScenarioGenerator, BurstyDiurnalAlternatesDenseAndQuietWindows) {
  load::ScenarioSpec spec;
  spec.seed = 5;
  spec.classes = load::standard_classes();
  load::Phase ph;
  ph.name = "diurnal";
  ph.arrivals = load::Arrivals::kBurstyDiurnal;
  ph.mean_interarrival_cycles = 10'000.0;
  ph.burst_fraction = 0.25;
  ph.burst_rate_multiplier = 8.0;
  ph.burst_length = 16;
  ph.submissions = 8'000;
  spec.phases = {ph};

  // Gap population should be strongly bimodal: burst gaps drawn at
  // mean/8, quiet gaps at mean. Split at half the quiet mean and check
  // both the burst share and the two conditional means.
  load::ScenarioGenerator gen(spec);
  std::uint64_t last = 0;
  double burst_sum = 0.0, quiet_sum = 0.0;
  std::uint64_t burst_n = 0, quiet_n = 0;
  while (auto ev = gen.next()) {
    const double gap = static_cast<double>(ev->at_cycle - last);
    last = ev->at_cycle;
    if (gap < 5'000.0) {
      burst_sum += gap;
      ++burst_n;
    } else {
      quiet_sum += gap;
      ++quiet_n;
    }
  }
  const double burst_share =
      static_cast<double>(burst_n) / static_cast<double>(burst_n + quiet_n);
  // Bursts cover ~25% of submissions; exponential overlap across the
  // split point blurs the boundary in both directions.
  EXPECT_GT(burst_share, 0.25);
  EXPECT_LT(burst_share, 0.65);
  ASSERT_GT(burst_n, 0u);
  ASSERT_GT(quiet_n, 0u);
  EXPECT_LT(burst_sum / static_cast<double>(burst_n), 3'000.0);
  EXPECT_GT(quiet_sum / static_cast<double>(quiet_n), 7'000.0);
}

TEST(ScenarioGenerator, ClassMixHonorsWeights) {
  load::ScenarioSpec spec;
  spec.seed = 11;
  spec.classes = load::standard_classes();
  load::Phase ph;
  ph.name = "steady";
  ph.submissions = 30'000;
  spec.phases = {ph};

  double total_weight = 0.0;
  for (const auto& c : spec.classes) total_weight += c.weight;

  load::ScenarioGenerator gen(spec);
  std::map<std::size_t, std::uint64_t> counts;
  while (auto ev = gen.next()) ++counts[ev->class_index];

  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    const double expected = 30'000.0 * spec.classes[i].weight / total_weight;
    const double got = static_cast<double>(counts[i]);
    // 3-sigma binomial band around the expectation.
    const double sigma = std::sqrt(expected * (1.0 - spec.classes[i].weight /
                                                         total_weight));
    EXPECT_NEAR(got, expected, 4.0 * sigma)
        << "class " << spec.classes[i].tag;
  }
}

TEST(ScenarioGenerator, PhaseClassWeightOverrideRestrictsTheMix) {
  // The standard scenario's fault-storm phase must only draw the
  // small-footprint classes (its class_weights zero the big filters).
  const load::ScenarioSpec spec = load::ScenarioSpec::standard(21, 4'000);
  std::size_t storm_phase = spec.phases.size();
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    if (spec.phases[i].icap_fault_probability > 0.0) storm_phase = i;
  }
  ASSERT_LT(storm_phase, spec.phases.size());
  const auto& weights = spec.phases[storm_phase].class_weights;
  ASSERT_EQ(weights.size(), spec.classes.size());

  load::ScenarioGenerator gen(spec);
  std::uint64_t storm_events = 0;
  while (auto ev = gen.next()) {
    if (ev->phase_index != storm_phase) continue;
    ++storm_events;
    EXPECT_TRUE(ev->storm);
    EXPECT_GT(weights[ev->class_index], 0.0)
        << "storm drew zero-weight class "
        << spec.classes[ev->class_index].tag;
  }
  EXPECT_GT(storm_events, 0u);
}

TEST(ScenarioGenerator, RequestFieldsStayInClassRanges) {
  const load::ScenarioSpec spec = load::ScenarioSpec::standard(3, 1'000);
  load::ScenarioGenerator gen(spec);
  while (auto ev = gen.next()) {
    const load::AppClass& c = spec.classes[ev->class_index];
    EXPECT_EQ(ev->request.modules, c.modules);
    EXPECT_GE(ev->request.priority, c.min_priority);
    EXPECT_LE(ev->request.priority, c.max_priority);
    EXPECT_GE(ev->request.source_interval_cycles, 2 << c.min_interval_shift);
    EXPECT_LE(ev->request.source_interval_cycles, 2 << c.max_interval_shift);
    EXPECT_GE(ev->request.source_words, c.min_words);
    EXPECT_LE(ev->request.source_words, c.max_words);
    EXPECT_GE(ev->hold_cycles, c.min_hold_cycles);
    EXPECT_LE(ev->hold_cycles, c.max_hold_cycles);
  }
}

TEST(ScenarioGenerator, RejectsMalformedSpecs) {
  load::ScenarioSpec no_classes;
  no_classes.phases.push_back({});
  EXPECT_THROW(load::ScenarioGenerator{no_classes}, ModelError);

  load::ScenarioSpec bad_override;
  bad_override.classes = load::standard_classes();
  load::Phase ph;
  ph.class_weights = {1.0};  // wrong arity
  bad_override.phases = {ph};
  EXPECT_THROW(load::ScenarioGenerator{bad_override}, ModelError);
}

TEST(FaultStorm, StormPhaseArmsTheInjectorAndLeavesItDisabled) {
  // A storm-only scenario through the real soak harness: the ICAP site
  // must see opportunities (prove the phase armed sim::FaultInjector on
  // the live reconfiguration path), and the injector must be off again
  // when run_soak returns.
  load::SoakOptions opt;
  // Armed injection forces the exhaustive kernel (docs/SIMULATOR.md §5),
  // so every cycle under the storm is ticked edge-by-edge: keep the
  // arrivals tight and the count tiny or this test runs in minutes.
  opt.seed = 17;
  opt.lifetimes = 3;
  load::ScenarioSpec spec;
  spec.classes = load::standard_classes();
  load::Phase storm;
  storm.name = "storm";
  storm.mean_interarrival_cycles = 1.0e5;
  storm.submissions = 3;
  storm.icap_fault_probability = 0.5;
  storm.class_weights = {2.0, 2.0, 2.0, 1.5, 0.0, 0.0, 0.0};
  spec.phases = {storm};
  opt.scenario = spec;

  const load::SoakResult res = load::run_soak(opt);
  EXPECT_TRUE(res.invariants.ok()) << res.invariants.to_string();
  EXPECT_GT(res.fault_opportunities, 0u);
  EXPECT_GT(res.faults_injected, 0u);
  EXPECT_FALSE(sim::FaultInjector::instance().enabled());
}

}  // namespace
}  // namespace vapres
