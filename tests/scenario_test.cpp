// Long-running end-to-end scenarios: multi-stage applications at
// realistic stream lengths, validated against software golden models —
// the integration layer between the unit tests and the benches.
#include <gtest/gtest.h>

#include <deque>
#include <optional>

#include "core/assembler.hpp"
#include "core/stats.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "sim/random.hpp"

namespace vapres::core {
namespace {

using comm::Word;

SystemParams scenario_params(int n_prrs, int ki = 1, int ko = 1) {
  SystemParams p = SystemParams::prototype();
  p.device = fabric::DeviceGeometry::xc4vlx60();
  p.rsbs[0].num_prrs = n_prrs;
  p.rsbs[0].ki = ki;
  p.rsbs[0].ko = ko;
  p.rsbs[0].prr_width_clbs = 4;
  return p;
}

// Sensor front-end: saturate -> dcblock-free chain (gain, offset) ->
// decimate; 20k samples; exact golden model.
TEST(Scenario, SensorFrontEnd20kSamples) {
  VapresSystem sys(scenario_params(4));
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);

  KpnAppSpec app;
  app.name = "sensor_frontend";
  app.nodes = {{"clamp", "saturate_4k"},
               {"scale", "gain_half"},
               {"bias", "offset_100"},
               {"rate", "decim2"}};
  app.edges = {{"iom:0", "clamp", 0, 0},
               {"clamp", "scale", 0, 0},
               {"scale", "bias", 0, 0},
               {"bias", "rate", 0, 0},
               {"rate", "iom:0", 0, 0}};
  assembler.assemble(app);

  constexpr int kSamples = 20000;
  sim::SplitMix64 rng(2024);
  std::vector<Word> input;
  input.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    input.push_back(static_cast<Word>(rng.next_below(20000)) - 10000);
  }
  sys.rsb().iom(0).set_source_data(input);
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.rsb().iom(0).received().size() >= kSamples / 2; },
      sim::kPsPerSecond * 10));

  // Golden model.
  std::vector<Word> golden;
  int phase = 0;
  for (Word x : input) {
    auto v = static_cast<std::int32_t>(x);
    v = std::min(std::max(v, -4096), 4096);            // saturate_4k
    const Word scaled = static_cast<Word>(
        (static_cast<std::uint64_t>(static_cast<Word>(v)) *
         (1u << 15)) >> 16);                            // gain_half
    const Word biased = scaled + 100;                   // offset_100
    if (phase == 0) golden.push_back(biased);           // decim2
    phase = (phase + 1) % 2;
  }
  EXPECT_EQ(sys.rsb().iom(0).received(), golden);
  EXPECT_EQ(collect_stats(sys).total_discarded(), 0u);
}

// Two switches back to back: A -> B (PRR1), then B -> C (back into the
// now-free PRR0) — the "ping-pong" pattern a long-lived adaptive system
// uses, exercising site shutdown and reuse.
TEST(Scenario, PingPongDoubleSwitch) {
  VapresSystem sys(scenario_params(2));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "gain_x2");
  sys.preload_sdram("gain_half", 0, 1);
  sys.preload_sdram("gain_x2", 0, 0);  // for the second switch

  Rsb& rsb = sys.rsb();
  ChannelId up = *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  ChannelId down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  int n = 0;
  rsb.iom(0).set_source_generator(
      [&n]() -> std::optional<Word> { return static_cast<Word>(n++); }, 4);
  sys.run_system_cycles(400);

  // Switch 1: gain_x2 (PRR0) -> gain_half (PRR1). The state transfer
  // carries the multiplier, so the replacement keeps A's behaviour until
  // software reprograms it — here we just verify the mechanics.
  {
    SwitchRequest req;
    req.src_prr = 0;
    req.dst_prr = 1;
    req.new_module_id = "gain_half";
    req.upstream = up;
    req.downstream = down;
    ModuleSwitcher sw(sys, req);
    sw.begin();
    ASSERT_TRUE(sys.sim().run_until([&] { return sw.done(); },
                                    sim::kPsPerSecond * 60));
    up = sw.new_upstream();
    down = sw.new_downstream();
  }
  EXPECT_EQ(rsb.prr(1).loaded_module(), "gain_half");
  sys.run_system_cycles(2000);

  // Switch 2: back into PRR0 (which the first switch shut down).
  {
    SwitchRequest req;
    req.src_prr = 1;
    req.dst_prr = 0;
    req.new_module_id = "gain_x2";
    req.upstream = up;
    req.downstream = down;
    ModuleSwitcher sw(sys, req);
    sw.begin();
    ASSERT_TRUE(sys.sim().run_until([&] { return sw.done(); },
                                    sim::kPsPerSecond * 60));
  }
  EXPECT_EQ(rsb.prr(0).loaded_module(), "gain_x2");
  EXPECT_EQ(rsb.prr(0).reconfiguration_count(), 2);
  sys.run_system_cycles(2000);

  // Stream alive and ordered throughout (values change with the module
  // generation, but arrival order is the input order).
  EXPECT_EQ(rsb.iom(0).eos_seen(), 2u);
  EXPECT_EQ(collect_stats(sys).total_discarded(), 0u);
  EXPECT_GT(rsb.iom(0).received().size(), 1000u);
}

// Reassembly: run app 1, disassemble, run app 2 on the same base system
// — the multipurpose-base-system story (Section I).
TEST(Scenario, SequentialApplicationsOnOneBaseSystem) {
  VapresSystem sys(scenario_params(3));
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);

  KpnAppSpec app1;
  app1.name = "app1";
  app1.nodes = {{"g", "gain_x2"}};
  app1.edges = {{"iom:0", "g", 0, 0}, {"g", "iom:0", 0, 0}};
  const auto a1 = assembler.assemble(app1);
  sys.rsb().iom(0).set_source_data({1, 2, 3});
  sys.run_system_cycles(300);
  EXPECT_EQ(sys.rsb().iom(0).received(), (std::vector<Word>{2, 4, 6}));
  assembler.disassemble(a1);
  sys.rsb().iom(0).take_received();

  KpnAppSpec app2;
  app2.name = "app2";
  app2.nodes = {{"o", "offset_100"}, {"c", "checksum"}};
  app2.edges = {{"iom:0", "o", 0, 0},
                {"o", "c", 0, 0},
                {"c", "iom:0", 0, 0}};
  const auto a2 = assembler.assemble(app2);
  // app2's nodes land in free PRRs (PRR0 still holds app1's module).
  EXPECT_EQ(a2.placement.count("o") + a2.placement.count("c"), 2u);
  sys.rsb().iom(0).set_source_data({1, 2, 3});
  sys.run_system_cycles(400);
  EXPECT_EQ(sys.rsb().iom(0).received(),
            (std::vector<Word>{101, 102, 103}));
  EXPECT_EQ(collect_stats(sys).total_discarded(), 0u);
}

}  // namespace
}  // namespace vapres::core
