// Bitstream-layer tests: bitstream objects, storage models, bitgen, and
// the Section V.B timing calibration.
#include <gtest/gtest.h>

#include "bitstream/bitgen.hpp"
#include "bitstream/bitstream.hpp"
#include "bitstream/calibration.hpp"
#include "bitstream/storage.hpp"
#include "core/reconfig.hpp"

namespace vapres::bitstream {
namespace {

const fabric::ClbRect kPrototypePrr{0, 0, 16, 10};

TEST(Bitstream, CreateDerivesSizeFromGeometry) {
  const auto bs = PartialBitstream::create("fir8_lowpass", "prr0",
                                           kPrototypePrr);
  EXPECT_EQ(bs.size_bytes, 37104);
  EXPECT_TRUE(bs.valid());
}

TEST(Bitstream, TamperingInvalidatesTag) {
  auto bs = PartialBitstream::create("fir8_lowpass", "prr0", kPrototypePrr);
  bs.module_id = "trojan";
  EXPECT_FALSE(bs.valid());
}

TEST(Bitstream, DistinctTargetsDistinctTags) {
  const auto a = PartialBitstream::create("m", "prr0", kPrototypePrr);
  const auto b = PartialBitstream::create("m", "prr1", kPrototypePrr);
  EXPECT_NE(a.tag, b.tag);
}

TEST(Bitstream, StaticBitstreamCoversDevice) {
  const auto dev = fabric::DeviceGeometry::xc4vlx25();
  const auto bs = StaticBitstream::create("sys", dev);
  EXPECT_EQ(bs.device_name, "xc4vlx25");
  // Full device: 28 cols x 6 regions x 22 frames.
  EXPECT_EQ(bs.size_bytes, 28 * 6 * 22 * 164 + 1024);
}

// ------------------------------------------------------------------ Storage

TEST(CompactFlash, StoreAndRead) {
  CompactFlash cf;
  cf.store("f.bit", PartialBitstream::create("m", "prr0", kPrototypePrr));
  EXPECT_TRUE(cf.contains("f.bit"));
  EXPECT_EQ(cf.read("f.bit").module_id, "m");
  EXPECT_EQ(cf.list().size(), 1u);
  EXPECT_THROW(cf.read("missing.bit"), ModelError);
}

TEST(Sdram, CapacityAccounting) {
  Sdram sdram(100000);
  const auto bs = PartialBitstream::create("m", "prr0", kPrototypePrr);
  sdram.store("a", bs);
  EXPECT_EQ(sdram.used_bytes(), bs.size_bytes);
  sdram.store("b", bs);
  EXPECT_THROW(sdram.store("c", bs), ModelError);  // 3 x 37104 > 100000
  sdram.erase("a");
  sdram.store("c", bs);
  EXPECT_EQ(sdram.used_bytes(), 2 * bs.size_bytes);
}

TEST(Sdram, RejectsDuplicateKey) {
  Sdram sdram(1 << 20);
  const auto bs = PartialBitstream::create("m", "prr0", kPrototypePrr);
  sdram.store("a", bs);
  EXPECT_THROW(sdram.store("a", bs), ModelError);
}

TEST(Sdram, ReplaceOverwritesInPlace) {
  // Capacity for one array only: replace must reclaim the old array
  // before accounting the new one, so restaging never needs 2x space.
  const auto bs = PartialBitstream::create("m", "prr0", kPrototypePrr);
  Sdram sdram(bs.size_bytes + 100);
  sdram.store("a", bs);
  const auto bs2 = PartialBitstream::create("m2", "prr0", kPrototypePrr);
  sdram.replace("a", bs2);
  EXPECT_EQ(sdram.read("a").module_id, "m2");
  EXPECT_EQ(sdram.used_bytes(), bs2.size_bytes);
  // replace() on a fresh key behaves like store().
  EXPECT_THROW(sdram.replace("b", bs), ModelError);  // would exceed capacity
}

TEST(Sdram, CapacityErrorReportsSizes) {
  const auto bs = PartialBitstream::create("m", "prr0", kPrototypePrr);
  Sdram sdram(40000);
  sdram.store("a", bs);
  try {
    sdram.store("b", bs);
    FAIL() << "expected capacity error";
  } catch (const ModelError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(bs.size_bytes)), std::string::npos)
        << what;  // requested size
    EXPECT_NE(what.find(std::to_string(40000 - bs.size_bytes)),
              std::string::npos)
        << what;  // free bytes
  }
}

TEST(CompactFlash, Enforces83Filenames) {
  EXPECT_TRUE(CompactFlash::valid_filename("fi3a9c21.bit"));
  EXPECT_TRUE(CompactFlash::valid_filename("A1_~-b"));
  EXPECT_FALSE(CompactFlash::valid_filename("toolongbase.bit"));
  EXPECT_FALSE(CompactFlash::valid_filename("base.long"));
  EXPECT_FALSE(CompactFlash::valid_filename("two.dots.bit"));
  EXPECT_FALSE(CompactFlash::valid_filename(".bit"));
  EXPECT_FALSE(CompactFlash::valid_filename("sp ace.bit"));

  CompactFlash cf;
  const auto bs = PartialBitstream::create("m", "prr0", kPrototypePrr);
  EXPECT_THROW(cf.store("fir8_sys.rsb0.prr1.bit", bs), ModelError);
  EXPECT_NO_THROW(cf.store("fi3a9c21.bit", bs));
}

// ------------------------------------------------------------------- Bitgen

TEST(Bitgen, FitChecked) {
  const fabric::ResourceVector small{100, 0, 0};
  const fabric::ResourceVector huge{10000, 0, 0};
  EXPECT_NO_THROW(
      generate_partial_bitstream("m", small, "prr0", kPrototypePrr));
  EXPECT_THROW(generate_partial_bitstream("m", huge, "prr0", kPrototypePrr),
               ModelError);
}

TEST(Bitgen, FilenameStableAnd83) {
  const std::string name = bitstream_filename("fir8", "sys.rsb0.prr1");
  // Deterministic, FAT-8.3 compliant, module-prefixed, .bit extension.
  EXPECT_EQ(name, bitstream_filename("fir8", "sys.rsb0.prr1"));
  EXPECT_TRUE(CompactFlash::valid_filename(name)) << name;
  EXPECT_EQ(name.substr(0, 2), "fi");
  EXPECT_EQ(name.size(), std::string("fi000000.bit").size());
  EXPECT_EQ(name.substr(name.size() - 4), ".bit");
}

TEST(Bitgen, FilenameDistinguishesPairs) {
  EXPECT_NE(bitstream_filename("fir8", "sys.rsb0.prr0"),
            bitstream_filename("fir8", "sys.rsb0.prr1"));
  EXPECT_NE(bitstream_filename("fir8", "sys.rsb0.prr0"),
            bitstream_filename("fir4", "sys.rsb0.prr0"));
}

// ------------------------------------------------- Section V.B calibration
//
// Paper (times authoritative; see DESIGN.md on the cycle-count typo):
//   cf2icap     : 1.043 s total at 100 MHz; 95.3 % CF read, 4.7 % ICAP
//   array2icap  : 71.94 ms total

TEST(Calibration, Cf2IcapMatchesPaper) {
  const auto b = core::ReconfigManager::estimate_cf2icap(37104);
  const double seconds = b.seconds_at(Calibration::kSystemClockMhz);
  EXPECT_NEAR(seconds, 1.043, 0.011);           // within 1 %
  EXPECT_NEAR(b.storage_fraction(), 0.953, 0.002);
}

TEST(Calibration, Array2IcapMatchesPaper) {
  const auto b = core::ReconfigManager::estimate_array2icap(37104);
  const double ms = b.seconds_at(Calibration::kSystemClockMhz) * 1e3;
  EXPECT_NEAR(ms, 71.94, 0.8);  // within ~1 %
}

TEST(Calibration, SpeedupRatioMatchesPaper) {
  // 1.043 s / 71.94 ms = 14.5x speed-up from SDRAM staging.
  const auto cf = core::ReconfigManager::estimate_cf2icap(37104);
  const auto arr = core::ReconfigManager::estimate_array2icap(37104);
  EXPECT_NEAR(cf.total_cycles() / arr.total_cycles(), 14.5, 0.3);
}

TEST(Calibration, TimeScalesWithBitstreamSize) {
  const auto small = core::ReconfigManager::estimate_array2icap(10000);
  const auto large = core::ReconfigManager::estimate_array2icap(20000);
  EXPECT_NEAR(large.total_cycles() / small.total_cycles(), 2.0, 0.01);
}

TEST(Calibration, IcapSoftwarePathAbovePhysicalFloor) {
  // The measured software driver is orders of magnitude slower than the
  // port's one-word-per-cycle limit; the model must preserve that.
  fabric::IcapPort icap(100.0);
  const auto floor_ps = icap.min_transfer_time_ps(37104);
  const auto b = core::ReconfigManager::estimate_array2icap(37104);
  const double sw_ps = b.icap_cycles * 10000.0;  // 100 MHz cycles to ps
  EXPECT_GT(sw_ps, 100.0 * static_cast<double>(floor_ps));
}

}  // namespace
}  // namespace vapres::bitstream
