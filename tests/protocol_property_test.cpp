// System-level property sweeps: randomized switching-protocol runs and
// concurrent-stream stress — the invariants behind the paper's headline
// claims, checked over many random configurations.
#include <gtest/gtest.h>

#include <optional>

#include "core/stats.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "sim/random.hpp"

namespace vapres::core {
namespace {

using comm::Word;

// Compatible (same state shape) module pairs for random switches.
struct SwitchPair {
  const char* from;
  const char* to;
};
constexpr SwitchPair kPairs[] = {
    {"passthrough", "offset_100"},  // stateless -> 1-word state (skip load)
    {"gain_x2", "gain_half"},       // 1-word state
    {"ma4", "ma4"},                 // 4-word state (relocation)
    {"decim2", "decim4"},           // phase state
    {"checksum", "checksum"},       // 2-word state
    {"offset_100", "gain_x2"},      // hmm: 1-word state either way
};

// Property: for random module pairs, input rates, and PRR sizes, the
// switching protocol completes, delivers the stream in order with no
// loss at the IOM, and the output gap is bounded by the protocol tail —
// never by the reconfiguration time.
class SwitchingSweep : public ::testing::TestWithParam<int> {};

TEST_P(SwitchingSweep, NoLossOrderedBoundedGap) {
  sim::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const SwitchPair pair = kPairs[rng.next_below(std::size(kPairs))];
  const int width = 2 + static_cast<int>(rng.next_below(3));  // 2..4
  const int interval = 2 + static_cast<int>(rng.next_below(7));

  SystemParams params = SystemParams::prototype();
  params.rsbs[0].prr_width_clbs = width;
  VapresSystem sys(std::move(params));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, pair.from);
  sys.preload_sdram(pair.to, 0, 1);

  Rsb& rsb = sys.rsb();
  const auto up = *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  const auto down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  int n = 0;
  rsb.iom(0).set_source_generator(
      [&n]() -> std::optional<Word> { return static_cast<Word>(n++); },
      interval);
  sys.run_system_cycles(500);
  rsb.iom(0).reset_gap_stats();

  SwitchRequest req;
  req.src_prr = 0;
  req.dst_prr = 1;
  req.new_module_id = pair.to;
  req.upstream = up;
  req.downstream = down;
  ModuleSwitcher sw(sys, req);
  sw.begin();
  ASSERT_TRUE(sys.sim().run_until([&] { return sw.done(); },
                                  sim::kPsPerSecond * 120))
      << pair.from << " -> " << pair.to;
  sys.run_system_cycles(3000);

  // 1. Nothing dropped anywhere in the system.
  const auto stats = collect_stats(sys);
  EXPECT_EQ(stats.total_discarded(), 0u);
  // 2. Exactly one EOS passed; the IOM filtered it.
  EXPECT_EQ(rsb.iom(0).eos_seen(), 1u);
  // 3. The input stream never backed up into the external source.
  EXPECT_EQ(rsb.iom(0).source_stall_cycles(), 0u);
  // 4. The output gap is protocol-bounded: orders of magnitude below
  //    the reconfiguration time (which is >= 1.2 M cycles here).
  const auto reconfig =
      sw.timeline().reconfig_done - sw.timeline().started;
  EXPECT_GT(reconfig, 1'000'000u);
  EXPECT_LT(rsb.iom(0).max_output_gap(), 2'000u)
      << pair.from << " -> " << pair.to << " interval " << interval;
  // 5. Word count conservation at the IOM: everything the source
  //    emitted eventually arrives (transformed), minus what is still in
  //    flight inside FIFOs.
  EXPECT_GT(rsb.iom(0).received().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchingSweep, ::testing::Range(1, 13));

// Property: several concurrent streams with random connect/disconnect
// churn never lose or reorder words.
class ChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChurnSweep, ConcurrentStreamsSurviveChannelChurn) {
  sim::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  SystemParams params = SystemParams::prototype();
  params.rsbs[0].num_prrs = 3;
  params.rsbs[0].prr_width_clbs = 2;
  params.rsbs[0].kr = 2;
  params.rsbs[0].kl = 2;
  VapresSystem sys(std::move(params));
  sys.bring_up_all_sites();
  for (int p = 0; p < 3; ++p) sys.reconfigure_now(0, p, "passthrough");

  Rsb& rsb = sys.rsb();
  // One long-lived measured stream: IOM -> PRR0 -> IOM.
  ASSERT_TRUE(sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0)));
  ASSERT_TRUE(sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0)));
  int n = 0;
  constexpr int kWords = 400;
  rsb.iom(0).set_source_generator(
      [&n]() -> std::optional<Word> {
        if (n >= kWords) return std::nullopt;
        return static_cast<Word>(n++);
      },
      3);

  // Churn: repeatedly connect/disconnect a second channel between the
  // spare PRRs while the measured stream runs.
  std::optional<ChannelId> churn;
  for (int step = 0; step < 60; ++step) {
    sys.run_system_cycles(20 + rng.next_below(30));
    if (churn) {
      sys.disconnect(0, *churn);
      churn.reset();
    } else {
      churn = sys.connect(0, rsb.prr_producer(1), rsb.prr_consumer(2));
    }
  }
  sys.run_system_cycles(3000);

  const auto& rx = rsb.iom(0).received();
  ASSERT_EQ(rx.size(), static_cast<std::size_t>(kWords));
  for (int i = 0; i < kWords; ++i) {
    EXPECT_EQ(rx[static_cast<std::size_t>(i)], static_cast<Word>(i));
  }
  EXPECT_EQ(collect_stats(sys).total_discarded(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep, ::testing::Range(1, 7));

}  // namespace
}  // namespace vapres::core
