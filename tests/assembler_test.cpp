// Runtime-assembly tests (Section III.B.1 / Figure 4): KPN applications
// mapped onto RSBs, validated against a software golden KPN executor.
#include <gtest/gtest.h>

#include <map>

#include "core/assembler.hpp"
#include "core/system.hpp"
#include "sim/random.hpp"

namespace vapres::core {
namespace {

using comm::Word;

SystemParams params_with_prrs(int n_prrs, int ki = 1, int ko = 1,
                               int width_clbs = 4) {
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].num_prrs = n_prrs;
  p.rsbs[0].ki = ki;
  p.rsbs[0].ko = ko;
  p.rsbs[0].prr_width_clbs = width_clbs;  // narrow PRRs: fast reconfig
  return p;
}

TEST(Assembler, LinearPipelinePlacesRoutesAndRuns) {
  VapresSystem sys(params_with_prrs(3));
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);

  KpnAppSpec app;
  app.name = "chain";
  app.nodes = {{"g", "gain_x2"}, {"o", "offset_100"}};
  app.edges = {{"iom:0", "g", 0, 0},
               {"g", "o", 0, 0},
               {"o", "iom:0", 0, 0}};
  const auto assembly = assembler.assemble(app);
  EXPECT_EQ(assembly.placement.size(), 2u);
  EXPECT_EQ(assembly.channels.size(), 3u);
  EXPECT_GT(assembly.reconfig_cycles, 0u);

  sys.rsb().iom(0).set_source_data({1, 2, 3});
  sys.run_system_cycles(300);
  EXPECT_EQ(sys.rsb().iom(0).received(),
            (std::vector<Word>{102, 104, 106}));

  assembler.disassemble(assembly);
  EXPECT_EQ(sys.rsb().channels().active_count(), 0u);
}

TEST(Assembler, SplitterAdderDiamond) {
  // iom -> splitter -> (gain_x2, delay-free passthrough) -> adder -> iom:
  // out[n] = 2*x[n] + x[n] = 3*x[n].
  VapresSystem sys(params_with_prrs(4, /*ki=*/2, /*ko=*/2));
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);

  KpnAppSpec app;
  app.name = "diamond";
  app.nodes = {{"split", "splitter2"},
               {"a", "gain_x2"},
               {"b", "passthrough"},
               {"sum", "adder2"}};
  app.edges = {{"iom:0", "split", 0, 0},
               {"split", "a", 0, 0},
               {"split", "b", 1, 0},
               {"a", "sum", 0, 0},
               {"b", "sum", 0, 1},
               {"sum", "iom:0", 0, 0}};
  assembler.assemble(app);

  sys.rsb().iom(0).set_source_data({1, 10, 7});
  sys.run_system_cycles(500);
  EXPECT_EQ(sys.rsb().iom(0).received(), (std::vector<Word>{3, 30, 21}));
}

TEST(Assembler, SoftwareNodeViaFslBridges) {
  // Figure 4 includes KPN nodes on the MicroBlaze: hw bridge-out -> MB
  // software transform -> hw bridge-in.
  VapresSystem sys(params_with_prrs(2));
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);

  KpnAppSpec app;
  app.name = "sw_node";
  app.nodes = {{"to_mb", "fsl_bridge_out"}, {"from_mb", "fsl_bridge_in"}};
  app.edges = {{"iom:0", "to_mb", 0, 0}, {"from_mb", "iom:0", 0, 0}};
  const auto assembly = assembler.assemble(app);

  // The software module: read from to_mb's r-link, add 7, write to
  // from_mb's t-link.
  Rsb& rsb = sys.rsb();
  comm::FslLink& rx = rsb.prr(assembly.placement.at("to_mb")).fsl_to_mb();
  comm::FslLink& tx =
      rsb.prr(assembly.placement.at("from_mb")).fsl_from_mb();
  proc::FunctionTask sw_task("add7", [&](proc::Microblaze& mb) {
    if (rx.can_read() && tx.can_write()) {
      tx.write(rx.read() + 7);
      mb.busy_for(2);
    }
    return false;
  });
  sys.mb().add_task(&sw_task);

  sys.rsb().iom(0).set_source_data({1, 2, 3});
  sys.run_system_cycles(500);
  EXPECT_EQ(sys.rsb().iom(0).received(), (std::vector<Word>{8, 9, 10}));
  sys.mb().remove_task(&sw_task);
}

TEST(Assembler, RejectsMoreNodesThanPrrs) {
  VapresSystem sys(params_with_prrs(1));
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);
  KpnAppSpec app;
  app.name = "too_big";
  app.nodes = {{"a", "passthrough"}, {"b", "passthrough"}};
  EXPECT_THROW(assembler.assemble(app), ModelError);
}

TEST(Assembler, RejectsPortSignatureOverflow) {
  VapresSystem sys(params_with_prrs(2, /*ki=*/1, /*ko=*/1));
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);
  KpnAppSpec app;
  app.name = "needs_ki2";
  app.nodes = {{"sum", "adder2"}};  // needs ki = 2
  EXPECT_THROW(assembler.assemble(app), ModelError);
}

TEST(Assembler, RejectsUnknownModuleAndNode) {
  VapresSystem sys(params_with_prrs(2));
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);
  KpnAppSpec app;
  app.name = "bad";
  app.nodes = {{"a", "no_such"}};
  EXPECT_THROW(assembler.assemble(app), ModelError);
  app.nodes = {{"a", "passthrough"}};
  app.edges = {{"a", "ghost", 0, 0}};
  EXPECT_THROW(assembler.assemble(app), ModelError);
}

TEST(Assembler, PlacementSkipsOccupiedPrrs) {
  VapresSystem sys(params_with_prrs(2));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "checksum");  // PRR0 occupied
  RuntimeAssembler assembler(sys);
  KpnAppSpec app;
  app.name = "one";
  app.nodes = {{"a", "passthrough"}};
  const auto assembly = assembler.assemble(app);
  EXPECT_EQ(assembly.placement.at("a"), 1);
}

TEST(Assembler, PlacementRespectsResourceFootprints) {
  // fir16_sharp (1200 slices) only fits the big PRR.
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].num_prrs = 2;
  p.prr_rects = {fabric::ClbRect{0, 0, 16, 4},     // 256 slices
                 fabric::ClbRect{16, 0, 32, 12}};  // 1536 slices
  VapresSystem sys(std::move(p));
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);
  KpnAppSpec app;
  app.name = "big_filter";
  app.nodes = {{"f", "fir16_sharp"}};
  const auto assembly = assembler.assemble(app);
  EXPECT_EQ(assembly.placement.at("f"), 1);
}

// Property: random linear pipelines of library modules produce the same
// output as a direct software execution of the same module chain.
class RandomPipelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipelineSweep, MatchesSoftwareExecution) {
  sim::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  const std::vector<std::string> pool{"passthrough", "gain_x2",
                                      "offset_100", "checksum", "gain_half"};
  const int depth = 1 + static_cast<int>(rng.next_below(3));

  VapresSystem sys(params_with_prrs(depth, 1, 1, /*width_clbs=*/2));
  sys.bring_up_all_sites();
  RuntimeAssembler assembler(sys);

  KpnAppSpec app;
  app.name = "random_chain";
  std::vector<std::string> chain;
  for (int i = 0; i < depth; ++i) {
    chain.push_back(pool[rng.next_below(pool.size())]);
    app.nodes.push_back({"n" + std::to_string(i), chain.back()});
  }
  app.edges.push_back({"iom:0", "n0", 0, 0});
  for (int i = 0; i + 1 < depth; ++i) {
    app.edges.push_back(
        {"n" + std::to_string(i), "n" + std::to_string(i + 1), 0, 0});
  }
  app.edges.push_back({"n" + std::to_string(depth - 1), "iom:0", 0, 0});
  assembler.assemble(app);

  std::vector<Word> input;
  for (int i = 0; i < 50; ++i) input.push_back(static_cast<Word>(rng.next()));
  sys.rsb().iom(0).set_source_data(input);
  sys.run_system_cycles(2000);

  // Software execution of the same chain.
  std::vector<Word> expected = input;
  const auto& lib = sys.library();
  for (const auto& id : chain) {
    auto m = lib.instantiate(id);
    std::vector<Word> next;
    for (Word w : expected) {
      // All pool modules are 1-in-1-out, same-rate.
      struct OneShot final : hwmodule::ModulePorts {
        Word in = 0;
        bool has_in = true;
        std::vector<Word> out;
        int num_inputs() const override { return 1; }
        int num_outputs() const override { return 1; }
        bool can_read(int) const override { return has_in; }
        Word read(int) override {
          has_in = false;
          return in;
        }
        bool can_write(int) const override { return true; }
        void write(int, Word w2) override { out.push_back(w2); }
        bool fsl_can_write() const override { return true; }
        void fsl_write(Word) override {}
        std::optional<Word> fsl_try_read() override { return std::nullopt; }
      } ports;
      ports.in = w;
      m->on_cycle(ports);
      next.insert(next.end(), ports.out.begin(), ports.out.end());
    }
    expected = std::move(next);
  }
  EXPECT_EQ(sys.rsb().iom(0).received(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace vapres::core
