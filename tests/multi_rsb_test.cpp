// Multi-RSB systems: the data-processing region "contains one or more
// reconfigurable streaming blocks" (Section III.B); each RSB has its own
// switch-box fabric, channel state, and PRSocket address window, sharing
// the MicroBlaze, DCR bus, ICAP, and storage.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace vapres::core {
namespace {

SystemParams two_rsb_params() {
  SystemParams p = SystemParams::prototype();
  p.name = "dual";
  RsbParams rsb;
  rsb.num_prrs = 2;
  rsb.num_ioms = 1;
  rsb.prr_width_clbs = 4;
  p.rsbs = {rsb, rsb};
  return p;
}

TEST(MultiRsb, ConstructionAndDcrWindows) {
  VapresSystem sys(two_rsb_params());
  ASSERT_EQ(sys.num_rsbs(), 2);
  // Disjoint PRSocket address windows.
  EXPECT_EQ(sys.rsb(0).socket_address(0), 0x100u);
  EXPECT_EQ(sys.rsb(1).socket_address(0), 0x140u);
  // 3 sockets + 2 PRR perf-counter registers per RSB, and the second
  // RSB's perf bank stays inside its own 0x40 window.
  EXPECT_EQ(sys.rsb(1).prr_perf_address(0), 0x140u + 0x20u + 1u);
  EXPECT_EQ(sys.dcr().slave_count(), 10u);
  // Four PRRs, all in distinct clock regions.
  EXPECT_EQ(sys.prr_floorplan().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_FALSE(sys.prr_floorplan()[i].overlaps(sys.prr_floorplan()[j]));
    }
  }
}

TEST(MultiRsb, IndependentStreamsRunConcurrently) {
  VapresSystem sys(two_rsb_params());
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "gain_x2");
  sys.reconfigure_now(1, 0, "offset_100");

  for (int r = 0; r < 2; ++r) {
    Rsb& rsb = sys.rsb(r);
    ASSERT_TRUE(sys.connect(r, rsb.iom_producer(0), rsb.prr_consumer(0)));
    ASSERT_TRUE(sys.connect(r, rsb.prr_producer(0), rsb.iom_consumer(0)));
  }
  sys.rsb(0).iom(0).set_source_data({1, 2, 3});
  sys.rsb(1).iom(0).set_source_data({1, 2, 3});
  sys.run_system_cycles(300);

  EXPECT_EQ(sys.rsb(0).iom(0).received(),
            (std::vector<comm::Word>{2, 4, 6}));
  EXPECT_EQ(sys.rsb(1).iom(0).received(),
            (std::vector<comm::Word>{101, 102, 103}));
}

TEST(MultiRsb, ChannelStateIsPerRsb) {
  VapresSystem sys(two_rsb_params());
  sys.bring_up_all_sites();
  // Saturate RSB 0's lanes; RSB 1 is unaffected.
  auto& ch0 = sys.rsb(0).channels();
  auto& ch1 = sys.rsb(1).channels();
  ASSERT_TRUE(ch0.establish(sys.rsb(0).iom_producer(0),
                            sys.rsb(0).prr_consumer(1)));
  EXPECT_EQ(ch0.active_count(), 1u);
  EXPECT_EQ(ch1.active_count(), 0u);
  EXPECT_TRUE(ch1.establish(sys.rsb(1).iom_producer(0),
                            sys.rsb(1).prr_consumer(1)));
}

TEST(MultiRsb, IcapSerializesAcrossRsbs) {
  // One ICAP: reconfigurations of PRRs in different RSBs cannot overlap.
  VapresSystem sys(two_rsb_params());
  sys.preload_sdram("passthrough", 0, 0);
  sys.preload_sdram("passthrough", 1, 0);
  bool done = false;
  sys.reconfig().array2icap(
      "passthrough@" + sys.rsb(0).prr(0).name(), [&done](const ReconfigOutcome&) { done = true; });
  EXPECT_THROW(sys.reconfig().array2icap(
                   "passthrough@" + sys.rsb(1).prr(0).name()),
               ModelError);
  sys.sim().run_until([&] { return done; }, sim::kPsPerSecond * 10);
  EXPECT_NO_THROW(sys.reconfig().array2icap(
      "passthrough@" + sys.rsb(1).prr(0).name()));
}

TEST(MultiRsb, GlobalPrrNumberingSpansRsbs) {
  VapresSystem sys(two_rsb_params());
  sys.bring_up_all_sites();
  // vapres_module_reset addresses PRRs in RSB-major order.
  // PRR #3 = RSB 1, PRR 1.
  EXPECT_FALSE(sys.rsb(1).prr(1).wrapper().in_reset());
  sys.socket_set_bits(sys.rsb(1).prr_socket_address(1),
                      PrSocket::kPrrReset, true);
  EXPECT_TRUE(sys.rsb(1).prr(1).wrapper().in_reset());
  // And RSB 0's PRR 1 is untouched.
  EXPECT_FALSE(sys.rsb(0).prr(1).wrapper().in_reset());
}

}  // namespace
}  // namespace vapres::core
