// Module switching under injected PR failure (the property the overlap
// protocol buys us): if the reconfiguration of the spare PRR fails
// permanently, the switch rolls back cleanly — no channel moved, the
// source module keeps streaming, and the downstream consumer sees an
// uninterrupted, in-order stream. And when the failure is recoverable,
// the switch completes with the stream equally untouched.
#include <gtest/gtest.h>

#include <vector>

#include "core/stats.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "sim/fault.hpp"
#include "test_util.hpp"

namespace vapres::core {
namespace {

using comm::Word;
using sim::FaultSite;
using sim::RecoveryEvent;

// Downstream words must be 0, 1, 2, ... with no gap, duplicate, or
// reordering — passthrough preserves the counter stream exactly.
void ExpectInOrderCounterStream(const std::vector<Word>& got,
                                std::size_t at_least) {
  ASSERT_GE(got.size(), at_least);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], static_cast<Word>(i)) << "stream broke at word " << i;
  }
}

class SwitchRollbackProperty : public ::testing::TestWithParam<int> {};

TEST_P(SwitchRollbackProperty, FailedPrRollsBackWithStreamIntact) {
  const int seed = GetParam();
  test::FaultRig rig(static_cast<std::uint64_t>(seed) * 6364136223846793005ULL,
                     "passthrough", "gain_x2");
  // No retries, no fallback: the first corrupted transfer is permanent.
  rig.sys->reconfig().set_retry_policy(
      {.max_attempts = 1, .backoff_base_cycles = 256,
       .fallback_to_cf = false});
  rig.injector().arm(FaultSite::kIcapBitstreamCorruption, /*nth=*/0);

  rig.stream_counter(/*interval=*/2 + seed % 5);
  rig.sys->run_system_cycles(200);  // warm the stream
  rig.iom().reset_gap_stats();

  ModuleSwitcher sw(*rig.sys, rig.request("gain_x2"));
  ASSERT_TRUE(rig.run_until_finished(sw));
  ASSERT_TRUE(sw.aborted());
  EXPECT_FALSE(sw.done());
  EXPECT_GT(sw.timeline().aborted, sw.timeline().started);
  EXPECT_EQ(sw.timeline().reconfig_done, 0u);   // never reached
  EXPECT_EQ(sw.timeline().input_rerouted, 0u);  // nothing moved

  // Rollback: the original path is exactly as it was.
  Rsb& rsb = rig.sys->rsb();
  EXPECT_TRUE(rsb.channels().active(rig.upstream));
  EXPECT_TRUE(rsb.channels().active(rig.downstream));
  EXPECT_EQ(rsb.prr(1).loaded_module(), "");  // spare stayed empty
  const auto src_sock = rig.sys->dcr().read(rsb.prr_socket_address(0));
  EXPECT_EQ(src_sock & (PrSocket::kSmEn | PrSocket::kClkEn),
            PrSocket::kSmEn | PrSocket::kClkEn);

  // The scoreboard shows one rollback, one permanent PR failure.
  EXPECT_EQ(rig.injector().recoveries(RecoveryEvent::kSwitchRollback), 1u);
  EXPECT_EQ(rig.sys->reconfig().failures(), 1);
  EXPECT_EQ(collect_stats(*rig.sys).robustness.switch_rollbacks, 1u);

  // The stream never noticed: let it run on, then check order and gaps.
  rig.sys->run_system_cycles(3000);
  ExpectInOrderCounterStream(rig.iom().received(), 200);
  EXPECT_LE(rig.iom().max_output_gap(), 400u) << "stream interrupted";
  EXPECT_EQ(rig.iom().source_stall_cycles(), 0u);
  EXPECT_EQ(collect_stats(*rig.sys).total_discarded(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchRollbackProperty,
                         ::testing::Range(1, 7));

TEST(SwitchingFault, RecoverablePrFaultStillCompletesTheSwitch) {
  test::FaultRig rig(0xACE5u, "passthrough", "passthrough");
  // Two corrupted attempts; the default policy's third attempt lands.
  rig.injector().arm(FaultSite::kIcapBitstreamCorruption, /*nth=*/0,
                     /*count=*/2);

  rig.stream_counter(/*interval=*/4);
  rig.sys->run_system_cycles(200);
  rig.iom().reset_gap_stats();

  ModuleSwitcher sw(*rig.sys, rig.request("passthrough"));
  ASSERT_TRUE(rig.run_until_finished(sw));
  ASSERT_TRUE(sw.done());
  EXPECT_FALSE(sw.aborted());

  // The switch really happened despite the faults ...
  Rsb& rsb = rig.sys->rsb();
  EXPECT_EQ(rsb.prr(1).loaded_module(), "passthrough");
  EXPECT_TRUE(rsb.channels().active(sw.new_upstream()));
  EXPECT_FALSE(rsb.channels().active(rig.upstream));
  EXPECT_EQ(rig.sys->reconfig().retries(), 2);
  EXPECT_EQ(rig.injector().recoveries(RecoveryEvent::kIcapRetry), 2u);
  EXPECT_EQ(rig.injector().recoveries(RecoveryEvent::kSwitchRollback), 0u);

  // ... and the stream is still the unbroken counter, with the usual
  // no-interruption bound despite the PR taking three attempts.
  rig.sys->run_system_cycles(3000);
  ExpectInOrderCounterStream(rig.iom().received(), 500);
  EXPECT_LE(rig.iom().max_output_gap(), 400u) << "stream interrupted";
  EXPECT_EQ(rig.iom().source_stall_cycles(), 0u);
}

TEST(SwitchingFault, AbortedSwitcherStaysTerminal) {
  test::FaultRig rig(0xBEEFu, "passthrough", "gain_x2");
  rig.sys->reconfig().set_retry_policy(
      {.max_attempts = 1, .backoff_base_cycles = 256,
       .fallback_to_cf = false});
  rig.injector().arm(FaultSite::kIcapBitstreamCorruption, /*nth=*/0);
  rig.stream_counter();

  ModuleSwitcher sw(*rig.sys, rig.request("gain_x2"));
  ASSERT_TRUE(rig.run_until_finished(sw));
  ASSERT_TRUE(sw.aborted());
  EXPECT_TRUE(sw.finished());
  const auto stamp = sw.timeline().aborted;
  // More simulation does not resurrect the task or move its stamps.
  rig.sys->run_system_cycles(2000);
  EXPECT_TRUE(sw.aborted());
  EXPECT_EQ(sw.timeline().aborted, stamp);
  EXPECT_EQ(sw.timeline().completed, 0u);
}

}  // namespace
}  // namespace vapres::core
