// ApplicationScheduler: admission control, placement policies,
// preemption, accounting, and deterministic replay (ctest label: sched).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "load/invariants.hpp"
#include "sched/scheduler.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace vapres::sched {
namespace {

/// Runs the soak harness's resource-ledger + accounting sweeps (the same
/// checkers bench_soak applies at 10^5 lifetimes) against the current
/// scheduler state.
void expect_invariants(const ApplicationScheduler& sched) {
  load::InvariantReport r;
  load::check_resource_ledger(sched, r);
  load::check_accounting(sched, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

/// Four PRRs on the XC4VLX25, one per clock region, alternating large
/// (16x10 = 640 slices) and small (16x4 = 256 slices); three IOMs with
/// one producer + one consumer channel each, and kr = kl = 3 inter-box
/// lanes (three concurrent apps — the widest shape whose MUX_sel fields
/// still fit the 32-bit socket DCR).
core::SystemParams quad_params() {
  core::SystemParams p;
  p.name = "schedsys";
  core::RsbParams& r = p.rsbs[0];
  r.num_prrs = 4;
  r.num_ioms = 3;
  r.ki = 1;
  r.ko = 1;
  r.kr = 3;
  r.kl = 3;
  p.prr_rects = {fabric::ClbRect{0, 0, 16, 10},
                 fabric::ClbRect{16, 0, 16, 4},
                 fabric::ClbRect{32, 0, 16, 10},
                 fabric::ClbRect{48, 0, 16, 4}};
  return p;
}

AppRequest make_app(const std::string& name,
                    std::vector<std::string> modules, int priority = 1,
                    int interval = 4, std::uint64_t words = 0) {
  AppRequest req;
  req.name = name;
  req.modules = std::move(modules);
  req.priority = priority;
  req.source_interval_cycles = interval;
  req.source_words = words;
  return req;
}

TEST(Scheduler, AdmitsAndStreamsSingleApp) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  ApplicationScheduler sched(sys);

  const int id = sched.submit(
      make_app("camera", {"gain_x2"}, 1, /*interval=*/4, /*words=*/64));
  EXPECT_EQ(sched.app(id).state, AppState::kQueued);
  EXPECT_EQ(sched.run_admission(), 1);
  EXPECT_EQ(sched.app(id).state, AppState::kRunning);
  EXPECT_EQ(sched.app(id).verdict, AdmissionVerdict::kAdmitted);
  EXPECT_GT(sched.app(id).admission_mb_cycles, 0u);

  sys.run_system_cycles(3000);
  EXPECT_TRUE(sched.source_done(id));
  const auto words = sched.received_words(id);
  ASSERT_EQ(words.size(), 64u);
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(words[i], 2 * static_cast<comm::Word>(i))
        << "gain output wrong at word " << i;
  }

  sched.stop(id);
  EXPECT_EQ(sched.app(id).state, AppState::kStopped);
  EXPECT_EQ(sched.app(id).final_words_out, 64u);
  EXPECT_EQ(sched.fabric().free_count(), 4);
  EXPECT_EQ(core::collect_stats(sys).total_discarded(), 0u);

  load::InvariantReport r;
  load::check_word_conservation(sched.app(id), r);
  load::check_resource_ledger(sched, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Scheduler, ChainComputesEndToEnd) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  ApplicationScheduler sched(sys);

  const int id = sched.submit(make_app(
      "pipeline", {"gain_x2", "offset_100"}, 1, /*interval=*/4, 32));
  EXPECT_EQ(sched.run_admission(), 1);
  ASSERT_TRUE(sched.app(id).running());
  EXPECT_EQ(sched.app(id).prrs.size(), 2u);
  EXPECT_EQ(sched.app(id).channels.size(), 3u);
  EXPECT_EQ(sched.fabric().free_count(), 2);

  sys.run_system_cycles(3000);
  const auto words = sched.received_words(id);
  ASSERT_EQ(words.size(), 32u);
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(words[i], 2 * static_cast<comm::Word>(i) + 100);
  }
  sched.stop(id);
  EXPECT_EQ(sched.fabric().free_count(), 4);
}

TEST(Scheduler, BestFitPacksTighterThanFirstFit) {
  // gain_x2 (90 slices) fits both classes; best-fit must pick the small
  // PRR (256 slices, waste 166), first-fit the first large one.
  {
    core::VapresSystem sys(quad_params());
    sys.bring_up_all_sites();
    ApplicationScheduler::Options opt;
    opt.policy = PlacementPolicy::kBestFit;
    ApplicationScheduler sched(sys, opt);
    const int id = sched.submit(make_app("bf", {"gain_x2"}));
    EXPECT_EQ(sched.run_admission(), 1);
    ASSERT_EQ(sched.app(id).prrs.size(), 1u);
    EXPECT_EQ(sched.app(id).prrs[0], 1);  // small slot
  }
  {
    core::VapresSystem sys(quad_params());
    sys.bring_up_all_sites();
    ApplicationScheduler::Options opt;
    opt.policy = PlacementPolicy::kFirstFit;
    ApplicationScheduler sched(sys, opt);
    const int id = sched.submit(make_app("ff", {"gain_x2"}));
    EXPECT_EQ(sched.run_admission(), 1);
    ASSERT_EQ(sched.app(id).prrs.size(), 1u);
    EXPECT_EQ(sched.app(id).prrs[0], 0);  // first (large) slot
  }
}

TEST(Scheduler, RejectsBadSpecs) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  ApplicationScheduler sched(sys);

  const int empty = sched.submit(make_app("empty", {}));
  const int unknown = sched.submit(make_app("unknown", {"warp_drive"}));
  const int nonchain = sched.submit(make_app("fan_in", {"adder2"}));
  EXPECT_EQ(sched.run_admission(), 0);
  EXPECT_EQ(sched.app(empty).verdict, AdmissionVerdict::kRejectedBadSpec);
  EXPECT_EQ(sched.app(unknown).verdict,
            AdmissionVerdict::kRejectedBadSpec);
  EXPECT_NE(sched.app(unknown).reject_reason.find("warp_drive"),
            std::string::npos);
  EXPECT_EQ(sched.app(nonchain).verdict,
            AdmissionVerdict::kRejectedBadSpec);
}

TEST(Scheduler, RejectsRateInfeasibleStream) {
  // upsample2 doubles the rate: at one word per cycle (100 Mwords/s) it
  // needs a 200 MHz PRR clock; the ladder tops out at 100 MHz.
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  ApplicationScheduler sched(sys);
  const int id =
      sched.submit(make_app("fast", {"upsample2"}, 1, /*interval=*/1));
  EXPECT_EQ(sched.run_admission(), 0);
  EXPECT_EQ(sched.app(id).verdict,
            AdmissionVerdict::kRejectedRateInfeasible);
}

TEST(Scheduler, AssignsSlowerClockWhenSufficient) {
  // At one word per 4 cycles (25 Mwords/s) a 1:1 module only needs
  // 25 MHz — the 50 MHz clock B is picked over the 100 MHz clock A.
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  ApplicationScheduler sched(sys);
  const int id = sched.submit(
      make_app("slow", {"passthrough"}, 1, /*interval=*/4, /*words=*/16));
  EXPECT_EQ(sched.run_admission(), 1);
  ASSERT_EQ(sched.app(id).clocks_mhz.size(), 1u);
  EXPECT_DOUBLE_EQ(sched.app(id).clocks_mhz[0], 50.0);
  sys.run_system_cycles(2000);
  EXPECT_EQ(sched.received_words(id).size(), 16u);
}

TEST(Scheduler, RejectsModuleThatFitsNoPrr) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  ApplicationScheduler sched(sys);
  const int id = sched.submit(make_app("huge", {"fir16_sharp"}));
  EXPECT_EQ(sched.run_admission(), 0);
  EXPECT_EQ(sched.app(id).verdict, AdmissionVerdict::kRejectedNoPrrFit);
  EXPECT_NE(sched.app(id).reject_reason.find("fits no PRR"),
            std::string::npos);
}

TEST(Scheduler, RejectsWhenIomChannelsExhausted) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  ApplicationScheduler sched(sys);
  for (int i = 0; i < 3; ++i) {
    const int id = sched.submit(
        make_app("app" + std::to_string(i), {"passthrough"}));
    EXPECT_EQ(sched.run_admission(), 1) << "app " << i;
    EXPECT_TRUE(sched.app(id).running());
  }
  // Same priority everywhere: nothing to preempt, channels all busy.
  const int extra = sched.submit(make_app("extra", {"passthrough"}));
  EXPECT_EQ(sched.run_admission(), 0);
  EXPECT_EQ(sched.app(extra).verdict,
            AdmissionVerdict::kRejectedNoIomChannel);
  EXPECT_NE(sched.app(extra).reject_reason.find("no lower-priority"),
            std::string::npos);
}

TEST(Scheduler, PreemptsLowestPriorityYoungestFirst) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  ApplicationScheduler sched(sys);

  std::vector<int> low;
  for (int i = 0; i < 3; ++i) {
    low.push_back(sched.submit(
        make_app("low" + std::to_string(i), {"passthrough"}, 1)));
  }
  EXPECT_EQ(sched.run_admission(), 3);
  sys.run_system_cycles(500);

  const int vip = sched.submit(make_app("vip", {"ma8"}, 5));
  EXPECT_EQ(sched.run_admission(), 1);
  EXPECT_EQ(sched.app(vip).verdict,
            AdmissionVerdict::kAdmittedAfterPreempt);
  // Youngest of the lowest priority class went first.
  EXPECT_EQ(sched.app(low[2]).state, AppState::kPreempted);

  // Survivors keep streaming, loss-free and in order.
  sys.run_system_cycles(2000);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(sched.app(low[static_cast<std::size_t>(i)]).running());
    const auto words = sched.received_words(low[static_cast<std::size_t>(i)]);
    EXPECT_GT(words.size(), 100u);
    std::size_t bad = 0;
    EXPECT_TRUE(test::in_order_counter_stream(words, 0, &bad))
        << "survivor " << i << " broke at " << bad;
  }
  // The preempted app's delivered prefix is still in order.
  const auto evicted = sched.received_words(low[2]);
  EXPECT_TRUE(test::in_order_counter_stream(evicted));

  const auto acc = sched.accounting();
  EXPECT_EQ(acc.preemptions, 1);
  EXPECT_EQ(acc.admitted_after_preempt, 1);
  EXPECT_EQ(acc.admitted, 4);
  expect_invariants(sched);
}

TEST(Scheduler, StopReleasesEverythingForReuse) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  ApplicationScheduler sched(sys);
  // Cycle apps through the same resources repeatedly.
  for (int round = 0; round < 3; ++round) {
    std::vector<int> ids;
    for (int i = 0; i < 3; ++i) {
      ids.push_back(sched.submit(make_app(
          "r" + std::to_string(round) + "a" + std::to_string(i),
          {"passthrough"}, 1, 4, /*words=*/16)));
    }
    EXPECT_EQ(sched.run_admission(), 3) << "round " << round;
    sys.run_system_cycles(2000);
    for (int id : ids) {
      const auto words = sched.received_words(id);
      EXPECT_EQ(words.size(), 16u) << "app " << id;
      EXPECT_TRUE(test::in_order_counter_stream(words));
      sched.stop(id);
    }
    EXPECT_EQ(sched.fabric().free_count(), 4);
    expect_invariants(sched);
  }
  EXPECT_EQ(core::collect_stats(sys).total_discarded(), 0u);
}

TEST(Scheduler, AccountingReportCoversEveryApp) {
  core::VapresSystem sys(quad_params());
  sys.bring_up_all_sites();
  ApplicationScheduler sched(sys);
  const int ok = sched.submit(make_app("good", {"gain_x2"}, 2, 4, 32));
  const int bad = sched.submit(make_app("bad", {"fir16_sharp"}));
  sched.run_admission();
  sys.run_system_cycles(2000);

  const core::SchedulerAccounting acc = sched.accounting();
  ASSERT_EQ(acc.apps.size(), 2u);
  EXPECT_EQ(acc.submitted, 2);
  EXPECT_EQ(acc.admitted, 1);
  EXPECT_EQ(acc.rejected, 1);
  EXPECT_EQ(acc.apps[static_cast<std::size_t>(ok)].words_out, 32u);
  EXPECT_GT(acc.apps[static_cast<std::size_t>(ok)].words_in, 0u);
  EXPECT_EQ(acc.apps[static_cast<std::size_t>(ok)].module_slices, 90);
  EXPECT_EQ(acc.apps[static_cast<std::size_t>(bad)].verdict,
            std::string("rejected-no-prr-fit"));
  const std::string report = acc.to_string();
  EXPECT_NE(report.find("good"), std::string::npos);
  EXPECT_NE(report.find("bad"), std::string::npos);
  EXPECT_NE(report.find("scheduler accounting"), std::string::npos);
  EXPECT_GT(sched.fabric_utilization(), 0.0);
  expect_invariants(sched);
}

// Identical submission sequences against identical systems must replay
// to identical decisions and stream contents (fixed-seed determinism).
TEST(Scheduler, DeterministicReplay) {
  auto run_once = [](std::uint64_t seed) {
    core::VapresSystem sys(quad_params());
    sys.bring_up_all_sites();
    ApplicationScheduler sched(sys);
    sim::SplitMix64 rng(seed);
    const std::vector<std::string> menu = {"passthrough", "gain_x2",
                                           "offset_100", "ma8",
                                           "fir4_smooth"};
    std::vector<int> ids;
    for (int i = 0; i < 8; ++i) {
      const std::string m = menu[rng.next_below(menu.size())];
      const int prio = 1 + static_cast<int>(rng.next_below(3));
      const int interval = 2 << rng.next_below(3);
      ids.push_back(sched.submit(make_app("app" + std::to_string(i), {m},
                                          prio, interval)));
      sched.run_admission();
      sys.run_system_cycles(200);
    }
    std::vector<std::string> trace;
    for (int id : ids) {
      const AppRecord& a = sched.app(id);
      std::string row = a.request.name;
      row += "|" + std::string(verdict_name(a.verdict));
      row += "|" + std::string(state_name(a.state));
      for (int p : a.prrs) row += "|p" + std::to_string(p);
      if (a.launched_at != 0) {
        row += "|w" + std::to_string(sched.received_words(id).size());
      }
      trace.push_back(row);
    }
    return trace;
  };
  EXPECT_EQ(run_once(42), run_once(42));
}

}  // namespace
}  // namespace vapres::sched
