// Simulation-kernel tests: event queue, clock domains, two-phase
// semantics, multi-domain ordering, runtime frequency changes.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace vapres::sim {
namespace {

// ---------------------------------------------------------------- EventQueue

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_due(30);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameTimestampFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  q.run_due(7);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule_at(50, [] {});
  q.schedule_at(40, [] {});
  EXPECT_EQ(q.next_time(), 40u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule_at(5, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  q.run_due(10);
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterRunReturnsFalse) {
  EventQueue q;
  const auto id = q.schedule_at(5, [] {});
  q.run_due(5);
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, EventsScheduledDuringRunAtSameTimeAlsoRun) {
  EventQueue q;
  int count = 0;
  q.schedule_at(10, [&] {
    ++count;
    q.schedule_at(10, [&] { ++count; });
  });
  q.run_due(10);
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const auto id = q.schedule_at(5, [] {});
  q.schedule_at(9, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 9u);
}

// --------------------------------------------------------------- ClockDomain

class Counter final : public Clocked {
 public:
  int evals = 0;
  int commits = 0;
  void eval() override { ++evals; }
  void commit() override { ++commits; }
};

TEST(ClockDomain, PeriodFromFrequency) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  EXPECT_EQ(d.period_ps(), 10000u);
  EXPECT_DOUBLE_EQ(d.frequency_mhz(), 100.0);
}

TEST(ClockDomain, TicksDeliverEvalThenCommit) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  Counter c;
  d.attach(&c);
  sim.run_cycles(d, 5);
  EXPECT_EQ(c.evals, 5);
  EXPECT_EQ(c.commits, 5);
  EXPECT_EQ(d.cycle_count(), 5u);
}

TEST(ClockDomain, DisabledDomainDoesNotTick) {
  Simulator sim;
  auto& a = sim.create_domain("a", 100.0);
  auto& b = sim.create_domain("b", 100.0);
  Counter ca;
  Counter cb;
  a.attach(&ca);
  b.attach(&cb);
  b.set_enabled(false);
  sim.run_cycles(a, 10);
  EXPECT_EQ(ca.commits, 10);
  EXPECT_EQ(cb.commits, 0);
}

TEST(ClockDomain, ReenableResumesOnePeriodLater) {
  Simulator sim;
  auto& a = sim.create_domain("a", 100.0);
  auto& b = sim.create_domain("b", 100.0);
  Counter ca;
  Counter cb;
  a.attach(&ca);
  b.attach(&cb);
  b.set_enabled(false);
  sim.run_cycles(a, 10);
  b.set_enabled(true);
  sim.run_cycles(a, 10);
  EXPECT_EQ(cb.commits, 10);
}

TEST(ClockDomain, FrequencyRatiosRespected) {
  Simulator sim;
  auto& fast = sim.create_domain("fast", 100.0);
  auto& slow = sim.create_domain("slow", 25.0);
  Counter cf;
  Counter cs;
  fast.attach(&cf);
  slow.attach(&cs);
  sim.run_cycles(fast, 100);
  EXPECT_EQ(cf.commits, 100);
  EXPECT_EQ(cs.commits, 25);
}

TEST(ClockDomain, RuntimeRetuneChangesRate) {
  Simulator sim;
  auto& fast = sim.create_domain("fast", 100.0);
  auto& tuned = sim.create_domain("tuned", 100.0);
  Counter cf;
  Counter ct;
  fast.attach(&cf);
  tuned.attach(&ct);
  sim.run_cycles(fast, 50);
  EXPECT_EQ(ct.commits, 50);
  tuned.set_frequency_mhz(50.0);  // half rate from now on
  sim.run_cycles(fast, 50);
  EXPECT_EQ(ct.commits, 50 + 25);
}

TEST(ClockDomain, CyclesToPs) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  EXPECT_EQ(d.cycles_to_ps(100), 1'000'000u);
}

// ----------------------------------------------------------------- Simulator

TEST(Simulator, StepReturnsFalseWhenNothingToDo) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsBeforeCoincidentEdges) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);  // edge at 10000 ps
  std::vector<std::string> order;
  class Obs final : public Clocked {
   public:
    explicit Obs(std::vector<std::string>& log) : log_(log) {}
    void eval() override {}
    void commit() override { log_.push_back("edge"); }

   private:
    std::vector<std::string>& log_;
  };
  Obs obs(order);
  d.attach(&obs);
  sim.schedule_after(10000, [&] { order.push_back("event"); });
  sim.run_for(10000);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "event");
  EXPECT_EQ(order[1], "edge");
}

TEST(Simulator, ScheduleAfterCycles) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  Counter c;
  d.attach(&c);
  bool fired = false;
  sim.schedule_after_cycles(d, 10, [&] { fired = true; });
  sim.run_cycles(d, 9);
  EXPECT_FALSE(fired);
  sim.run_cycles(d, 1);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  Counter c;
  d.attach(&c);
  EXPECT_TRUE(sim.run_until([&] { return c.commits >= 42; },
                            kPsPerSecond));
  EXPECT_EQ(c.commits, 42);
}

TEST(Simulator, RunUntilTimesOut) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  Counter c;
  d.attach(&c);
  EXPECT_FALSE(sim.run_until([] { return false; }, 100000));
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  auto& d = sim.create_domain("clk", 100.0);
  Counter c;
  d.attach(&c);
  bool fired = false;
  const auto id = sim.schedule_after(50000, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_for(100000);
  EXPECT_FALSE(fired);
}

// -------------------------------------------------------------------- Random

TEST(SplitMix64, DeterministicAcrossInstances) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, BoundedValues) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---------------------------------------------------------------------- time

TEST(Time, PeriodConversions) {
  EXPECT_EQ(period_ps_from_mhz(100.0), 10000u);
  EXPECT_EQ(period_ps_from_mhz(50.0), 20000u);
  EXPECT_EQ(period_ps_from_mhz(200.0), 5000u);
  EXPECT_DOUBLE_EQ(mhz_from_period_ps(10000), 100.0);
  EXPECT_DOUBLE_EQ(seconds(kPsPerSecond), 1.0);
  EXPECT_DOUBLE_EQ(milliseconds(kPsPerSecond / 2), 500.0);
}

TEST(Time, RejectsNonPositiveFrequency) {
  EXPECT_THROW(period_ps_from_mhz(0.0), ModelError);
  EXPECT_THROW(period_ps_from_mhz(-5.0), ModelError);
}

}  // namespace
}  // namespace vapres::sim
