// Bitstream-relocation tests (hardware module reuse — the authors'
// follow-on to VAPRES; see src/bitstream/relocation.hpp).
#include <gtest/gtest.h>

#include "bitstream/bitgen.hpp"
#include "bitstream/relocation.hpp"
#include "sim/check.hpp"

namespace vapres::bitstream {
namespace {

const fabric::ClbRect kPrr0{0, 0, 16, 10};
const fabric::ClbRect kPrr1{16, 0, 16, 10};       // same footprint, above
const fabric::ClbRect kPrrRight{32, 14, 16, 10};  // same footprint, right half
const fabric::ClbRect kNarrow{48, 0, 16, 4};
const fabric::ClbRect kMisaligned{8, 0, 16, 10};  // offset 8 within region

TEST(Relocation, CompatibleFootprints) {
  EXPECT_TRUE(relocatable(kPrr0, kPrr1));
  EXPECT_TRUE(relocatable(kPrr0, kPrrRight));
  EXPECT_TRUE(relocatable(kPrr1, kPrr0));
  EXPECT_FALSE(relocatable(kPrr0, kNarrow));       // width differs
  EXPECT_FALSE(relocatable(kPrr0, kMisaligned));   // row offset differs
}

TEST(Relocation, FootprintClassKeys) {
  EXPECT_EQ(footprint_class(kPrr0), footprint_class(kPrr1));
  EXPECT_EQ(footprint_class(kPrr0), "h16w10o0");
  EXPECT_NE(footprint_class(kPrr0), footprint_class(kNarrow));
  EXPECT_NE(footprint_class(kPrr0), footprint_class(kMisaligned));
}

TEST(Relocation, RelocatePreservesSizeAndRetags) {
  const auto bs = PartialBitstream::create("fir8_lowpass", "prr0", kPrr0);
  const auto moved = relocate(bs, "prr1", kPrr1);
  EXPECT_EQ(moved.module_id, "fir8_lowpass");
  EXPECT_EQ(moved.target_prr, "prr1");
  EXPECT_EQ(moved.region, kPrr1);
  EXPECT_EQ(moved.size_bytes, bs.size_bytes);
  EXPECT_TRUE(moved.valid());
  EXPECT_NE(moved.tag, bs.tag);
}

TEST(Relocation, RejectsIncompatibleTargets) {
  const auto bs = PartialBitstream::create("m", "prr0", kPrr0);
  EXPECT_THROW(relocate(bs, "narrow", kNarrow), ModelError);
  EXPECT_THROW(relocate(bs, "mis", kMisaligned), ModelError);
}

TEST(Relocation, RejectsCorruptInput) {
  auto bs = PartialBitstream::create("m", "prr0", kPrr0);
  bs.module_id = "tampered";
  EXPECT_THROW(relocate(bs, "prr1", kPrr1), ModelError);
}

TEST(Relocation, RewriteCostIsOnePassOverTheBitstream) {
  EXPECT_DOUBLE_EQ(relocation_cycles(37104), 2.0 * 37104);
  EXPECT_THROW(relocation_cycles(-1), ModelError);
}

TEST(RelocatingStore, OneMasterPerModulePerClass) {
  RelocatingStore store;
  store.add_master(PartialBitstream::create("ma4", "prr0", kPrr0));
  store.add_master(PartialBitstream::create("ma4", "prr1", kPrr1));  // same class
  store.add_master(PartialBitstream::create("ma8", "prr0", kPrr0));
  EXPECT_EQ(store.master_count(), 2u);
  EXPECT_TRUE(store.has_master("ma4", kPrr1));
  EXPECT_FALSE(store.has_master("ma4", kNarrow));
}

TEST(RelocatingStore, MaterializeProducesLoadableBitstream) {
  RelocatingStore store;
  store.add_master(PartialBitstream::create("ma4", "prr0", kPrr0));
  const auto bs = store.materialize("ma4", "prr_right", kPrrRight);
  EXPECT_EQ(bs.target_prr, "prr_right");
  EXPECT_EQ(bs.region, kPrrRight);
  EXPECT_TRUE(bs.valid());
  EXPECT_THROW(store.materialize("ma4", "narrow", kNarrow), ModelError);
  EXPECT_THROW(store.materialize("ghost", "prr0", kPrr0), ModelError);
}

TEST(RelocatingStore, StorageSavingsVsEaprBaseline) {
  // 4 modules x 6 same-footprint PRRs: EAPR stores 24 bitstreams, the
  // relocating store holds 4 masters — a 6x reduction.
  RelocatingStore store;
  const char* modules[] = {"a", "b", "c", "d"};
  for (const char* m : modules) {
    store.add_master(PartialBitstream::create(m, "prr0", kPrr0));
  }
  const std::int64_t per_bs = PartialBitstream::create("a", "p", kPrr0)
                                  .size_bytes;
  EXPECT_EQ(store.stored_bytes(), 4 * per_bs);
  EXPECT_EQ(RelocatingStore::baseline_bytes(store.stored_bytes(), 6),
            24 * per_bs);
}

}  // namespace
}  // namespace vapres::bitstream
