// Processor-model tests: task scheduling, busy accounting, DCR access,
// xps_timer.
#include <gtest/gtest.h>

#include "comm/dcr.hpp"
#include "proc/microblaze.hpp"
#include "proc/timer.hpp"
#include "sim/simulator.hpp"

namespace vapres::proc {
namespace {

struct Rig {
  sim::Simulator sim;
  sim::ClockDomain* clk;
  comm::DcrBus dcr;
  std::unique_ptr<Microblaze> mb;

  /// `wired` hands the core the simulator, enabling the analytic
  /// (sleepable) busy path that VapresSystem uses; unwired rigs keep the
  /// core awake through busy spans.
  explicit Rig(bool wired = false) {
    clk = &sim.create_domain("clk_sys", 100.0);
    mb = std::make_unique<Microblaze>("mb", *clk, dcr);
    if (wired) mb->set_simulator(&sim);
  }
  void run(sim::Cycles n) { sim.run_cycles(*clk, n); }
};

class TestSlave final : public comm::DcrSlave {
 public:
  comm::DcrValue value = 0;
  comm::DcrValue dcr_read() const override { return value; }
  void dcr_write(comm::DcrValue v) override { value = v; }
  std::string dcr_name() const override { return "slave"; }
};

TEST(Microblaze, TaskStepsOncePerIdleCycle) {
  Rig rig;
  int steps = 0;
  FunctionTask task("count", [&](Microblaze&) {
    ++steps;
    return false;
  });
  rig.mb->add_task(&task);
  rig.run(10);
  EXPECT_EQ(steps, 10);
}

TEST(Microblaze, FinishedTaskIsDescheduled) {
  Rig rig;
  int steps = 0;
  FunctionTask task("three", [&](Microblaze&) { return ++steps == 3; });
  rig.mb->add_task(&task);
  rig.run(10);
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(rig.mb->task_count(), 0u);
}

TEST(Microblaze, BusyBlocksTaskStepping) {
  Rig rig;
  int steps = 0;
  FunctionTask task("busy", [&](Microblaze& mb) {
    ++steps;
    mb.busy_for(4);  // each step costs 4 extra cycles
    return false;
  });
  rig.mb->add_task(&task);
  rig.run(10);  // step, 4 busy, step, 4 busy -> 2 steps
  EXPECT_EQ(steps, 2);
  EXPECT_EQ(rig.mb->total_busy_cycles(), 8u);
}

TEST(Microblaze, RoundRobinBetweenTasks) {
  Rig rig;
  std::vector<int> order;
  FunctionTask a("a", [&](Microblaze&) {
    order.push_back(1);
    return false;
  });
  FunctionTask b("b", [&](Microblaze&) {
    order.push_back(2);
    return false;
  });
  rig.mb->add_task(&a);
  rig.mb->add_task(&b);
  rig.run(4);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(Microblaze, BusyCompletionCallbackFires) {
  Rig rig;
  bool fired = false;
  rig.mb->busy_for(5, [&] { fired = true; });
  rig.run(4);
  EXPECT_FALSE(fired);
  rig.run(1);
  EXPECT_TRUE(fired);
}

TEST(Microblaze, AnalyticBusySleepsCoreAndFiresOnExactCycle) {
  Rig rig(/*wired=*/true);
  sim::Cycles fired_at = 0;
  // Anchored on edge 0, so the last busy edge — where the completion
  // fires — is edge 99, identical to the per-edge countdown.
  rig.mb->busy_for(100, [&] { fired_at = rig.clk->cycle_count(); });
  rig.run(100);
  EXPECT_EQ(fired_at, 99u);
  EXPECT_FALSE(rig.mb->busy());
  // The span must actually have been slept through, not ticked.
  EXPECT_GT(rig.clk->kernel_stats().cycles_quiescent, 50u);
}

TEST(Microblaze, AnalyticBusyMatchesCountdownTaskTiming) {
  // Wired and unwired rigs must schedule task quanta on identical
  // cycles: one step, then `cost` busy edges, repeating.
  auto steps_after = [](bool wired, sim::Cycles horizon) {
    Rig rig(wired);
    int steps = 0;
    FunctionTask task("w", [&](Microblaze& mb) {
      ++steps;
      mb.busy_for(37);
      return false;
    });
    rig.mb->add_task(&task);
    rig.run(horizon);
    return steps;
  };
  for (sim::Cycles horizon : {1u, 37u, 38u, 39u, 1000u}) {
    EXPECT_EQ(steps_after(true, horizon), steps_after(false, horizon))
        << "horizon " << horizon;
  }
}

TEST(Microblaze, BusyExtensionWhileAnchoredRetargetsExpiry) {
  Rig rig(/*wired=*/true);
  sim::Cycles fired_at = 0;
  rig.mb->busy_for(50, [&] { fired_at = rig.clk->cycle_count(); });
  rig.run(20);  // mid-span; the core is asleep on the analytic path
  // An external event source piles on more work: the countdown model
  // would now expire on edge 49 + 30 = 79.
  rig.mb->busy_for(30);
  rig.run(60);
  EXPECT_EQ(fired_at, 79u);
  EXPECT_FALSE(rig.mb->busy());
}

TEST(Microblaze, AnalyticBusyResumesTasksAfterSleep) {
  Rig rig(/*wired=*/true);
  int steps = 0;
  FunctionTask task("t", [&](Microblaze&) {
    ++steps;
    return false;
  });
  rig.mb->add_task(&task);
  rig.mb->busy_for(500);
  rig.run(500);  // entirely busy: edges 0..499
  EXPECT_EQ(steps, 0);
  rig.run(10);  // idle again: one quantum per cycle
  EXPECT_EQ(steps, 10);
}

TEST(Microblaze, SecondPendingCompletionRejected) {
  Rig rig;
  rig.mb->busy_for(5, [] {});
  EXPECT_THROW(rig.mb->busy_for(5, [] {}), ModelError);
}

TEST(Microblaze, DcrAccessChargesBridgeLatency) {
  Rig rig;
  TestSlave slave;
  rig.dcr.map(0x100, &slave);
  rig.mb->dcr_write(0x100, 42);
  EXPECT_EQ(slave.value, 42u);  // effect immediate
  EXPECT_EQ(rig.mb->total_busy_cycles(),
            static_cast<sim::Cycles>(comm::DcrBus::kBridgeAccessCycles));
  EXPECT_EQ(rig.mb->dcr_read(0x100), 42u);
}

TEST(DcrBus, MapUnmapAndErrors) {
  comm::DcrBus bus;
  TestSlave slave;
  bus.map(5, &slave);
  EXPECT_TRUE(bus.mapped(5));
  EXPECT_THROW(bus.map(5, &slave), ModelError);
  EXPECT_THROW(bus.read(6), ModelError);
  bus.write(5, 9);
  EXPECT_EQ(bus.read(5), 9u);
  EXPECT_EQ(bus.total_accesses(), 2u);
  bus.unmap(5);
  EXPECT_THROW(bus.read(5), ModelError);
}

TEST(XpsTimer, MeasuresElapsedCycles) {
  Rig rig;
  XpsTimer timer(*rig.clk);
  timer.start();
  rig.run(1234);
  EXPECT_EQ(timer.stop(), 1234u);
  EXPECT_EQ(timer.elapsed_cycles(), 1234u);
  EXPECT_DOUBLE_EQ(timer.elapsed_seconds(), 1234.0 / 100e6);
}

TEST(XpsTimer, StopWithoutStartThrows) {
  Rig rig;
  XpsTimer timer(*rig.clk);
  EXPECT_THROW(timer.stop(), ModelError);
}

}  // namespace
}  // namespace vapres::proc
