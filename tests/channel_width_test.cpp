// Channel-width (w) tests: the Figure 7 parameter w sets the physical
// payload width of every streaming channel. Narrow channels truncate
// words at the producer interface, and the end-of-stream word is
// all-ones *at channel width*.
#include <gtest/gtest.h>

#include <optional>

#include "comm/flit.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"

namespace vapres::core {
namespace {

using comm::Word;

SystemParams narrow_params(int width_bits) {
  SystemParams p = SystemParams::prototype();
  p.rsbs[0].width_bits = width_bits;
  p.rsbs[0].prr_width_clbs = 2;
  return p;
}

TEST(ChannelWidth, Masks) {
  EXPECT_EQ(comm::payload_mask(32), 0xFFFFFFFFu);
  EXPECT_EQ(comm::payload_mask(16), 0x0000FFFFu);
  EXPECT_EQ(comm::payload_mask(8), 0x000000FFu);
  EXPECT_EQ(comm::payload_mask(1), 0x00000001u);
  EXPECT_EQ(comm::eos_word(16), 0xFFFFu);
  EXPECT_EQ(comm::eos_word(32), comm::kEndOfStreamWord);
}

TEST(ChannelWidth, ProducerInterfaceTruncates) {
  sim::Simulator sim;
  auto& clk = sim.create_domain("clk", 100.0);
  comm::ProducerInterface p("p", 8, /*width_bits=*/16);
  clk.attach(&p);
  p.set_read_enable(true);
  p.fifo().push(0x12345678u);
  sim.run_cycles(clk, 1);
  EXPECT_EQ(*p.output_signal(), (comm::Flit{0x5678u, true}));
  EXPECT_EQ(p.width_bits(), 16);
  clk.detach(&p);
}

TEST(ChannelWidth, RejectsBadWidths) {
  EXPECT_THROW(comm::ProducerInterface("p", 8, 0), ModelError);
  EXPECT_THROW(comm::ProducerInterface("p", 8, 33), ModelError);
}

TEST(ChannelWidth, SixteenBitSystemTruncatesEndToEnd) {
  VapresSystem sys(narrow_params(16));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  Rsb& rsb = sys.rsb();
  ASSERT_TRUE(sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0)));
  ASSERT_TRUE(sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0)));
  sys.rsb().iom(0).set_source_data({0x00010002u, 0xABCD1234u, 0x0000FFFEu});
  sys.run_system_cycles(200);
  EXPECT_EQ(sys.rsb().iom(0).received(),
            (std::vector<Word>{0x0002u, 0x1234u, 0xFFFEu}));
}

TEST(ChannelWidth, EosDetectedAtChannelWidth) {
  // The full Figure 5 protocol on a 16-bit RSB: the module's 32-bit EOS
  // word truncates to 0xFFFF on the wire and the IOM still detects it.
  VapresSystem sys(narrow_params(16));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "passthrough");
  sys.preload_sdram("passthrough", 0, 1);
  Rsb& rsb = sys.rsb();
  const auto up = *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  const auto down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  int n = 0;
  rsb.iom(0).set_source_generator(
      [&n]() -> std::optional<Word> {
        return static_cast<Word>(n++ & 0x7FFF);  // never the EOS pattern
      },
      4);

  SwitchRequest req;
  req.src_prr = 0;
  req.dst_prr = 1;
  req.new_module_id = "passthrough";
  req.upstream = up;
  req.downstream = down;
  ModuleSwitcher sw(*&sys, req);
  sw.begin();
  ASSERT_TRUE(sys.sim().run_until([&] { return sw.done(); },
                                  sim::kPsPerSecond * 60));
  EXPECT_EQ(rsb.iom(0).eos_seen(), 1u);
  // No data word was mistaken for EOS and dropped.
  const auto& rx = rsb.iom(0).received();
  for (std::size_t i = 0; i < rx.size(); ++i) {
    EXPECT_EQ(rx[i], static_cast<Word>(i & 0x7FFF));
  }
}

TEST(ChannelWidth, EightBitSystemStreams) {
  VapresSystem sys(narrow_params(8));
  sys.bring_up_all_sites();
  sys.reconfigure_now(0, 0, "offset_100");
  Rsb& rsb = sys.rsb();
  ASSERT_TRUE(sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0)));
  ASSERT_TRUE(sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0)));
  sys.rsb().iom(0).set_source_data({1, 2, 3});
  sys.run_system_cycles(200);
  // offset_100 adds 100 inside the PRR (32-bit internally); the result
  // is truncated to 8 bits on the way out.
  EXPECT_EQ(sys.rsb().iom(0).received(),
            (std::vector<Word>{101 & 0xFF, 102 & 0xFF, 103 & 0xFF}));
}

}  // namespace
}  // namespace vapres::core
