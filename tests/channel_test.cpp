// ChannelManager tests: the vapres_establish_channel routing layer —
// lane bookkeeping, soft failure on saturation, release semantics.
#include <gtest/gtest.h>

#include "core/channel.hpp"
#include "test_util.hpp"

namespace vapres::core {
namespace {

using test::FabricRig;

TEST(ChannelManager, EstablishReturnsIdAndTracksLanes) {
  FabricRig rig(4, comm::SwitchBoxShape{2, 2, 1, 1});
  ChannelManager mgr(*rig.fabric);
  EXPECT_EQ(mgr.num_segments(), 3);
  auto id = mgr.establish(ChannelEndpoint{0, 0}, ChannelEndpoint{3, 0});
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(mgr.active(*id));
  EXPECT_EQ(mgr.active_count(), 1u);
  for (int seg = 0; seg < 3; ++seg) {
    EXPECT_EQ(mgr.free_lanes(seg, true), 1);
    EXPECT_EQ(mgr.free_lanes(seg, false), 2);
  }
}

TEST(ChannelManager, SoftFailureWhenSaturated) {
  FabricRig rig(3, comm::SwitchBoxShape{1, 1, 1, 1});
  ChannelManager mgr(*rig.fabric);
  // Only one rightward lane: second overlapping rightward channel fails.
  auto first = mgr.establish(ChannelEndpoint{0, 0}, ChannelEndpoint{2, 0});
  ASSERT_TRUE(first.has_value());
  auto second = mgr.establish(ChannelEndpoint{1, 0}, ChannelEndpoint{2, 0});
  EXPECT_FALSE(second.has_value());  // paper: returns zero
  // No partial state was leaked: leftward still free everywhere.
  EXPECT_EQ(mgr.free_lanes(0, false), 1);
  EXPECT_EQ(mgr.free_lanes(1, false), 1);
}

TEST(ChannelManager, EndpointBusyFailsSoftly) {
  FabricRig rig(4, comm::SwitchBoxShape{2, 2, 1, 1});
  ChannelManager mgr(*rig.fabric);
  ASSERT_TRUE(
      mgr.establish(ChannelEndpoint{0, 0}, ChannelEndpoint{2, 0}));
  // Same producer endpoint again.
  EXPECT_FALSE(
      mgr.establish(ChannelEndpoint{0, 0}, ChannelEndpoint{3, 0}));
  // Same consumer endpoint again.
  EXPECT_FALSE(
      mgr.establish(ChannelEndpoint{1, 0}, ChannelEndpoint{2, 0}));
}

TEST(ChannelManager, ReleaseRestoresState) {
  FabricRig rig(3, comm::SwitchBoxShape{1, 1, 1, 1});
  ChannelManager mgr(*rig.fabric);
  auto id = mgr.establish(ChannelEndpoint{0, 0}, ChannelEndpoint{2, 0});
  ASSERT_TRUE(id);
  mgr.release(*id);
  EXPECT_EQ(mgr.active_count(), 0u);
  EXPECT_EQ(mgr.free_lanes(0, true), 1);
  EXPECT_TRUE(
      mgr.establish(ChannelEndpoint{0, 0}, ChannelEndpoint{2, 0}));
  EXPECT_THROW(mgr.release(*id), ModelError);
}

TEST(ChannelManager, LeftwardRoutesUseLeftLanes) {
  FabricRig rig(4, comm::SwitchBoxShape{1, 1, 1, 1});
  ChannelManager mgr(*rig.fabric);
  auto rid = mgr.establish(ChannelEndpoint{0, 0}, ChannelEndpoint{3, 0});
  auto lid = mgr.establish(ChannelEndpoint{3, 0}, ChannelEndpoint{0, 0});
  EXPECT_TRUE(rid.has_value());
  EXPECT_TRUE(lid.has_value());
  EXPECT_EQ(mgr.free_lanes(1, true), 0);
  EXPECT_EQ(mgr.free_lanes(1, false), 0);
  EXPECT_FALSE(mgr.spec(*lid).rightward());
  EXPECT_EQ(mgr.spec(*lid).hops(), 4);
}

TEST(ChannelManager, LaneChangesPerHopEnableInterleaving) {
  // Two channels overlapping on different segments must be routable with
  // kr = 1 when their spans do not overlap.
  FabricRig rig(5, comm::SwitchBoxShape{1, 1, 1, 1});
  ChannelManager mgr(*rig.fabric);
  EXPECT_TRUE(mgr.establish(ChannelEndpoint{0, 0}, ChannelEndpoint{2, 0}));
  EXPECT_TRUE(mgr.establish(ChannelEndpoint{3, 0}, ChannelEndpoint{4, 0}));
}

TEST(ChannelManager, RejectsSameBoxLoopback) {
  FabricRig rig(3);
  ChannelManager mgr(*rig.fabric);
  EXPECT_THROW(
      mgr.establish(ChannelEndpoint{1, 0}, ChannelEndpoint{1, 0}),
      ModelError);
}

TEST(ChannelManager, RejectsBadEndpoints) {
  FabricRig rig(3);
  ChannelManager mgr(*rig.fabric);
  EXPECT_THROW(mgr.establish(ChannelEndpoint{-1, 0}, ChannelEndpoint{2, 0}),
               ModelError);
  EXPECT_THROW(mgr.establish(ChannelEndpoint{0, 9}, ChannelEndpoint{2, 0}),
               ModelError);
  EXPECT_THROW(mgr.spec(999), ModelError);
}

TEST(ChannelManager, DcrWriteCostScalesWithHops) {
  comm::RouteSpec spec;
  spec.producer_box = 0;
  spec.consumer_box = 3;
  spec.lanes = {0, 0, 0};
  EXPECT_EQ(ChannelManager::dcr_writes_for(spec), 6);  // 4 boxes + 2
}

TEST(ChannelManager, CapacityMatchesKrTimesSegments) {
  // With kr = 2, exactly two overlapping rightward channels fit.
  FabricRig rig(3, comm::SwitchBoxShape{2, 2, 2, 2});
  ChannelManager mgr(*rig.fabric);
  // Attach second producer/consumer channels for endpoints.
  EXPECT_TRUE(mgr.establish(ChannelEndpoint{0, 0}, ChannelEndpoint{2, 0}));
  EXPECT_TRUE(mgr.establish(ChannelEndpoint{0, 1}, ChannelEndpoint{2, 1}));
  EXPECT_FALSE(mgr.establish(ChannelEndpoint{1, 0}, ChannelEndpoint{2, 0}));
}

}  // namespace
}  // namespace vapres::core
