// Design-flow tests: resource-model calibration against Section V.B,
// floorplanner legality, system-definition emitters, and both flows end
// to end (Figure 6).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "flow/app_flow.hpp"
#include "flow/base_system_flow.hpp"
#include "flow/floorplan.hpp"
#include "flow/resource_model.hpp"
#include "flow/sysdef.hpp"
#include "sim/random.hpp"

namespace vapres::flow {
namespace {

// ------------------------------------------------------- resource model

TEST(ResourceModel, CommArchitectureMatchesPaper) {
  // Section V.B: "the inter-module communication architecture required
  // only 1,020 slices" for the prototype (3 sites, kr=kl=2, ki=ko=1,
  // w=32).
  const core::SystemParams p = core::SystemParams::prototype();
  EXPECT_EQ(ResourceModel::comm_architecture_slices(p.rsbs[0]), 1020);
}

TEST(ResourceModel, StaticRegionMatchesPaper) {
  // Section V.B: static region = 9,421 slices, ~86-88 % of the VLX25.
  const core::SystemParams p = core::SystemParams::prototype();
  const ResourceReport report = ResourceModel::static_region(p);
  EXPECT_EQ(report.total(), 9421);
  const double util = report.utilization(p.device.total_slices());
  EXPECT_GT(util, 85.0);
  EXPECT_LT(util, 89.0);
}

TEST(ResourceModel, CommCostGrowsWithEveryParameter) {
  core::RsbParams base = core::SystemParams::prototype().rsbs[0];
  const int ref = ResourceModel::comm_architecture_slices(base);
  auto grown = [&](auto mutate) {
    core::RsbParams p = base;
    mutate(p);
    return ResourceModel::comm_architecture_slices(p);
  };
  EXPECT_GT(grown([](auto& p) { p.num_prrs += 1; }), ref);
  EXPECT_GT(grown([](auto& p) { p.kr += 1; }), ref);
  EXPECT_GT(grown([](auto& p) { p.kl += 1; }), ref);
  EXPECT_GT(grown([](auto& p) { p.ki += 1; }), ref);
  EXPECT_GT(grown([](auto& p) { p.ko += 1; }), ref);
  EXPECT_LT(grown([](auto& p) { p.width_bits = 16; }), ref);
}

TEST(ResourceModel, SwitchBoxStructuralTerms) {
  // Registers only (no lane muxes needed at kr=1,ko=0 is illegal; use the
  // smallest legal shape) — sanity of the per-bit pricing.
  const comm::SwitchBoxShape proto{2, 2, 1, 1};
  EXPECT_EQ(ResourceModel::switch_box_slices(proto, 32), 264);
  EXPECT_EQ(ResourceModel::module_interface_slices(32), 32);
  EXPECT_EQ(ResourceModel::prsocket_slices(proto), 12);
}

// ---------------------------------------------------------- floorplanner

TEST(Floorplanner, PrototypePlacementIsLegal) {
  Floorplanner planner;
  const auto plan = planner.place(core::SystemParams::prototype());
  ASSERT_EQ(plan.prrs.size(), 2u);
  EXPECT_TRUE(Floorplanner::check(plan.rects(), plan.device).empty());
  EXPECT_EQ(plan.prrs[0].rect.slices(), 640);
  // Static region has room for the 9,421-slice estimate.
  EXPECT_GE(plan.static_slices, 9421);
}

TEST(Floorplanner, FillsBothHalves) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].num_prrs = 8;  // 6 fit the left half; 2 spill right
  Floorplanner planner;
  const auto plan = planner.place(p);
  int right = 0;
  for (const auto& prr : plan.prrs) {
    if (prr.bufr_region.half == 1) ++right;
  }
  EXPECT_EQ(right, 2);
}

TEST(Floorplanner, MultiRegionPrrsConsumeAdjacentRegions) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].num_prrs = 2;
  p.rsbs[0].prr_height_clbs = 32;  // 2 regions each
  Floorplanner planner;
  const auto plan = planner.place(p);
  EXPECT_EQ(plan.prrs[0].rect.row, 0);
  EXPECT_EQ(plan.prrs[1].rect.row, 32);
}

TEST(Floorplanner, OutOfRegionsThrows) {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].num_prrs = 13;  // 12 clock regions on the VLX25
  Floorplanner planner;
  EXPECT_THROW(planner.place(p), ModelError);
}

TEST(Floorplanner, CheckCatchesViolations) {
  const auto dev = fabric::DeviceGeometry::xc4vlx25();
  // Overlap.
  EXPECT_FALSE(Floorplanner::check({{0, 0, 16, 10}, {8, 4, 16, 10}}, dev)
                   .empty());
  // Shared clock region without overlap.
  EXPECT_FALSE(Floorplanner::check({{0, 0, 16, 7}, {0, 7, 16, 7}}, dev)
                   .empty());
  // Legal.
  EXPECT_TRUE(Floorplanner::check({{0, 0, 16, 10}, {16, 0, 16, 10}}, dev)
                  .empty());
}

TEST(Floorplanner, AsciiRenderShowsPrrs) {
  Floorplanner planner;
  const auto plan = planner.place(core::SystemParams::prototype());
  const std::string art = plan.render_ascii();
  EXPECT_NE(art.find('0'), std::string::npos);
  EXPECT_NE(art.find('1'), std::string::npos);
  EXPECT_NE(art.find('B'), std::string::npos);
  EXPECT_NE(art.find('m'), std::string::npos);
}

// -------------------------------------------------------------- sysdef

TEST(Sysdef, MhsListsCorePeripheralsAndRsbParameters) {
  const auto p = core::SystemParams::prototype();
  const std::string mhs = emit_mhs(p);
  for (const char* needle :
       {"microblaze", "plbv46_dcr_bridge", "xps_hwicap", "xps_sysace",
        "xps_timer", "vapres_rsb", "C_NUM_PRR = 2", "C_KR = 2",
        "C_CHANNEL_WIDTH = 32", "C_PRSOCKET0_DCR_BASEADDR"}) {
    EXPECT_NE(mhs.find(needle), std::string::npos) << needle;
  }
}

TEST(Sysdef, MssListsVapresApiLibrary) {
  const std::string mss = emit_mss(core::SystemParams::prototype());
  EXPECT_NE(mss.find("libvapres"), std::string::npos);
  EXPECT_NE(mss.find("vapres_establish_channel"), std::string::npos);
  EXPECT_NE(mss.find("hwicap"), std::string::npos);
}

TEST(Sysdef, UcfConstrainsEveryPrr) {
  Floorplanner planner;
  const auto p = core::SystemParams::prototype();
  const auto plan = planner.place(p);
  const std::string ucf = emit_ucf(p, plan);
  EXPECT_NE(ucf.find("AREA_GROUP \"AG_prr0\" RANGE"), std::string::npos);
  EXPECT_NE(ucf.find("AREA_GROUP \"AG_prr1\" RANGE"), std::string::npos);
  EXPECT_NE(ucf.find("MODE = RECONFIG"), std::string::npos);
  EXPECT_NE(ucf.find("BUFR_X"), std::string::npos);
}

// ---------------------------------------------------- base-system flow

TEST(BaseSystemFlow, PrototypeRunsEndToEnd) {
  BaseSystemFlow flow;
  const auto result = flow.run(core::SystemParams::prototype());
  EXPECT_EQ(result.resources.total(), 9421);
  EXPECT_NEAR(result.static_utilization(), 87.6, 1.0);
  EXPECT_EQ(result.params.prr_rects.size(), 2u);
  EXPECT_FALSE(result.mhs.empty());
  EXPECT_FALSE(result.ucf.empty());
  EXPECT_GT(result.static_bitstream.size_bytes, 0);
}

TEST(BaseSystemFlow, ResultBuildsAWorkingSystem) {
  BaseSystemFlow flow;
  auto result = flow.run(core::SystemParams::prototype());
  core::VapresSystem sys(result.params);
  EXPECT_EQ(sys.rsb().prr(0).rect(), result.floorplan.prrs[0].rect);
}

TEST(BaseSystemFlow, WriteFilesProducesSystemDefinition) {
  BaseSystemFlow flow;
  const auto result = flow.run(core::SystemParams::prototype());
  const std::string dir = "flow_test_out";
  BaseSystemFlow::write_files(result, dir);
  namespace fs = std::filesystem;
  EXPECT_TRUE(fs::exists(fs::path(dir) / "system.mhs"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "system.mss"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "system.ucf"));
  fs::remove_all(dir);
}

TEST(BaseSystemFlow, RejectsOverfullDevice) {
  core::SystemParams p = core::SystemParams::prototype();
  // 12 one-region PRRs leave no fabric for the 9,421-slice static region.
  p.rsbs[0].num_prrs = 12;
  p.rsbs[0].prr_width_clbs = 14;
  BaseSystemFlow flow;
  EXPECT_THROW(flow.run(p), ModelError);
}

TEST(BaseSystemFlow, HonorsExplicitFloorplan) {
  core::SystemParams p = core::SystemParams::prototype();
  p.prr_rects = {fabric::ClbRect{16, 0, 16, 10},
                 fabric::ClbRect{48, 0, 16, 10}};
  BaseSystemFlow flow;
  const auto result = flow.run(p);
  EXPECT_EQ(result.floorplan.prrs[0].rect.row, 16);
  EXPECT_EQ(result.floorplan.prrs[1].rect.row, 48);
}

// ----------------------------------------------------- application flow

TEST(ApplicationFlow, BuildsBitstreamPerModulePrrPair) {
  BaseSystemFlow base_flow;
  const auto base = base_flow.run(core::SystemParams::prototype());
  const auto lib = hwmodule::ModuleLibrary::standard();
  ApplicationFlow app_flow(base, lib);

  core::KpnAppSpec app;
  app.name = "filters";
  app.nodes = {{"a", "ma4"}, {"b", "ma8"}};
  const auto result = app_flow.build(app);
  EXPECT_TRUE(result.ok());
  // 2 modules x 2 PRRs (both fit everywhere).
  EXPECT_EQ(result.bitstreams.size(), 4u);
  for (const auto& bs : result.bitstreams) EXPECT_TRUE(bs.valid());
}

TEST(ApplicationFlow, ReportsUnplaceableModules) {
  BaseSystemFlow base_flow;
  const auto base = base_flow.run(core::SystemParams::prototype());
  const auto lib = hwmodule::ModuleLibrary::standard();
  ApplicationFlow app_flow(base, lib);

  core::KpnAppSpec app;
  app.name = "too_big";
  app.nodes = {{"f", "fir16_sharp"}};  // 1200 slices > 640-slice PRRs
  const auto result = app_flow.build(app);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.unplaceable_modules.size(), 1u);
  const UnplaceableModule& u = result.unplaceable_modules[0];
  EXPECT_EQ(u.module_id, "fir16_sharp");
  EXPECT_EQ(u.reason, UnplaceableModule::Reason::kResourceOverflow);
  EXPECT_NE(u.detail.find("1200"), std::string::npos);
  EXPECT_NE(u.detail.find("640"), std::string::npos);
  EXPECT_STREQ(unplaceable_reason_name(u.reason), "resource-overflow");
}

TEST(ApplicationFlow, DistinguishesFootprintMismatchFromOverflow) {
  BaseSystemFlow base_flow;
  const auto base = base_flow.run(core::SystemParams::prototype());
  auto lib = hwmodule::ModuleLibrary::standard();
  // A module whose slice count fits a 640-slice PRR but whose BRAM need
  // matches no CLB-only PRR rectangle.
  hwmodule::NetlistInfo info;
  info.type_id = "bram_fft";
  info.description = "FFT needing block RAM";
  info.resources = fabric::ResourceVector{400, 4, 0};
  info.factory = [] { return std::unique_ptr<hwmodule::ModuleBehavior>(); };
  lib.register_module(info);
  ApplicationFlow app_flow(base, lib);

  core::KpnAppSpec app;
  app.name = "needs_bram";
  app.nodes = {{"f", "bram_fft"}};
  const auto result = app_flow.build(app);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.unplaceable_modules.size(), 1u);
  const UnplaceableModule& u = result.unplaceable_modules[0];
  EXPECT_EQ(u.reason, UnplaceableModule::Reason::kNoFootprintMatch);
  EXPECT_NE(u.detail.find("BRAM"), std::string::npos);
  EXPECT_STREQ(unplaceable_reason_name(u.reason), "no-footprint-match");
}

// The caveat documented on build_relocating(): PRRs with identical
// dimensions but different row offsets within the clock region land in
// different footprint classes — they are NOT relocation-compatible, so
// the store keeps one master per class (no storage saving between them)
// and cross-class relocation refuses.
TEST(ApplicationFlow, RelocatingBuildSplitsIncompatibleFootprints) {
  core::SystemParams p = core::SystemParams::prototype();
  // Same 16x10 dimensions; rows 0 and 24 => row offsets 0 and 8 within
  // the 16-row clock region. PRR1 spans regions 1-2, PRR0 region 0, so
  // the floorplan is legal, but the frame word layouts differ.
  p.prr_rects = {fabric::ClbRect{0, 0, 16, 10},
                 fabric::ClbRect{24, 0, 16, 10}};
  BaseSystemFlow base_flow;
  const auto base = base_flow.run(p);
  const auto lib = hwmodule::ModuleLibrary::standard();
  ApplicationFlow app_flow(base, lib);

  const auto& r0 = base.floorplan.prrs[0].rect;
  const auto& r1 = base.floorplan.prrs[1].rect;
  EXPECT_FALSE(bitstream::relocatable(r0, r1));
  EXPECT_NE(bitstream::footprint_class(r0), bitstream::footprint_class(r1));

  core::KpnAppSpec app;
  app.name = "split";
  app.nodes = {{"g", "gain_x2"}};
  const auto store = app_flow.build_relocating(app);
  // Two masters — one per class — and no cross-class saving: the store
  // holds as many bytes as the EAPR build would for these two PRRs.
  EXPECT_EQ(store.master_count(), 2u);
  const auto full = app_flow.build(app);
  std::int64_t eapr_bytes = 0;
  for (const auto& bs : full.bitstreams) eapr_bytes += bs.size_bytes;
  EXPECT_EQ(store.stored_bytes(), eapr_bytes);
  // Both PRRs are still covered (coverage parity with build())...
  EXPECT_TRUE(store.has_master("gain_x2", r0));
  EXPECT_TRUE(store.has_master("gain_x2", r1));
  // ...but a master placed for one class refuses to relocate across.
  const auto master0 = store.materialize("gain_x2", "prr0", r0);
  EXPECT_THROW(bitstream::relocate(master0, "prr1", r1), ModelError);

  // Contrast: same offset (rows 0 and 48, both o0) => one shared class.
  core::SystemParams q = core::SystemParams::prototype();
  q.prr_rects = {fabric::ClbRect{0, 0, 16, 10},
                 fabric::ClbRect{48, 0, 16, 10}};
  const auto base2 = base_flow.run(q);
  ApplicationFlow app_flow2(base2, lib);
  const auto store2 = app_flow2.build_relocating(app);
  EXPECT_EQ(store2.master_count(), 1u);
  EXPECT_LT(store2.stored_bytes(), eapr_bytes);
}

TEST(ApplicationFlow, RejectsPortSignatureMismatch) {
  BaseSystemFlow base_flow;
  const auto base = base_flow.run(core::SystemParams::prototype());
  const auto lib = hwmodule::ModuleLibrary::standard();
  ApplicationFlow app_flow(base, lib);
  core::KpnAppSpec app;
  app.name = "adder";
  app.nodes = {{"sum", "adder2"}};  // ki = 1 in the prototype
  EXPECT_THROW(app_flow.build(app), ModelError);
}

TEST(ApplicationFlow, InstallPlacesCfFilesUsableBySystem) {
  BaseSystemFlow base_flow;
  const auto base = base_flow.run(core::SystemParams::prototype());
  const auto lib = hwmodule::ModuleLibrary::standard();
  ApplicationFlow app_flow(base, lib);
  core::KpnAppSpec app;
  app.name = "one";
  app.nodes = {{"a", "gain_x2"}};
  const auto result = app_flow.build(app);

  core::VapresSystem sys(base.params);
  const auto files = ApplicationFlow::install(result, sys.compact_flash());
  ASSERT_EQ(files.size(), 2u);
  for (const auto& f : files) {
    EXPECT_TRUE(sys.compact_flash().contains(f));
  }
  // The installed bitstream is directly loadable into its PRR.
  const auto& bs = sys.compact_flash().read(files[0]);
  const int prr_index = bs.target_prr.back() - '0';
  sys.rsb().prr(prr_index).apply_bitstream(bs, sys.library());
  EXPECT_EQ(sys.rsb().prr(prr_index).loaded_module(), "gain_x2");
}

// Property: the floorplanner never produces an illegal plan over random
// parameter combinations that fit the device.
class FloorplanSweep : public ::testing::TestWithParam<int> {};

TEST_P(FloorplanSweep, AlwaysLegalOrThrows) {
  sim::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].num_prrs = 1 + static_cast<int>(rng.next_below(8));
  p.rsbs[0].prr_height_clbs = 8 << rng.next_below(3);  // 8, 16, 32
  p.rsbs[0].prr_width_clbs = 2 + static_cast<int>(rng.next_below(12));
  Floorplanner planner;
  try {
    const auto plan = planner.place(p);
    EXPECT_TRUE(Floorplanner::check(plan.rects(), p.device).empty());
    EXPECT_EQ(plan.prrs.size(),
              static_cast<std::size_t>(p.rsbs[0].num_prrs));
  } catch (const ModelError&) {
    // Out of clock regions: acceptable outcome for large requests.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloorplanSweep, ::testing::Range(1, 25));

}  // namespace
}  // namespace vapres::flow
