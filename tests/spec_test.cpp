// System-spec file parser tests (the Section VI future-work tooling).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "flow/spec.hpp"
#include "sim/check.hpp"

namespace vapres::flow {
namespace {

constexpr const char* kPrototypeSpec = R"(
# ML401 prototype
system vapres_ml401
device xc4vlx25
clock 100
prr_clocks 100 50
sdram 67108864
rsb
  prrs 2
  ioms 1
  width 32
  lanes 2 2
  ports 1 1
  fifo_depth 512
  prr_size 16 10
end
)";

TEST(SpecParser, ParsesPrototype) {
  const auto p = parse_system_spec(kPrototypeSpec);
  EXPECT_EQ(p.name, "vapres_ml401");
  EXPECT_EQ(p.device.name(), "xc4vlx25");
  EXPECT_DOUBLE_EQ(p.system_clock_mhz, 100.0);
  EXPECT_DOUBLE_EQ(p.prr_clock_b_mhz, 50.0);
  ASSERT_EQ(p.rsbs.size(), 1u);
  EXPECT_EQ(p.rsbs[0].num_prrs, 2);
  EXPECT_EQ(p.rsbs[0].num_ioms, 1);
  EXPECT_EQ(p.rsbs[0].kr, 2);
  EXPECT_EQ(p.rsbs[0].prr_width_clbs, 10);
  EXPECT_TRUE(p.prr_rects.empty());
}

TEST(SpecParser, ParsesExplicitFloorplan) {
  const std::string spec = std::string(kPrototypeSpec) + R"(
floorplan
  prr 0 0 16 10
  prr 32 0 16 10
end
)";
  const auto p = parse_system_spec(spec);
  ASSERT_EQ(p.prr_rects.size(), 2u);
  EXPECT_EQ(p.prr_rects[1].row, 32);
}

TEST(SpecParser, ParsesMultipleRsbsAndCustomDevice) {
  const auto p = parse_system_spec(R"(
system big
device custom 128 40
clock 125
rsb
  prrs 3
  ioms 2
end
rsb
  prrs 2
  ioms 1
  prr_size 16 4
end
)");
  EXPECT_EQ(p.device.clb_rows(), 128);
  ASSERT_EQ(p.rsbs.size(), 2u);
  EXPECT_EQ(p.rsbs[0].num_prrs, 3);
  EXPECT_EQ(p.rsbs[1].prr_width_clbs, 4);
  EXPECT_EQ(p.total_prrs(), 5);
}

TEST(SpecParser, ErrorsCarryLineNumbers) {
  try {
    parse_system_spec("system x\ndevice xc4vlx25\nbogus 1\n");
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(SpecParser, RejectsBadInput) {
  EXPECT_THROW(parse_system_spec("device xc4vlx25\n"), ModelError);  // no system/rsb
  EXPECT_THROW(parse_system_spec("system x\nrsb\n"), ModelError);   // unterminated
  EXPECT_THROW(parse_system_spec("system x\nclock ten\nrsb\nend\n"),
               ModelError);  // non-numeric
  EXPECT_THROW(parse_system_spec("system x\nrsb\n  prrs 2 3\nend\n"),
               ModelError);  // arity
  // Semantically invalid (width 64 > 32) is caught by validate().
  EXPECT_THROW(parse_system_spec(
                   "system x\nrsb\n  width 64\nend\n"),
               ModelError);
}

TEST(SpecParser, EmitParseRoundTrip) {
  core::SystemParams p = core::SystemParams::prototype();
  p.prr_rects = {fabric::ClbRect{0, 0, 16, 10},
                 fabric::ClbRect{16, 0, 16, 10}};
  const std::string text = emit_system_spec(p);
  const auto q = parse_system_spec(text);
  EXPECT_EQ(q.name, p.name);
  EXPECT_EQ(q.device.name(), p.device.name());
  EXPECT_EQ(q.rsbs[0].num_prrs, p.rsbs[0].num_prrs);
  EXPECT_EQ(q.rsbs[0].fifo_depth, p.rsbs[0].fifo_depth);
  EXPECT_EQ(q.prr_rects, p.prr_rects);
}

TEST(SpecParser, LoadFromDisk) {
  namespace fs = std::filesystem;
  const fs::path path = "spec_test_tmp.vapres";
  {
    std::ofstream out(path);
    out << kPrototypeSpec;
  }
  const auto p = load_system_spec(path.string());
  EXPECT_EQ(p.name, "vapres_ml401");
  fs::remove(path);
  EXPECT_THROW(load_system_spec("does_not_exist.vapres"), ModelError);
}

}  // namespace
}  // namespace vapres::flow
